"""Configuration-as-a-service: the concurrent serving layer.

The paper's pipeline runs once per invocation; this package keeps it
resident and shares it safely among many callers:

* :mod:`.singleflight` — concurrent identical requests execute the
  pipeline exactly once and share the result;
* :mod:`.admission` — bounded in-flight slots with ``reject`` /
  ``block`` / ``shed-oldest`` backpressure plus a per-client token
  bucket;
* :mod:`.lifecycle` — graceful drain (stop accepting, finish in-flight
  work, flush telemetry) with a deadline;
* :mod:`.server` — the :class:`ConfigurationService` core and a stdlib
  ``ThreadingHTTPServer`` front end (``POST /v1/generate``,
  ``GET /healthz``, ``GET /metrics``, ``GET /cache/stats``);
* :mod:`.client` — the small blocking :class:`ServiceClient` used by
  tests, the load benchmark and CI;
* :mod:`.ring` / :mod:`.worker` / :mod:`.router` — the sharded tier:
  a consistent-hash :class:`HashRing`, worker stacks (in-process or
  child ``repro serve`` processes) and the :class:`RouterService`
  front end with health probes, deterministic failover and
  cross-shard ``/metrics`` / ``/cache/stats`` aggregation;
* :mod:`.topology` — the tier described in its own SysML v2 model and
  emitted as Kubernetes manifests (the dogfood path).

Start a single node with ``repro serve``; start the sharded tier with
``repro serve --workers N``.
"""

from .admission import (AdmissionController, AdmissionError,
                        AdmissionRejected, AdmissionShed,
                        AdmissionTimeout, POLICIES, POLICY_BLOCK,
                        POLICY_REJECT, POLICY_SHED, RateLimited,
                        RateLimiter, ServiceDraining, TokenBucket)
from .client import RetriableServiceError, ServiceClient, ServiceError
from .lifecycle import (DrainReport, STATE_DRAINING, STATE_SERVING,
                        STATE_STOPPED, ServiceLifecycle)
from .ring import DEFAULT_VNODES, HashRing, RingEmpty
from .router import (RouterHTTPServer, RouterRequestHandler,
                     RouterService, TopologyDrainReport)
from .server import (BadRequest, ConfigurationService,
                     ServiceHTTPServer, ServiceRequestHandler,
                     bundle_bytes, bundle_from_result,
                     parse_generate_body)
from .singleflight import SingleFlight
from .topology import (serving_topology_manifests, serving_topology_sysml,
                       deploy_serving_topology)
from .worker import LocalWorker, WorkerEndpoint, WorkerProcess

__all__ = [
    "AdmissionController", "AdmissionError", "AdmissionRejected",
    "AdmissionShed", "AdmissionTimeout", "BadRequest",
    "ConfigurationService", "DEFAULT_VNODES", "DrainReport", "HashRing",
    "LocalWorker", "POLICIES", "POLICY_BLOCK",
    "POLICY_REJECT", "POLICY_SHED", "RateLimited", "RateLimiter",
    "RetriableServiceError", "RingEmpty", "RouterHTTPServer",
    "RouterRequestHandler", "RouterService",
    "STATE_DRAINING", "STATE_SERVING", "STATE_STOPPED", "ServiceClient",
    "ServiceDraining", "ServiceError", "ServiceHTTPServer",
    "ServiceLifecycle", "ServiceRequestHandler", "SingleFlight",
    "TokenBucket", "TopologyDrainReport", "WorkerEndpoint",
    "WorkerProcess", "bundle_bytes", "bundle_from_result",
    "deploy_serving_topology", "parse_generate_body",
    "serving_topology_manifests", "serving_topology_sysml",
]
