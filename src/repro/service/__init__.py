"""Configuration-as-a-service: the concurrent serving layer.

The paper's pipeline runs once per invocation; this package keeps it
resident and shares it safely among many callers:

* :mod:`.singleflight` — concurrent identical requests execute the
  pipeline exactly once and share the result;
* :mod:`.admission` — bounded in-flight slots with ``reject`` /
  ``block`` / ``shed-oldest`` backpressure plus a per-client token
  bucket;
* :mod:`.lifecycle` — graceful drain (stop accepting, finish in-flight
  work, flush telemetry) with a deadline;
* :mod:`.server` — the :class:`ConfigurationService` core and a stdlib
  ``ThreadingHTTPServer`` front end (``POST /v1/generate``,
  ``GET /healthz``, ``GET /metrics``, ``GET /cache/stats``);
* :mod:`.client` — the small blocking :class:`ServiceClient` used by
  tests, the load benchmark and CI.

Start it from the CLI with ``repro serve``.
"""

from .admission import (AdmissionController, AdmissionError,
                        AdmissionRejected, AdmissionShed,
                        AdmissionTimeout, POLICIES, POLICY_BLOCK,
                        POLICY_REJECT, POLICY_SHED, RateLimited,
                        RateLimiter, ServiceDraining, TokenBucket)
from .client import RetriableServiceError, ServiceClient, ServiceError
from .lifecycle import (DrainReport, STATE_DRAINING, STATE_SERVING,
                        STATE_STOPPED, ServiceLifecycle)
from .server import (BadRequest, ConfigurationService,
                     ServiceHTTPServer, ServiceRequestHandler,
                     bundle_bytes, bundle_from_result)
from .singleflight import SingleFlight

__all__ = [
    "AdmissionController", "AdmissionError", "AdmissionRejected",
    "AdmissionShed", "AdmissionTimeout", "BadRequest",
    "ConfigurationService", "DrainReport", "POLICIES", "POLICY_BLOCK",
    "POLICY_REJECT", "POLICY_SHED", "RateLimited", "RateLimiter",
    "RetriableServiceError",
    "STATE_DRAINING", "STATE_SERVING", "STATE_STOPPED", "ServiceClient",
    "ServiceDraining", "ServiceError", "ServiceHTTPServer",
    "ServiceLifecycle", "ServiceRequestHandler", "SingleFlight",
    "TokenBucket", "bundle_bytes", "bundle_from_result",
]
