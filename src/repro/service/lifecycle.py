"""Service lifecycle: serving → draining → stopped, with graceful drain.

The drain contract (what ``SIGTERM`` means to ``repro serve``):

1. flip to ``draining`` — from this instant every new request is
   refused with :class:`~repro.service.admission.ServiceDraining`
   (retriable: a load balancer retries it elsewhere);
2. wait for the requests admitted *before* the flip to finish, up to a
   deadline;
3. run the registered flush hooks (final metrics snapshot, cache
   bookkeeping) exactly once, even when the deadline expired with work
   still in flight;
4. report what happened as a :class:`DrainReport`.

The tracker is intentionally independent of the admission controller:
admission counts work occupying pipeline slots, the lifecycle counts
requests the service has promised a response to (including those still
queued for a slot) — the drain must wait for the latter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..obs import METRICS, Summarizable
from .admission import ServiceDraining

_DRAINS = METRICS.counter("service.drains")
_ACTIVE = METRICS.gauge("service.active_requests")

STATE_SERVING = "serving"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"


@dataclass
class DrainReport(Summarizable):
    """Outcome of one graceful drain."""

    completed: bool
    waited_seconds: float
    remaining: int  #: requests still in flight when the deadline hit
    flushed: int  #: flush hooks that ran

    def summary(self) -> dict[str, object]:
        return {
            "completed": self.completed,
            "waited_seconds": round(self.waited_seconds, 3),
            "remaining": self.remaining,
            "flushed": self.flushed,
        }

    @classmethod
    def from_summary(cls, summary: dict[str, object]) -> "DrainReport":
        """Rehydrate a report from :meth:`summary` output.

        The sharded supervisor collects worker drain reports over
        process boundaries (``--drain-report-file`` JSON); this is the
        receiving end of that round-trip.
        """
        return cls(
            completed=bool(summary["completed"]),
            waited_seconds=float(summary["waited_seconds"]),
            remaining=int(summary["remaining"]),
            flushed=int(summary["flushed"]))


class ServiceLifecycle:
    """Tracks in-flight requests and coordinates the graceful drain."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._state = STATE_SERVING
        self._active = 0
        self._flush_hooks: list = []
        self.last_drain: DrainReport | None = None

    # -- state -----------------------------------------------------------

    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    @property
    def serving(self) -> bool:
        return self.state == STATE_SERVING

    def register_flush(self, hook) -> None:
        """Add a zero-argument callable to run once during drain."""
        self._flush_hooks.append(hook)

    # -- request tracking ------------------------------------------------

    def request_started(self) -> None:
        """Admit a request into the lifecycle; refuses unless serving."""
        with self._cond:
            if self._state != STATE_SERVING:
                raise ServiceDraining(
                    f"service is {self._state}; not accepting requests")
            self._active += 1
            _ACTIVE.inc()

    def request_finished(self) -> None:
        with self._cond:
            self._active -= 1
            _ACTIVE.dec()
            if self._active <= 0:
                self._cond.notify_all()

    # -- drain -----------------------------------------------------------

    def drain(self, deadline: float = 10.0) -> DrainReport:
        """Stop accepting, wait for in-flight work, flush, stop.

        Idempotent: a second call returns the first call's report.
        """
        with self._cond:
            if self._state != STATE_SERVING:
                while self.last_drain is None:  # another drainer runs
                    self._cond.wait(0.05)
                return self.last_drain
            self._state = STATE_DRAINING
            _DRAINS.inc()
            started = time.monotonic()
            remaining_time = deadline
            while self._active > 0 and remaining_time > 0:
                self._cond.wait(remaining_time)
                remaining_time = deadline - (time.monotonic() - started)
            remaining = self._active
        flushed = 0
        for hook in self._flush_hooks:
            try:
                hook()
            except Exception:  # a broken hook must not wedge the drain
                pass
            flushed += 1
        with self._cond:
            self._state = STATE_STOPPED
            report = DrainReport(
                completed=remaining == 0,
                waited_seconds=time.monotonic() - started,
                remaining=remaining,
                flushed=flushed)
            self.last_drain = report
            self._cond.notify_all()
        return report
