"""The sharded serving tier's front end: consistent-hash routing.

:class:`RouterService` sits in front of N workers (each one a full
single-node service stack, see :mod:`repro.service.worker`) and
forwards every ``/v1/generate`` request to the worker that *owns* it
on a consistent-hash ring (:mod:`repro.service.ring`). The routing
key is exactly the worker-side generation single-flight key::

    fingerprint(content_fingerprint_of_sources(sources),
                semantic_options, salt=SERVICE_GENERATE_SALT)

computed without parsing (the content fingerprint is a pure hash of
the source texts). Identical requests therefore always land on the
same shard, where the worker's result memo and single-flight
coalescing collapse them — sharding multiplies throughput without
multiplying pipeline executions.

Failure handling leans on :mod:`repro.resilience`:

* a background prober marks a worker down after
  ``failure_threshold`` consecutive failed ``/healthz`` probes and
  back up on the first success — ring rebalancing on both edges is
  deterministic (every router observing the same healthy set computes
  the same assignments);
* each worker has a :class:`~repro.resilience.CircuitBreaker`; a
  tripped breaker excludes the worker from candidate selection
  without a doomed round trip;
* a transport failure (or an injected crash at the
  ``router.dispatch`` fault site) marks the worker down and *fails
  over* to the next owner on the restricted ring — the caller sees
  the byte-identical payload from the surviving shard, or a typed
  retriable error, never a hang;
* an injectable monotonic ``clock`` bounds the whole failover loop by
  ``dispatch_deadline`` (typed retriable ``dispatch-deadline`` error
  past it).

``/metrics`` and ``/cache/stats`` aggregate across shards (exact for
process workers, which own their registries; see
:func:`repro.obs.aggregate_snapshots` for the histogram contract).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from ..codegen.options import PipelineOptions
from ..faults import FaultInjected, InjectedCrash, fault_point
from ..fingerprint import SERVICE_GENERATE_SALT, fingerprint
from ..obs import METRICS, Summarizable, aggregate_snapshots, record_span
from ..resilience import CircuitBreaker, CircuitOpen
from ..sysml import content_fingerprint_of_sources
from .admission import AdmissionError
from .client import RetriableServiceError, ServiceClient
from .lifecycle import DrainReport, ServiceLifecycle
from .ring import DEFAULT_VNODES, HashRing, RingEmpty
from .server import (BadRequest, REQUEST_OPTION_KEYS, _STATUS_BY_CODE,
                     parse_generate_body)
from .worker import WorkerEndpoint

_REQUESTS = METRICS.counter("router.requests")
_RESPONSES = METRICS.counter("router.responses")
_ERRORS = METRICS.counter("router.errors")
_FORWARDED = METRICS.counter("router.forwarded")
_FAILOVERS = METRICS.counter("router.failovers")
_PROBES = METRICS.counter("router.probes")
_WORKERS_DOWN = METRICS.counter("router.workers_marked_down")
_WORKERS_UP = METRICS.counter("router.workers_marked_up")
_HEALTHY = METRICS.gauge("router.workers_healthy")
_LATENCY = METRICS.histogram("router.request_seconds")


@dataclass
class TopologyDrainReport(Summarizable):
    """Outcome of draining the whole sharded topology.

    ``completed`` only when the router finished its own in-flight work
    *and* every worker reported a clean drain — a worker that died
    without writing a report (``None``) fails the topology drain.
    """

    router: DrainReport
    workers: dict[str, DrainReport | None] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.router.completed and all(
            report is not None and report.completed
            for report in self.workers.values())

    def summary(self) -> dict[str, object]:
        return {
            "completed": self.completed,
            "router": self.router.summary(),
            "workers": {name: (report.summary() if report is not None
                               else None)
                        for name, report in sorted(self.workers.items())},
        }


class RouterService:
    """Consistent-hash request router over a set of workers."""

    def __init__(self, workers, options: PipelineOptions | None = None, *,
                 vnodes: int = DEFAULT_VNODES,
                 probe_interval: float = 0.5,
                 probe_timeout: float = 2.0,
                 failure_threshold: int = 3,
                 dispatch_deadline: float = 30.0,
                 worker_timeout: float = 60.0,
                 breaker_threshold: int = 3,
                 breaker_reset: float = 2.0,
                 clock=time.monotonic):
        """*workers*: :class:`~repro.service.worker.WorkerEndpoint`
        instances or worker objects exposing ``.endpoint`` (and then
        optionally ``.drain()`` for topology drains). *options* must
        mirror the workers' pipeline options so the routing key equals
        the worker-side single-flight key."""
        base = options if options is not None else PipelineOptions()
        self.options = base
        self.vnodes = vnodes
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.failure_threshold = failure_threshold
        self.dispatch_deadline = dispatch_deadline
        self.worker_timeout = worker_timeout
        self._clock = clock
        self.lifecycle = ServiceLifecycle()
        self._workers: dict[str, object] = {}
        self._endpoints: dict[str, WorkerEndpoint] = {}
        for worker in workers:
            endpoint = worker if isinstance(worker, WorkerEndpoint) \
                else worker.endpoint
            if endpoint.name in self._endpoints:
                raise ValueError(f"duplicate worker name "
                                 f"{endpoint.name!r}")
            self._endpoints[endpoint.name] = endpoint
            self._workers[endpoint.name] = worker
        self._lock = threading.Lock()
        self._healthy: set[str] = set(self._endpoints)
        self._misses: dict[str, int] = dict.fromkeys(self._endpoints, 0)
        self._ring = HashRing(self._endpoints, vnodes)
        self._healthy_ring = self._ring
        self._breakers = {
            name: CircuitBreaker(name=f"router.worker.{name}",
                                 failure_threshold=breaker_threshold,
                                 reset_timeout=breaker_reset,
                                 clock=clock)
            for name in self._endpoints}
        self._shard_counters = {
            name: METRICS.counter(f"router.shard.{name}.forwarded")
            for name in self._endpoints}
        self._probe_stop = threading.Event()
        self._probe_thread: threading.Thread | None = None
        _HEALTHY.set(len(self._healthy))

    # -- routing ---------------------------------------------------------

    def _resolve_options(self, overrides: dict | None) -> PipelineOptions:
        if not overrides:
            return self.options
        unknown = set(overrides) - set(REQUEST_OPTION_KEYS)
        if unknown:
            raise BadRequest(
                f"unknown option(s): {', '.join(sorted(unknown))}; "
                f"requests may set {', '.join(REQUEST_OPTION_KEYS)}")
        return self.options.replace(**overrides)

    def routing_key(self, sources, overrides: dict | None = None) -> str:
        """The shard-affinity key for one request.

        Byte-for-byte the key the owning worker derives for its
        generation single-flight — computed here from a pure hash of
        the source texts, no parsing.
        """
        options = self._resolve_options(overrides)
        semantic = {key: getattr(options, key)
                    for key in REQUEST_OPTION_KEYS}
        return fingerprint(content_fingerprint_of_sources(list(sources)),
                           semantic, salt=SERVICE_GENERATE_SALT)

    def assign(self, sources, overrides: dict | None = None) -> str:
        """The healthy worker currently owning this request."""
        with self._lock:
            ring = self._healthy_ring
        return ring.assign(self.routing_key(sources, overrides))

    # -- health ----------------------------------------------------------

    @property
    def worker_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def healthy_workers(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._healthy))

    def mark_down(self, name: str) -> None:
        """Exclude *name* from the ring (idempotent, deterministic)."""
        with self._lock:
            if name not in self._healthy:
                return
            self._healthy.discard(name)
            self._healthy_ring = self._ring.restrict(self._healthy)
            _WORKERS_DOWN.inc()
            _HEALTHY.set(len(self._healthy))

    def mark_up(self, name: str) -> None:
        """Re-admit *name* to the ring (idempotent)."""
        if name not in self._endpoints:
            raise KeyError(name)
        with self._lock:
            if name in self._healthy:
                return
            self._healthy.add(name)
            self._misses[name] = 0
            self._healthy_ring = self._ring.restrict(self._healthy)
            _WORKERS_UP.inc()
            _HEALTHY.set(len(self._healthy))

    def probe_once(self) -> dict[str, bool]:
        """One health sweep over every configured worker.

        A worker is marked down after ``failure_threshold``
        *consecutive* failed probes (a single dropped packet must not
        reshard traffic) and back up on the first success.
        """
        results: dict[str, bool] = {}
        for name, endpoint in self._endpoints.items():
            _PROBES.inc()
            ok = False
            try:
                with ServiceClient(endpoint.port, endpoint.host,
                                   timeout=self.probe_timeout) as client:
                    status, _, _ = client.request("GET", "/healthz")
                ok = status == 200
            except Exception:  # noqa: BLE001 - any transport failure
                ok = False
            results[name] = ok
            if ok:
                self._misses[name] = 0
                self.mark_up(name)  # idempotent when already healthy
            else:
                self._misses[name] += 1
                if self._misses[name] >= self.failure_threshold:
                    self.mark_down(name)
        return results

    def start_probes(self) -> None:
        if self._probe_thread is not None:
            return
        self._probe_stop.clear()

        def loop() -> None:
            while not self._probe_stop.wait(self.probe_interval):
                self.probe_once()

        self._probe_thread = threading.Thread(
            target=loop, name="router-probes", daemon=True)
        self._probe_thread.start()

    def stop_probes(self) -> None:
        if self._probe_thread is None:
            return
        self._probe_stop.set()
        self._probe_thread.join(timeout=5)
        self._probe_thread = None

    # -- dispatch --------------------------------------------------------

    def dispatch(self, sources, overrides: dict | None = None, *,
                 client_id: str | None = None,
                 raw_body: bytes | None = None,
                 content_type: str = "application/json"
                 ) -> tuple[int, dict[str, str], bytes, str]:
        """Route one generate request; returns
        ``(status, headers, payload, worker_name)``.

        The worker's response travels back verbatim (including typed
        admission errors — backpressure propagates to the caller, it
        is not the router's to absorb). Only *transport*-level
        failures fail over: a connection error or an injected crash at
        the ``router.dispatch`` site marks the worker down and retries
        on the next deterministic owner. With no healthy owner left
        (``no-workers``) or past ``dispatch_deadline``
        (``dispatch-deadline``) a typed retriable error surfaces
        instead.
        """
        _REQUESTS.inc()
        self.lifecycle.request_started()
        started = time.perf_counter()
        try:
            key = self.routing_key(sources, overrides)
            if raw_body is None:
                document: dict[str, object] = {"sources": list(sources)}
                if overrides:
                    document["options"] = overrides
                raw_body = json.dumps(document).encode("utf-8")
                content_type = "application/json"
            deadline = self._clock() + self.dispatch_deadline
            excluded: set[str] = set()
            attempts = 0
            while True:
                with self._lock:
                    ring = self._healthy_ring
                if excluded:
                    ring = ring.restrict(
                        set(ring.members) - excluded)
                try:
                    name = ring.assign(key)
                except RingEmpty:
                    raise RetriableServiceError(
                        503, "no-workers",
                        "no healthy worker owns this request",
                        retry_after=max(self.probe_interval, 0.1))
                if attempts and self._clock() >= deadline:
                    raise RetriableServiceError(
                        503, "dispatch-deadline",
                        f"failover exceeded the "
                        f"{self.dispatch_deadline}s dispatch deadline",
                        retry_after=max(self.probe_interval, 0.1))
                attempts += 1
                breaker = self._breakers[name]
                try:
                    # chaos site: an active fault plan can crash the
                    # forward mid-flight (failover) or declare the
                    # dispatch transiently unavailable (typed error)
                    fault_point("router.dispatch")
                    breaker.allow()
                    status, headers, payload = self._forward(
                        name, raw_body, content_type, client_id)
                except InjectedCrash:
                    self.mark_down(name)
                    excluded.add(name)
                    _FAILOVERS.inc()
                    continue
                except CircuitOpen:
                    excluded.add(name)
                    _FAILOVERS.inc()
                    continue
                except (ConnectionError, OSError):
                    breaker.record_failure()
                    self.mark_down(name)
                    excluded.add(name)
                    _FAILOVERS.inc()
                    continue
                breaker.record_success()
                _FORWARDED.inc()
                self._shard_counters[name].inc()
                seconds = time.perf_counter() - started
                _LATENCY.observe(seconds)
                record_span(f"router:dispatch:{name}", seconds,
                            status=status, attempts=attempts)
                _RESPONSES.inc()
                return status, headers, payload, name
        finally:
            self.lifecycle.request_finished()

    def _forward(self, name: str, body: bytes, content_type: str,
                 client_id: str | None
                 ) -> tuple[int, dict[str, str], bytes]:
        endpoint = self._endpoints[name]
        headers = {"Content-Type": content_type}
        if client_id:
            headers["X-Client-Id"] = client_id
        with ServiceClient(endpoint.port, endpoint.host,
                           timeout=self.worker_timeout) as client:
            return client.request("POST", "/v1/generate", body=body,
                                  headers=headers)

    # -- aggregation -----------------------------------------------------

    def _worker_json(self, name: str, path: str) -> dict | None:
        endpoint = self._endpoints[name]
        try:
            with ServiceClient(endpoint.port, endpoint.host,
                               timeout=self.probe_timeout) as client:
                status, _, body = client.request("GET", path)
            if status != 200:
                return None
            return json.loads(body)
        except (OSError, ValueError):
            return None

    def metrics_snapshot(self) -> dict[str, object]:
        """The fleet metrics view: worker registries summed, router
        instruments overlaid.

        Exact for process workers. In-process
        :class:`~repro.service.worker.LocalWorker` shards share one
        registry, so their per-worker snapshots overlap and the sum
        over-counts — use process workers when exactness matters.
        """
        snapshots = [snapshot for snapshot in
                     (self._worker_json(name, "/metrics")
                      for name in self.healthy_workers())
                     if snapshot is not None]
        merged = aggregate_snapshots(snapshots)
        for name, value in METRICS.snapshot().items():
            if name.startswith("router."):
                merged[name] = value
        return merged

    def cache_stats(self) -> dict[str, object]:
        """Per-worker cache stats plus the combined view.

        Process-local counters (hits/misses/evictions/corruption/
        io_errors) sum across workers; store-level facts (directory,
        entries, total_bytes, max_bytes) come from the first
        responding worker — with a shared ``--cache-dir`` every worker
        reports the same store, so summing those would double-count.
        """
        per_worker: dict[str, dict | None] = {
            name: self._worker_json(name, "/cache/stats")
            for name in self.worker_names}
        combined: dict[str, object] = {}
        for stats in per_worker.values():
            if not isinstance(stats, dict) or stats.get("cache") is None \
                    and "entries" not in stats:
                continue
            for key in ("hits", "misses", "evictions", "corruption",
                        "io_errors"):
                if key in stats:
                    combined[key] = combined.get(key, 0) + stats[key]
            for key in ("directory", "entries", "total_bytes",
                        "max_bytes"):
                if key in stats and key not in combined:
                    combined[key] = stats[key]
        return {"workers": per_worker, "combined": combined}

    def health(self) -> dict[str, object]:
        healthy = self.healthy_workers()
        return {
            "status": self.lifecycle.state,
            "active_requests": self.lifecycle.active,
            "workers": {name: name in healthy
                        for name in self.worker_names},
            "healthy_workers": len(healthy),
            "total_workers": len(self._endpoints),
            "vnodes": self.vnodes,
        }

    # -- shutdown --------------------------------------------------------

    def drain(self, deadline: float | None = None
              ) -> TopologyDrainReport:
        """Drain the topology: router first (stop accepting, finish
        in-flight forwards), then every worker."""
        self.stop_probes()
        router_report = self.lifecycle.drain(
            deadline if deadline is not None else 10.0)
        worker_reports: dict[str, DrainReport | None] = {}
        for name, worker in self._workers.items():
            drain = getattr(worker, "drain", None)
            if drain is None:  # a bare endpoint: nothing to manage
                worker_reports[name] = None
                continue
            try:
                worker_reports[name] = drain(deadline)
            except Exception:  # noqa: BLE001 - dead worker
                worker_reports[name] = None
        return TopologyDrainReport(router=router_report,
                                   workers=worker_reports)

    def close(self) -> None:
        self.stop_probes()


# -- HTTP front end ------------------------------------------------------


class RouterRequestHandler(BaseHTTPRequestHandler):
    """The router's HTTP face — same wire contract as a worker, plus
    ``X-Repro-Worker`` on responses and ``GET /workers``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-router/1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass

    @property
    def router(self) -> RouterService:
        return self.server.router  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        path = urlsplit(self.path).path
        if path == "/healthz":
            health = self.router.health()
            status = 200 if health["status"] == "serving" \
                and health["healthy_workers"] else 503
            self._send_json(status, health)
        elif path == "/metrics":
            self._send_json(200, self.router.metrics_snapshot())
        elif path == "/cache/stats":
            self._send_json(200, self.router.cache_stats())
        elif path == "/workers":
            health = self.router.health()
            self._send_json(200, {"workers": health["workers"]})
        else:
            self._send_error(404, "not-found", f"no route for {path}")

    def do_POST(self) -> None:
        path = urlsplit(self.path).path
        if path != "/v1/generate":
            self._send_error(404, "not-found", f"no route for {path}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        content_type = self.headers.get("Content-Type") \
            or "text/plain"
        try:
            sources, overrides = parse_generate_body(body, content_type)
        except BadRequest as exc:
            self._send_error(400, "bad-request", str(exc))
            return
        client_id = self.headers.get("X-Client-Id") \
            or self.client_address[0]
        try:
            status, headers, payload, worker = self.router.dispatch(
                sources, overrides, client_id=client_id,
                raw_body=body, content_type=content_type)
        except BadRequest as exc:
            self._send_error(400, "bad-request", str(exc))
        except RetriableServiceError as exc:
            self._send_error(exc.status, exc.code, str(exc),
                             retriable=True,
                             retry_after=exc.retry_after)
        except FaultInjected as exc:
            self._send_error(503, exc.code, str(exc), retriable=True,
                             retry_after=getattr(exc, "retry_after", 1))
        except AdmissionError as exc:
            self._send_error(_STATUS_BY_CODE.get(exc.code, 503),
                             exc.code, str(exc),
                             retriable=exc.retriable, retry_after=1)
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            self._send_error(500, "internal",
                             f"{type(exc).__name__}: {exc}")
        else:
            passthrough = {
                key: value for key, value in headers.items()
                if key.startswith("x-repro-") or key == "retry-after"}
            passthrough["X-Repro-Worker"] = worker
            self._send_bytes(
                status, payload,
                content_type=headers.get("content-type",
                                         "application/json"),
                extra_headers=passthrough)

    # -- responses -------------------------------------------------------

    def _send_bytes(self, status: int, payload: bytes, *,
                    content_type: str = "application/json",
                    extra_headers: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, document: object, *,
                   extra_headers: dict[str, str] | None = None) -> None:
        self._send_bytes(
            status, json.dumps(document, indent=2,
                               default=str).encode("utf-8"),
            extra_headers=extra_headers)

    def _send_error(self, status: int, code: str, message: str, *,
                    retriable: bool | None = None,
                    retry_after: float | None = None) -> None:
        _ERRORS.inc()
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(retry_after)
        self._send_json(status, {
            "error": {
                "code": code,
                "message": message,
                "retriable": bool(retriable) if retriable is not None
                else status in (429, 503),
            },
        }, extra_headers=headers)


class RouterHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`RouterService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], router: RouterService):
        super().__init__(address, RouterRequestHandler)
        self.router = router

    @property
    def port(self) -> int:
        return self.server_address[1]

    def drain_and_shutdown(self, deadline: float | None = None
                           ) -> TopologyDrainReport:
        """Drain the topology, then stop ``serve_forever``."""
        report = self.router.drain(deadline)
        self.shutdown()
        return report
