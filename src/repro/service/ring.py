"""Consistent-hash ring: deterministic shard assignment for the
sharded serving tier.

The router in front of N worker processes must send *identical*
requests to the *same* worker — otherwise the per-worker result memo
and single-flight coalescing stop collapsing repeats — while spreading
*distinct* requests evenly and moving as little traffic as possible
when a worker joins or leaves. A consistent-hash ring with virtual
nodes gives all three:

* every member contributes ``vnodes`` placement points on a 64-bit
  ring, each point a pure SHA-256 hash of ``(member, index)`` under
  :data:`~repro.fingerprint.ROUTER_RING_SALT` — no :mod:`random`
  state, no process identity, no wall clock. Two rings built from the
  same member set (in any order, in any process, before or after a
  pickle round-trip) assign every key identically;
* a key is assigned to the member owning the first placement point at
  or clockwise after the key's own hash, so with 128 vnodes the load
  spread stays within ~2× of uniform for realistic member counts;
* removing a member deletes only that member's points: keys assigned
  to *other* members never move (exactly — not probabilistically),
  and adding a member steals roughly ``1/(N+1)`` of the keyspace,
  taken proportionally from everyone.

Rings are immutable; :meth:`HashRing.with_member` /
:meth:`HashRing.without_member` derive the rebalanced ring, which is
what makes failover deterministic: every router that observes the same
set of healthy workers computes the same assignment for every key.
"""

from __future__ import annotations

from bisect import bisect_right

from ..fingerprint import ROUTER_RING_SALT, fingerprint

#: Placement points per member. 128 keeps the spread within ~2x of
#: uniform (checked by a hypothesis suite) at ~10µs build cost per
#: member.
DEFAULT_VNODES = 128


class RingEmpty(LookupError):
    """Assignment was requested from a ring with no members."""


def _point(label: str) -> int:
    """A 64-bit ring position for *label* (pure content hash)."""
    return int(fingerprint(label, salt=ROUTER_RING_SALT)[:16], 16)


class HashRing:
    """An immutable consistent-hash ring over named members."""

    __slots__ = ("members", "vnodes", "_points", "_owners")

    def __init__(self, members, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        names = sorted(set(str(member) for member in members))
        self.members: tuple[str, ...] = tuple(names)
        self.vnodes = vnodes
        placed: list[tuple[int, str]] = []
        for member in names:
            placed.extend((_point(f"{member}#{index}"), member)
                          for index in range(vnodes))
        # sort by (point, member): the member tie-break keeps even a
        # 64-bit point collision deterministic
        placed.sort()
        self._points = [point for point, _ in placed]
        self._owners = [member for _, member in placed]

    # -- assignment ------------------------------------------------------

    def assign(self, key: str) -> str:
        """The member owning *key* (raises :class:`RingEmpty` when
        the ring has no members)."""
        if not self._points:
            raise RingEmpty("hash ring has no members")
        index = bisect_right(self._points, _point(key))
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def spread(self, keys) -> dict[str, int]:
        """``{member: assigned-key count}`` over *keys* (zero-filled)."""
        counts = {member: 0 for member in self.members}
        for key in keys:
            counts[self.assign(key)] += 1
        return counts

    # -- derivation ------------------------------------------------------

    def with_member(self, member: str) -> "HashRing":
        """A ring with *member* added (same ring if already present)."""
        if member in self.members:
            return self
        return HashRing((*self.members, member), self.vnodes)

    def without_member(self, member: str) -> "HashRing":
        """A ring with *member* removed (same ring if absent)."""
        if member not in self.members:
            return self
        return HashRing((name for name in self.members
                         if name != member), self.vnodes)

    def restrict(self, members) -> "HashRing":
        """A ring over ``self.members ∩ members`` — what the router
        uses to exclude unhealthy workers deterministically."""
        allowed = set(members)
        kept = tuple(name for name in self.members if name in allowed)
        if kept == self.members:
            return self
        return HashRing(kept, self.vnodes)

    # -- identity --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.members)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HashRing)
                and self.members == other.members
                and self.vnodes == other.vnodes)

    def __hash__(self) -> int:
        return hash((self.members, self.vnodes))

    def __repr__(self) -> str:
        return (f"HashRing(members={list(self.members)!r}, "
                f"vnodes={self.vnodes})")

    # -- pickling (worker processes receive rings by value) --------------

    def __getstate__(self) -> dict[str, object]:
        # placement points are derived state: rebuilding them from the
        # member set is what guarantees cross-process determinism
        return {"members": self.members, "vnodes": self.vnodes}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(state["members"], state["vnodes"])  # type: ignore[arg-type]
