"""The configuration-serving core and its HTTP front end.

:class:`ConfigurationService` turns the one-shot generation pipeline
into a long-running concurrent service. Each request travels::

    rate limit -> lifecycle admit -> result memo -> admission slot
        -> parse single-flight -> generation single-flight -> memo put

* the **rate limiter** charges the caller's token bucket;
* the **lifecycle** refuses requests once draining has begun;
* the **result memo** is a small in-memory LRU of finished response
  payloads — a repeat of a recently served request costs no pipeline
  slot at all;
* the **admission controller** bounds how many requests occupy the
  pipeline concurrently (policy: reject / block / shed-oldest);
* the **parse single-flight** coalesces concurrent parses of the same
  sources; the **generation single-flight** coalesces concurrent
  pipeline runs keyed on ``Model.content_fingerprint`` plus the
  semantic options, so N identical in-flight requests execute the
  pipeline exactly once and share one byte-identical payload.

When ``PipelineOptions.incremental`` is on (the default), the leader
executes through a warm per-option-set :class:`IncrementalEngine`
instead of a cold pipeline run: an edited source set regenerates only
the artifacts whose model subtree actually changed, and the response
reports the split via ``X-Repro-Reused`` / ``X-Repro-Regenerated``
headers. The payload itself stays deterministic — provenance travels
in headers, never in the bundle.

:class:`ServiceHTTPServer` (a stdlib ``ThreadingHTTPServer``) exposes
the service as::

    POST /v1/generate   SysML source in, manifest bundle out
    GET  /healthz       lifecycle state (503 while draining/stopped)
    GET  /metrics       the full repro.obs registry snapshot
    GET  /cache/stats   artifact-cache statistics

Response payloads are *deterministic*: the bundle carries manifests,
intermediate configs and count-only summary data but no wall-clock
timings, so every caller of an identical request — coalesced or not —
receives byte-identical bytes (timings travel in response headers).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from ..codegen.incremental import IncrementalEngine
from ..codegen.options import PipelineOptions
from ..codegen.pipeline import GenerationPipeline, GenerationResult
from ..faults import FaultInjected, fault_point
from ..fingerprint import (SERVICE_GENERATE_SALT, SERVICE_MEMO_SALT,
                           SERVICE_PARSE_SALT, fingerprint)
from ..obs import METRICS, snapshot_delta
from ..sysml import load_model
from ..sysml.errors import SysMLError
from .admission import (AdmissionController, AdmissionError, POLICY_REJECT,
                        RateLimiter)
from .lifecycle import ServiceLifecycle
from .singleflight import SingleFlight

_REQUESTS = METRICS.counter("service.requests")
_RESPONSES = METRICS.counter("service.responses")
_ERRORS = METRICS.counter("service.errors")
_EXECUTIONS = METRICS.counter("service.pipeline_executions")
_MEMO_HITS = METRICS.counter("service.memo_hits")
_LATENCY = METRICS.histogram("service.request_seconds")

#: How many per-option-set incremental engines the service keeps warm.
#: Each engine holds one parsed model session, so this bounds memory.
MAX_ENGINES = 4

#: Keys of ``options`` overrides a request may carry — exactly the
#: output-shaping knobs; execution knobs (jobs/cache) stay server-side.
REQUEST_OPTION_KEYS = ("capacity", "namespace", "broker_url",
                      "database_url", "validate")


class BadRequest(Exception):
    """A malformed request body or unknown option (HTTP 400)."""


def parse_generate_body(body: bytes, content_type: str | None
                        ) -> tuple[list[str], dict | None]:
    """Decode one ``POST /v1/generate`` body into ``(sources, overrides)``.

    Shared by the worker-facing handler here and the sharded router's
    front-end handler (:mod:`repro.service.router`) so both tiers accept
    exactly the same wire format: a JSON object carrying ``sources``
    (or a single ``source``) plus optional ``options``, or a plain-text
    body treated as one SysML document. Raises :class:`BadRequest`.
    """
    media = (content_type or "").split(";")[0].strip().lower()
    if media != "application/json":
        source = body.decode("utf-8", errors="replace")
        if not source.strip():
            raise BadRequest("empty request body")
        return [source], None
    try:
        document = json.loads(body)
    except ValueError as exc:
        raise BadRequest(f"invalid JSON body: {exc}") from exc
    if not isinstance(document, dict):
        raise BadRequest("JSON body must be an object")
    sources = document.get("sources")
    if sources is None and "source" in document:
        sources = [document["source"]]
    if not isinstance(sources, list) or not sources \
            or not all(isinstance(s, str) for s in sources):
        raise BadRequest(
            "body must carry 'sources': [str, ...] (or 'source')")
    overrides = document.get("options")
    if overrides is not None and not isinstance(overrides, dict):
        raise BadRequest("'options' must be an object")
    return sources, overrides


def bundle_from_result(result: GenerationResult, model_fingerprint: str,
                       options: PipelineOptions) -> dict[str, object]:
    """The deterministic manifest bundle for one generation result.

    Deliberately excludes timings so coalesced followers, memo hits and
    fresh executions of the same request all serialize identically.
    """
    return {
        "fingerprint": model_fingerprint,
        "options": {key: getattr(options, key)
                    for key in REQUEST_OPTION_KEYS},
        "summary": {
            "opcua_servers": result.opcua_server_count,
            "opcua_clients": result.opcua_client_count,
            "config_size_kb": round(result.config_size_kb, 1),
            "machines": len(result.machine_configs),
            "manifest_files": len(result.manifests),
        },
        "manifests": result.manifests,
        "intermediate": {
            "machine_configs": result.machine_configs,
            "server_configs": result.server_configs,
            "client_configs": result.client_configs,
            "storage_configs": result.storage_configs,
        },
    }


def bundle_bytes(result: GenerationResult, model_fingerprint: str,
                 options: PipelineOptions) -> bytes:
    return json.dumps(bundle_from_result(result, model_fingerprint,
                                         options),
                      indent=2).encode("utf-8")


class ConfigurationService:
    """Thread-safe serving facade over the generation pipeline."""

    def __init__(self, options: PipelineOptions | None = None, *,
                 max_inflight: int = 8, policy: str = POLICY_REJECT,
                 block_deadline: float = 10.0, max_queue: int | None = None,
                 rate: float = 0.0, burst: float | None = None,
                 memo_entries: int = 64, drain_deadline: float = 10.0):
        base = options if options is not None else PipelineOptions()
        if base.tracer is not None:
            # a Tracer's span stack is single-threaded; concurrent runs
            # sharing one would interleave, so the service drops it
            base = base.replace(tracer=None)
        self.options = base
        self.pipeline = GenerationPipeline(base)
        self.admission = AdmissionController(
            max_inflight, policy=policy, block_deadline=block_deadline,
            max_queue=max_queue)
        self.limiter = RateLimiter(rate, burst)
        self.lifecycle = ServiceLifecycle()
        self.drain_deadline = drain_deadline
        self.started_monotonic = time.monotonic()
        self._parse_flight = SingleFlight()
        self._generate_flight = SingleFlight()
        self._memo: OrderedDict[str, bytes] = OrderedDict()
        self._memo_entries = memo_entries
        self._memo_lock = threading.Lock()
        #: Warm incremental engines, one per semantic-options set.
        #: Each slot pairs the engine with its own lock: a ModelSession
        #: mutates state on update, so runs against one engine must be
        #: serialized even when the sources (and thus the generation
        #: single-flight keys) differ.
        self._engines: OrderedDict[
            str, tuple[IncrementalEngine, threading.Lock]] = OrderedDict()
        self._engines_lock = threading.Lock()
        #: Captured by the drain's flush hook — the service's final
        #: telemetry, available after shutdown for reporting.
        self.final_metrics: dict[str, object] | None = None
        self.lifecycle.register_flush(self._flush_metrics)

    # -- request path ----------------------------------------------------

    def generate(self, sources, overrides: dict | None = None,
                 client: str = "anon") -> tuple[bytes, dict[str, object]]:
        """Serve one configuration request.

        *sources* is a list of SysML textual-notation documents;
        *overrides* optionally adjusts the semantic pipeline options
        for this request. Returns ``(payload, info)`` where *payload*
        is the serialized manifest bundle and *info* carries
        per-request facts (single-flight role, wall seconds, metric
        delta) that must NOT leak into the deterministic payload.
        """
        _REQUESTS.inc()
        # chaos site: an active fault plan can declare this request
        # transiently unavailable (typed, retriable, Retry-After hint)
        fault_point("service.generate")
        self.limiter.check(client)
        self.lifecycle.request_started()
        started = time.perf_counter()
        before = METRICS.snapshot()
        try:
            options = self._resolve_options(overrides)
            memo_key = fingerprint(list(sources),
                                   self._semantic(options),
                                   salt=SERVICE_MEMO_SALT)
            payload = self._memo_get(memo_key)
            counts = None
            if payload is not None:
                _MEMO_HITS.inc()
                role = "memo"
            else:
                with self.admission.slot():
                    model = self._load(sources)
                    generate_key = fingerprint(
                        model.content_fingerprint,
                        self._semantic(options),
                        salt=SERVICE_GENERATE_SALT)
                    (payload, counts), leader = self._generate_flight.do(
                        generate_key,
                        lambda: self._execute(model, options,
                                              list(sources)))
                    role = "leader" if leader else "follower"
                self._memo_put(memo_key, payload)
            seconds = time.perf_counter() - started
            _LATENCY.observe(seconds)
            _RESPONSES.inc()
            info: dict[str, object] = {
                "singleflight": role,
                "seconds": seconds,
                "metrics_delta": snapshot_delta(before,
                                                METRICS.snapshot()),
            }
            if counts is not None:
                info["reused"], info["regenerated"] = counts
            return payload, info
        finally:
            self.lifecycle.request_finished()

    def _resolve_options(self, overrides: dict | None) -> PipelineOptions:
        if not overrides:
            return self.options
        unknown = set(overrides) - set(REQUEST_OPTION_KEYS)
        if unknown:
            raise BadRequest(
                f"unknown option(s): {', '.join(sorted(unknown))}; "
                f"requests may set {', '.join(REQUEST_OPTION_KEYS)}")
        return self.options.replace(**overrides)

    def _semantic(self, options: PipelineOptions) -> dict[str, object]:
        return {key: getattr(options, key)
                for key in REQUEST_OPTION_KEYS}

    def _load(self, sources):
        """Parse + resolve, coalescing concurrent identical parses.

        The shared :class:`~repro.sysml.elements.Model` is read-only
        after resolution, so handing one instance to several request
        threads is safe.
        """
        key = fingerprint(list(sources), salt=SERVICE_PARSE_SALT)
        model, _ = self._parse_flight.do(
            key, lambda: load_model(*sources, cache=self.pipeline.cache))
        return model

    def _engine_slot(self, options: PipelineOptions):
        """The warm incremental engine for one semantic-options set.

        A small LRU: each engine carries a full model session, so a
        service seeing many distinct option sets cycles the oldest
        out rather than accumulating sessions without bound.
        """
        key = fingerprint(self._semantic(options),
                          salt=SERVICE_GENERATE_SALT)
        with self._engines_lock:
            slot = self._engines.get(key)
            if slot is None:
                slot = (IncrementalEngine(options), threading.Lock())
                self._engines[key] = slot
                while len(self._engines) > MAX_ENGINES:
                    self._engines.popitem(last=False)
            else:
                self._engines.move_to_end(key)
            return slot

    def _execute(self, model, options: PipelineOptions,
                 sources: list[str] | None = None
                 ) -> tuple[bytes, tuple[int, int] | None]:
        """One real pipeline execution (the single-flight leader path).

        Returns ``(payload, counts)`` where *counts* is the
        ``(reused, regenerated)`` artifact provenance pair when the
        incremental engine served the request, else ``None``. The
        whole tuple is the single-flight value, so coalesced
        followers see the leader's reuse counts too.
        """
        _EXECUTIONS.inc()
        if sources is not None and options.incremental:
            engine, lock = self._engine_slot(options)
            with lock:
                result = engine.generate(*sources)
            states = list(result.provenance.values())
            counts = (states.count("reused"), states.count("regenerated"))
            return (bundle_bytes(result, model.content_fingerprint,
                                 options), counts)
        pipeline = self.pipeline if options is self.options \
            else GenerationPipeline(options)
        result = pipeline.run_on_model(model)
        return (bundle_bytes(result, model.content_fingerprint, options),
                None)

    # -- result memo -----------------------------------------------------

    def _memo_get(self, key: str) -> bytes | None:
        if not self._memo_entries:
            return None
        with self._memo_lock:
            payload = self._memo.get(key)
            if payload is not None:
                self._memo.move_to_end(key)
            return payload

    def _memo_put(self, key: str, payload: bytes) -> None:
        if not self._memo_entries:
            return
        with self._memo_lock:
            self._memo[key] = payload
            self._memo.move_to_end(key)
            while len(self._memo) > self._memo_entries:
                self._memo.popitem(last=False)

    # -- introspection ---------------------------------------------------

    def health(self) -> dict[str, object]:
        return {
            "status": self.lifecycle.state,
            "active_requests": self.lifecycle.active,
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "policy": self.admission.policy,
            "max_inflight": self.admission.max_inflight,
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3),
        }

    def cache_stats(self) -> dict[str, object] | None:
        cache = self.pipeline.cache
        return cache.stats() if cache is not None else None

    # -- shutdown --------------------------------------------------------

    def drain(self, deadline: float | None = None):
        """Graceful drain (see :mod:`repro.service.lifecycle`)."""
        effective = deadline if deadline is not None \
            else self.drain_deadline
        return self.lifecycle.drain(effective)

    def _flush_metrics(self) -> None:
        self.final_metrics = METRICS.snapshot()


# -- HTTP front end ------------------------------------------------------

#: HTTP status per admission error code; everything here is retriable.
_STATUS_BY_CODE = {
    "rate-limited": 429,
    "rejected": 503,
    "shed": 503,
    "deadline-exceeded": 503,
    "draining": 503,
}


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the service object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # request logging is the metrics registry's job

    @property
    def service(self) -> ConfigurationService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:
        path = urlsplit(self.path).path
        if path == "/healthz":
            health = self.service.health()
            status = 200 if health["status"] == "serving" else 503
            self._send_json(status, health)
        elif path == "/metrics":
            self._send_json(200, METRICS.snapshot())
        elif path == "/cache/stats":
            stats = self.service.cache_stats()
            self._send_json(200, stats if stats is not None
                            else {"cache": None})
        else:
            self._send_error(404, "not-found", f"no route for {path}")

    def do_POST(self) -> None:
        path = urlsplit(self.path).path
        if path != "/v1/generate":
            self._send_error(404, "not-found", f"no route for {path}")
            return
        try:
            sources, overrides = self._parse_request_body()
        except BadRequest as exc:
            self._send_error(400, "bad-request", str(exc))
            return
        client = self.headers.get("X-Client-Id") \
            or self.client_address[0]
        try:
            # chaos site: latency or injected 503s at the HTTP boundary
            fault_point("service.request")
            payload, info = self.service.generate(sources, overrides,
                                                  client=client)
        except FaultInjected as exc:
            self._send_error(503, exc.code, str(exc), retriable=True,
                             retry_after=getattr(exc, "retry_after", 1))
        except AdmissionError as exc:
            status = _STATUS_BY_CODE.get(exc.code, 503)
            self._send_error(status, exc.code, str(exc),
                             retriable=exc.retriable, retry_after=1)
        except BadRequest as exc:
            self._send_error(400, "bad-request", str(exc))
        except SysMLError as exc:
            self._send_error(400, "invalid-model", str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            self._send_error(500, "internal", f"{type(exc).__name__}: "
                                              f"{exc}")
        else:
            headers = {
                "X-Repro-Singleflight": str(info["singleflight"]),
                "X-Repro-Seconds": f"{info['seconds']:.6f}",
            }
            if "reused" in info:
                headers["X-Repro-Reused"] = str(info["reused"])
                headers["X-Repro-Regenerated"] = str(info["regenerated"])
            self._send_bytes(200, payload, extra_headers=headers)

    def _parse_request_body(self) -> tuple[list[str], dict | None]:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        return parse_generate_body(body, self.headers.get("Content-Type"))

    # -- responses -------------------------------------------------------

    def _send_bytes(self, status: int, payload: bytes, *,
                    content_type: str = "application/json",
                    extra_headers: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, document: object, *,
                   extra_headers: dict[str, str] | None = None) -> None:
        self._send_bytes(
            status, json.dumps(document, indent=2,
                               default=str).encode("utf-8"),
            extra_headers=extra_headers)

    def _send_error(self, status: int, code: str, message: str, *,
                    retriable: bool | None = None,
                    retry_after: float | None = None) -> None:
        _ERRORS.inc()
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(retry_after)
        self._send_json(status, {
            "error": {
                "code": code,
                "message": message,
                "retriable": bool(retriable) if retriable is not None
                else status in (429, 503),
            },
        }, extra_headers=headers)


class ServiceHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`ConfigurationService`.

    Pass port ``0`` to bind an ephemeral port; read it back from
    :attr:`port`. ``daemon_threads`` keeps stuck keep-alive connections
    from blocking interpreter exit after a drain.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 service: ConfigurationService):
        super().__init__(address, ServiceRequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    def drain_and_shutdown(self, deadline: float | None = None):
        """Graceful stop: drain the service, then stop serve_forever.

        Returns the :class:`~repro.service.lifecycle.DrainReport`.
        Callable from any thread except the one inside
        ``serve_forever`` (the usual signal-handler arrangement).
        """
        report = self.service.drain(deadline)
        self.shutdown()
        return report
