"""Single-flight request coalescing.

When N callers concurrently ask for the same key, exactly one of them
(the *leader*) executes the work; the other N-1 (*followers*) block on
the leader's completion and share its result. This is the load-shaping
primitive the serving layer puts in front of the generation pipeline:
a burst of byte-identical ``POST /v1/generate`` requests costs one
pipeline execution, not N.

Semantics (modeled on Go's ``golang.org/x/sync/singleflight``):

* a call is *in flight* from the moment its leader registers until the
  leader's function returns or raises;
* followers joining during that window share the outcome — including
  an exception, which is re-raised in every waiting caller;
* once the flight completes, the key is forgotten: a later call starts
  a fresh flight (replaying completed results is the artifact cache's
  and the result memo's job, not this module's).

``service.singleflight.leaders`` / ``.followers`` counters in
:data:`repro.obs.METRICS` make the coalescing observable.
"""

from __future__ import annotations

import threading
from typing import Callable, TypeVar

from ..obs import METRICS

_LEADERS = METRICS.counter("service.singleflight.leaders")
_FOLLOWERS = METRICS.counter("service.singleflight.followers")

_RESULT = TypeVar("_RESULT")


class _Flight:
    """One in-flight call: completion event plus shared outcome."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: BaseException | None = None
        self.followers = 0


class SingleFlight:
    """Coalesces concurrent calls per key onto one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}

    def do(self, key: str, fn: Callable[[], _RESULT],
           timeout: float | None = None) -> tuple[_RESULT, bool]:
        """Run ``fn`` once per concurrent *key*; returns ``(result,
        is_leader)``.

        Whoever registers the flight first becomes the leader, calls
        ``fn`` and publishes its outcome. Followers wait up to
        *timeout* seconds (forever when ``None``) and then receive the
        shared result or re-raise the leader's exception. A follower
        whose wait times out raises :class:`TimeoutError` without
        disturbing the flight.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
            else:
                flight.followers += 1
        if not leader:
            _FOLLOWERS.inc()
            if not flight.done.wait(timeout):
                raise TimeoutError(
                    f"single-flight wait for {key!r} exceeded "
                    f"{timeout}s")
            if flight.error is not None:
                raise flight.error
            return flight.result, False  # type: ignore[return-value]
        _LEADERS.inc()
        try:
            flight.result = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # retire the key first, then wake the followers: a caller
            # arriving after the wake-up must start a fresh flight
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, True  # type: ignore[return-value]

    def waiting(self, key: str) -> int:
        """How many followers are blocked on *key* right now (0 when
        the key is not in flight) — used by tests to gate releases."""
        with self._lock:
            flight = self._flights.get(key)
            return flight.followers if flight is not None else 0

    def in_flight(self) -> int:
        """Number of distinct keys currently executing."""
        with self._lock:
            return len(self._flights)
