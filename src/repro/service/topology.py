"""The sharded serving tier described in its own SysML v2 model.

The paper's methodology — model the system in SysML v2, derive the
deployable configuration automatically — applies to *this repo's own
serving infrastructure* too. :func:`serving_topology_sysml` renders the
router/worker topology as a SysML v2 package (it parses and validates
with the repo's own front end), and
:func:`serving_topology_manifests` derives the matching Kubernetes
manifests: one ConfigMap carrying the ring parameters, one Deployment +
Service per worker (workers need *stable identities* — the ring hashes
their names — so they are N single-replica Deployments, not one
N-replica Deployment), and one router Deployment + front Service.
:func:`deploy_serving_topology` rolls the whole thing onto the
simulated cluster (:mod:`repro.k8s`), ConfigMaps first.

This is the dogfood loop: the same model → configuration → deployment
path the factory machines take, pointed at the serving tier itself.
"""

from __future__ import annotations

from ..fingerprint import ROUTER_RING_SALT
from .ring import DEFAULT_VNODES, HashRing

#: Base port the emitted worker Services advertise (purely nominal in
#: the simulated cluster; real workers bind ephemeral ports).
WORKER_BASE_PORT = 9000
ROUTER_PORT = 8737


def _worker_names(workers) -> list[str]:
    if isinstance(workers, int):
        if workers < 1:
            raise ValueError("need at least one worker")
        return [f"worker{i}" for i in range(workers)]
    names = [str(name) for name in workers]
    if not names:
        raise ValueError("need at least one worker")
    if len(set(names)) != len(names):
        raise ValueError("worker names must be unique")
    return names


def serving_topology_sysml(workers=4, *,
                           vnodes: int = DEFAULT_VNODES) -> str:
    """The sharded tier as a SysML v2 textual-notation document.

    *workers* is a count or an iterable of worker names. The document
    parses with :func:`repro.sysml.load_model` and validates cleanly —
    there is a conformance test holding us to that.
    """
    names = _worker_names(workers)
    lines = [
        "package ServingTier {",
        "    doc /* The repro sharded configuration-serving tier:",
        "           a consistent-hash router in front of "
        f"{len(names)} worker(s). */",
        "    part def ConfigWorker {",
        "        doc /* One repro serve process: the full single-node",
        "               service stack on its own port. */",
        "        attribute shard : Integer;",
        "        attribute port : Integer;",
        "        port def ServeHTTP {",
        "            attribute path : String;",
        "        }",
        "        port http : ServeHTTP;",
        "    }",
        "    part def ShardRouter {",
        "        doc /* Consistent-hash front end; forwards each",
        "               request to the worker owning its routing",
        "               key. */",
        f"        attribute vnodes : Integer = {vnodes};",
        f"        attribute ringSalt : String = \"{ROUTER_RING_SALT}\";",
        f"        attribute port : Integer = {ROUTER_PORT};",
        "        port def FrontHTTP {",
        "            attribute path : String;",
        "        }",
        "        port front : FrontHTTP;",
        "    }",
        "    part router : ShardRouter;",
    ]
    for index, name in enumerate(names):
        lines += [
            f"    part {name} : ConfigWorker {{",
            f"        attribute :>> shard = {index};",
            f"        attribute :>> port = {WORKER_BASE_PORT + index};",
            "    }",
        ]
    for name in names:
        lines.append(f"    connect router to {name};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _metadata(name: str, namespace: str,
              labels: dict[str, str]) -> dict[str, object]:
    return {"name": name, "namespace": namespace, "labels": dict(labels)}


def _deployment(name: str, namespace: str, labels: dict[str, str],
                container: dict[str, object],
                config_map: str) -> dict[str, object]:
    return {
        "apiVersion": "apps/v1",
        "kind": "Deployment",
        "metadata": _metadata(name, namespace, labels),
        "spec": {
            "replicas": 1,
            "selector": {"matchLabels": dict(labels)},
            "template": {
                "metadata": {"labels": dict(labels)},
                "spec": {
                    "containers": [container],
                    "volumes": [{
                        "name": "topology",
                        "configMap": {"name": config_map},
                    }],
                },
            },
        },
    }


def serving_topology_manifests(workers=4, *,
                               vnodes: int = DEFAULT_VNODES,
                               namespace: str = "repro-serving",
                               image: str = "repro-factory:latest"
                               ) -> list[dict[str, object]]:
    """Kubernetes manifests for the sharded tier, derived from the
    same parameters the SysML model carries.

    Ordered ConfigMap-first so :func:`repro.k8s.deploy_manifests` (and
    ``kubectl apply -f`` on the emitted YAML) bring up configuration
    before consumers.
    """
    names = _worker_names(workers)
    ring = HashRing(names, vnodes)
    config_map_name = "serving-ring"
    manifests: list[dict[str, object]] = [{
        "apiVersion": "v1",
        "kind": "ConfigMap",
        "metadata": _metadata(config_map_name, namespace,
                              {"app": "repro-serving"}),
        "data": {
            "ring.salt": ROUTER_RING_SALT,
            "ring.vnodes": str(vnodes),
            "ring.members": ",".join(ring.members),
        },
    }]
    for index, name in enumerate(names):
        labels = {"app": "repro-serving", "role": "worker",
                  "shard": name}
        port = WORKER_BASE_PORT + index
        container = {
            "name": name,
            "image": image,
            "ports": [{"containerPort": port}],
            "env": [
                {"name": "REPRO_ROLE", "value": "worker"},
                {"name": "REPRO_SHARD", "value": name},
            ],
            "resources": {"requests": {"cpu": "500m",
                                       "memory": "256Mi"}},
        }
        manifests.append(_deployment(name, namespace, labels, container,
                                     config_map_name))
        manifests.append({
            "apiVersion": "v1",
            "kind": "Service",
            "metadata": _metadata(name, namespace, labels),
            "spec": {
                "selector": dict(labels),
                "ports": [{"port": port, "targetPort": port}],
            },
        })
    router_labels = {"app": "repro-serving", "role": "router"}
    router_container = {
        "name": "router",
        "image": image,
        "ports": [{"containerPort": ROUTER_PORT}],
        "env": [
            {"name": "REPRO_ROLE", "value": "router"},
            {"name": "REPRO_WORKERS", "value": ",".join(names)},
            {"name": "REPRO_VNODES", "value": str(vnodes)},
        ],
        "resources": {"requests": {"cpu": "250m", "memory": "128Mi"}},
    }
    manifests.append(_deployment("router", namespace, router_labels,
                                 router_container, config_map_name))
    manifests.append({
        "apiVersion": "v1",
        "kind": "Service",
        "metadata": _metadata("router", namespace, router_labels),
        "spec": {
            "selector": dict(router_labels),
            "ports": [{"port": ROUTER_PORT,
                       "targetPort": ROUTER_PORT}],
        },
    })
    return manifests


def serving_topology_yaml(workers=4, *, vnodes: int = DEFAULT_VNODES,
                          namespace: str = "repro-serving") -> str:
    """The manifests as one multi-document YAML stream."""
    from ..yamlgen import emit_documents
    return emit_documents(serving_topology_manifests(
        workers, vnodes=vnodes, namespace=namespace))


def deploy_serving_topology(cluster, workers=4, *,
                            vnodes: int = DEFAULT_VNODES,
                            namespace: str = "repro-serving"
                            ) -> list[object]:
    """Apply the tier's manifests to a simulated cluster.

    ConfigMaps land first (the manifest list is already ordered);
    returns the applied resource objects.
    """
    return [cluster.apply_manifest(manifest)
            for manifest in serving_topology_manifests(
                workers, vnodes=vnodes, namespace=namespace)]
