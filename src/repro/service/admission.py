"""Admission control: bounded concurrency with pluggable backpressure.

The serving layer admits at most ``max_inflight`` requests into the
pipeline at once. What happens to request ``max_inflight + 1`` is the
*backpressure policy*:

``reject``
    fail immediately with :class:`AdmissionRejected` — the caller gets
    a retriable error and decides when to come back (HTTP 503 +
    ``Retry-After``);
``block``
    queue FIFO and wait for a slot, up to a deadline; a queue position
    that expires raises :class:`AdmissionTimeout`;
``shed-oldest``
    queue FIFO with a bounded depth; when the queue is full the
    *oldest* waiter is shed (:class:`AdmissionShed`) to make room for
    the newcomer — freshest-first service under sustained overload.

A per-client token bucket (:class:`RateLimiter`) sits in front of
admission so one chatty client cannot monopolize the slots.

All errors derive from :class:`AdmissionError` and carry a stable
``code`` string plus a ``retriable`` flag the HTTP layer maps onto
status codes and bodies.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager

from ..obs import METRICS

_ADMITTED = METRICS.counter("service.admitted")
_REJECTED = METRICS.counter("service.rejected")
_SHED = METRICS.counter("service.shed")
_TIMEOUTS = METRICS.counter("service.admission_timeouts")
_RATE_LIMITED = METRICS.counter("service.rate_limited")
_INFLIGHT = METRICS.gauge("service.inflight")
_QUEUED = METRICS.gauge("service.queued")

POLICY_REJECT = "reject"
POLICY_BLOCK = "block"
POLICY_SHED = "shed-oldest"
POLICIES = (POLICY_REJECT, POLICY_BLOCK, POLICY_SHED)


class AdmissionError(Exception):
    """Base of every admission-control failure.

    ``code`` is a stable machine-readable identifier; ``retriable``
    tells the caller whether backing off and retrying can succeed.
    """

    code = "admission"
    retriable = True


class AdmissionRejected(AdmissionError):
    """No free slot and the policy does not queue."""

    code = "rejected"


class AdmissionTimeout(AdmissionError):
    """Queued under ``block`` but no slot freed before the deadline."""

    code = "deadline-exceeded"


class AdmissionShed(AdmissionError):
    """Evicted from the queue by a newer request (``shed-oldest``)."""

    code = "shed"


class RateLimited(AdmissionError):
    """The per-client token bucket is empty."""

    code = "rate-limited"


class ServiceDraining(AdmissionError):
    """The service is shutting down and admits no new work."""

    code = "draining"


class _Waiter:
    """One queued request: its wake-up event and final disposition."""

    __slots__ = ("event", "state")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.state = "waiting"  # -> "admitted" | "shed"


class AdmissionController:
    """Bounded in-flight slots with a policy-shaped waiting queue."""

    def __init__(self, max_inflight: int = 8, *,
                 policy: str = POLICY_REJECT,
                 block_deadline: float = 10.0,
                 max_queue: int | None = None):
        if policy not in POLICIES:
            raise ValueError(f"unknown backpressure policy {policy!r}; "
                             f"expected one of {', '.join(POLICIES)}")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.policy = policy
        self.block_deadline = block_deadline
        #: Queue bound for ``shed-oldest`` (``block`` queues without a
        #: depth bound — its deadline bounds the wait instead).
        self.max_queue = max_queue if max_queue is not None \
            else max_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        self._queue: deque[_Waiter] = deque()

    # -- introspection ---------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- acquire/release -------------------------------------------------

    def acquire(self, deadline: float | None = None) -> None:
        """Take a slot, queuing/failing per the policy.

        *deadline* (seconds) overrides the controller's
        ``block_deadline`` for this call.
        """
        with self._lock:
            if self._inflight < self.max_inflight and not self._queue:
                self._admit_locked()
                return
            if self.policy == POLICY_REJECT:
                _REJECTED.inc()
                raise AdmissionRejected(
                    f"at capacity ({self.max_inflight} in flight)")
            if self.policy == POLICY_SHED and \
                    len(self._queue) >= self.max_queue:
                oldest = self._queue.popleft()
                oldest.state = "shed"
                oldest.event.set()
                _SHED.inc()
                _QUEUED.dec()
            waiter = _Waiter()
            self._queue.append(waiter)
            _QUEUED.inc()
        timeout = deadline if deadline is not None else self.block_deadline
        waiter.event.wait(timeout)
        with self._lock:
            # dispositions change only under this lock, so "waiting"
            # here means the deadline truly expired while still queued
            # (release() admitting us after wait() gave up lands in the
            # "admitted" branch instead)
            if waiter.state == "admitted":
                return
            if waiter.state == "shed":
                raise AdmissionShed(
                    "request shed from the queue by newer work")
            self._queue.remove(waiter)
            _QUEUED.dec()
            _TIMEOUTS.inc()
        raise AdmissionTimeout(f"no slot freed within {timeout}s")

    def release(self) -> None:
        """Free a slot and hand it to the head of the queue, FIFO."""
        with self._lock:
            self._inflight -= 1
            _INFLIGHT.dec()
            while self._queue and self._inflight < self.max_inflight:
                waiter = self._queue.popleft()
                _QUEUED.dec()
                waiter.state = "admitted"
                self._admit_locked()
                waiter.event.set()

    def _admit_locked(self) -> None:
        self._inflight += 1
        _ADMITTED.inc()
        _INFLIGHT.inc()

    @contextmanager
    def slot(self, deadline: float | None = None):
        """``with controller.slot(): ...`` — acquire/release pairing."""
        self.acquire(deadline)
        try:
            yield
        finally:
            self.release()


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "stamp", "clock")

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.clock = clock
        self.stamp = clock()

    def try_consume(self, tokens: float = 1.0) -> bool:
        now = self.clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens < tokens:
            return False
        self.tokens -= tokens
        return True

    @property
    def full(self) -> bool:
        return self.tokens >= self.burst


class RateLimiter:
    """Per-client token buckets; ``rate <= 0`` disables limiting."""

    #: Idle (full) buckets are pruned past this many tracked clients.
    MAX_CLIENTS = 10_000

    def __init__(self, rate: float = 0.0, burst: float | None = None,
                 clock=time.monotonic):
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, rate)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client: str) -> None:
        """Charge one token to *client*; raises :class:`RateLimited`."""
        if not self.enabled:
            return
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, self._clock)
                self._buckets[client] = bucket
                if len(self._buckets) > self.MAX_CLIENTS:
                    self._prune_locked()
            self._buckets.move_to_end(client)
            if not bucket.try_consume():
                _RATE_LIMITED.inc()
                raise RateLimited(
                    f"client {client!r} exceeded {self.rate:g} "
                    f"requests/s (burst {self.burst:g})")

    def _prune_locked(self) -> None:
        # full buckets belong to idle clients; forgetting them is free
        for name in [name for name, bucket in self._buckets.items()
                     if bucket.full]:
            del self._buckets[name]
