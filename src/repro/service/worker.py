"""Workers of the sharded serving tier.

A *worker* is one complete single-node service stack — a
:class:`~repro.service.server.ConfigurationService` behind a
:class:`~repro.service.server.ServiceHTTPServer` — that the router
(:mod:`repro.service.router`) forwards requests to. Two flavors share
the :class:`WorkerEndpoint` address shape:

* :class:`LocalWorker` — the stack in a thread of *this* process.
  Zero spawn cost, ideal for tests and the conformance oracles; the
  caveat is that all local workers share the process-wide
  :data:`repro.obs.METRICS` registry, so their ``/metrics`` snapshots
  overlap (cross-worker metric aggregation is only exact with
  process workers).
* :class:`WorkerProcess` — the stack as a child ``repro serve``
  process, the production shape ``repro serve --workers N`` runs.
  Each child owns its interpreter (real CPU parallelism on multi-core
  hosts), its own metrics registry, and writes its drain report to a
  JSON file the supervisor collects after exit.

Both expose ``start() / wait_ready() / drain() / stop()`` so the
router and the supervisor treat them uniformly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass

from ..codegen.options import PipelineOptions
from ..testkit.waiting import Deadline, wait_until
from .client import ServiceClient
from .lifecycle import DrainReport
from .server import ConfigurationService, ServiceHTTPServer


@dataclass(frozen=True)
class WorkerEndpoint:
    """Where one worker listens."""

    name: str
    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class LocalWorker:
    """One in-process service stack serving on an ephemeral port."""

    def __init__(self, name: str, options: PipelineOptions | None = None,
                 *, host: str = "127.0.0.1", **service_kwargs):
        self.name = name
        self.host = host
        self.service = ConfigurationService(options, **service_kwargs)
        self._server: ServiceHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "LocalWorker":
        if self._server is not None:
            return self
        self._server = ServiceHTTPServer((self.host, 0), self.service)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"worker-{self.name}", daemon=True)
        self._thread.start()
        return self

    def wait_ready(self, timeout: float = 5.0) -> None:
        if self._server is None:
            raise RuntimeError(f"worker {self.name} not started")
        # the HTTP server is accepting as soon as the constructor
        # returns; nothing to poll for in-process

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError(f"worker {self.name} not started")
        return self._server.port

    @property
    def endpoint(self) -> WorkerEndpoint:
        return WorkerEndpoint(self.name, self.host, self.port)

    def alive(self) -> bool:
        return (self._server is not None
                and self.service.lifecycle.serving)

    def drain(self, deadline: float | None = None) -> DrainReport:
        if self._server is None:
            raise RuntimeError(f"worker {self.name} not started")
        return self._server.drain_and_shutdown(deadline)

    def stop(self) -> None:
        """Hard stop (no drain) — simulates a worker crash."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def close(self) -> None:
        if self._server is not None:
            if self.service.lifecycle.serving:
                self.drain(0.0)
            self.stop()

    def __enter__(self) -> "LocalWorker":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class WorkerProcess:
    """One ``repro serve`` child process on an ephemeral port.

    The child binds port 0, reports the real port through
    ``--port-file`` and its final drain outcome through
    ``--drain-report-file``; :meth:`drain` sends ``SIGTERM`` (the
    drain signal of the serve contract), waits for exit and reads the
    report back. Extra ``repro serve`` flags pass through verbatim via
    *serve_args* — notably ``--cache-dir`` pointing every worker at
    the shared content-addressed artifact store.
    """

    def __init__(self, name: str, *, host: str = "127.0.0.1",
                 serve_args: tuple[str, ...] | list[str] = (),
                 workdir: str | None = None,
                 clock=None, sleep=None):
        self.name = name
        self.host = host
        self.serve_args = tuple(serve_args)
        # injectable for scripted-clock tests; production uses the
        # monotonic clock and real sleeps via the waiting helpers
        self.clock = clock
        self.sleep = sleep
        self._owndir = None
        if workdir is None:
            self._owndir = tempfile.TemporaryDirectory(
                prefix=f"repro-worker-{name}-")
            workdir = self._owndir.name
        self.workdir = workdir
        self.port_file = os.path.join(workdir, f"{name}.port")
        self.report_file = os.path.join(workdir, f"{name}.drain.json")
        self.process: subprocess.Popen | None = None
        self._port: int | None = None

    def start(self) -> "WorkerProcess":
        if self.process is not None:
            return self
        command = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", "0",
            "--port-file", self.port_file,
            "--drain-report-file", self.report_file,
            *self.serve_args,
        ]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.process = subprocess.Popen(
            command, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        return self

    def _read_port_file(self) -> bool:
        """One poll step: port file present, or child died trying."""
        if self.process.poll() is not None:
            output = (self.process.stdout.read()
                      if self.process.stdout else "")
            raise RuntimeError(
                f"worker {self.name} exited during startup "
                f"(rc={self.process.returncode}):\n{output}")
        try:
            with open(self.port_file) as handle:
                text = handle.read().strip()
        except OSError:
            return False
        if not text:
            return False
        self._port = int(text)
        return True

    def _probe_health(self) -> bool:
        """One ``/healthz`` probe (overridable in scripted tests)."""
        try:
            with ServiceClient(self.port, self.host,
                               timeout=2.0) as client:
                return client.health().get("status") == "serving"
        except OSError:
            return False

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the child serves ``/healthz`` 200.

        Both phases — the port-file poll and the health probe — draw
        down one shared :class:`~repro.testkit.waiting.Deadline`, so
        the call is bounded by *timeout* end to end (the raw-sleep
        loops this replaces each restarted the clock implicitly).
        """
        if self.process is None:
            raise RuntimeError(f"worker {self.name} not started")
        deadline = Deadline(timeout, clock=self.clock)
        if self._port is None:
            wait_until(
                self._read_port_file, deadline=deadline, interval=0.02,
                sleep=self.sleep,
                message=f"worker {self.name}: port file")
        wait_until(
            self._probe_health, deadline=deadline, interval=0.05,
            sleep=self.sleep,
            message=f"worker {self.name}: healthy /healthz")

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError(f"worker {self.name} has no port yet "
                               f"(call wait_ready)")
        return self._port

    @property
    def endpoint(self) -> WorkerEndpoint:
        return WorkerEndpoint(self.name, self.host, self.port)

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def terminate(self) -> None:
        """Send the drain signal (SIGTERM) without waiting."""
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()

    def kill(self) -> None:
        """Hard-kill the child — the chaos path, no drain."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()

    def wait(self, timeout: float | None = None) -> int | None:
        if self.process is None:
            return None
        try:
            return self.process.wait(timeout)
        except subprocess.TimeoutExpired:
            return None

    def drain(self, deadline: float | None = None) -> DrainReport | None:
        """SIGTERM, wait for exit, read back the child's drain report.

        Returns ``None`` when the child died without writing a report
        (crashed, killed, or never got to the drain).
        """
        if self.process is None:
            return None
        self.terminate()
        grace = (deadline if deadline is not None else 10.0) + 10.0
        if self.wait(grace) is None:
            self.kill()
            self.wait(5.0)
        try:
            with open(self.report_file) as handle:
                return DrainReport.from_summary(json.load(handle))
        except (OSError, ValueError, KeyError):
            return None

    def output(self) -> str:
        """Captured child stdout/stderr (after exit)."""
        if self.process is None or self.process.stdout is None:
            return ""
        return self.process.stdout.read()

    def close(self) -> None:
        if self.process is not None:
            if self.process.poll() is None:
                self.drain(0.0)
            if self.process.stdout is not None:
                self.process.stdout.close()
        if self._owndir is not None:
            self._owndir.cleanup()
            self._owndir = None

    def __enter__(self) -> "WorkerProcess":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
