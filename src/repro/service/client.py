"""A small blocking HTTP client for the configuration service.

Used by the tests, the load benchmark and the CI smoke job — and handy
as a reference for what a real caller sends. One
:class:`ServiceClient` wraps one keep-alive connection, so an instance
belongs to one thread; concurrent callers each create their own
(connections are cheap against the loopback interface).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException


class ServiceError(Exception):
    """A non-2xx response from the service.

    ``retriable`` mirrors the server's judgment: 429/503 responses are
    safe to retry after backing off; 4xx others are not.
    """

    def __init__(self, status: int, code: str, message: str,
                 retriable: bool = False):
        self.status = status
        self.code = code
        self.retriable = retriable
        super().__init__(f"HTTP {status} [{code}]: {message}")


class ServiceClient:
    """Blocking client for one ``repro serve`` endpoint."""

    def __init__(self, port: int, host: str = "127.0.0.1", *,
                 timeout: float = 30.0, client_id: str | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        self._conn: HTTPConnection | None = None

    # -- transport -------------------------------------------------------

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def request(self, method: str, path: str, body: bytes | None = None,
                headers: dict[str, str] | None = None
                ) -> tuple[int, dict[str, str], bytes]:
        """One round trip; returns ``(status, headers, body)``.

        Retries once on a dropped keep-alive connection (the server may
        have closed an idle one between calls).
        """
        send_headers = dict(headers or {})
        if self.client_id:
            send_headers.setdefault("X-Client-Id", self.client_id)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body,
                             headers=send_headers)
                response = conn.getresponse()
                payload = response.read()
            except (HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
                continue
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- endpoints -------------------------------------------------------

    def generate_raw(self, sources, options: dict | None = None
                     ) -> tuple[int, dict[str, str], bytes]:
        """``POST /v1/generate`` returning the raw response triple."""
        document: dict[str, object] = {"sources": list(sources)}
        if options:
            document["options"] = options
        return self.request(
            "POST", "/v1/generate",
            body=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"})

    def generate(self, sources, options: dict | None = None) -> dict:
        """Generate and return the parsed manifest bundle.

        Raises :class:`ServiceError` on any non-200 response.
        """
        status, _, body = self.generate_raw(sources, options)
        document = json.loads(body)
        if status != 200:
            error = document.get("error", {})
            raise ServiceError(status, error.get("code", "unknown"),
                               error.get("message", body.decode(
                                   "utf-8", errors="replace")),
                               retriable=error.get("retriable", False))
        return document

    def _get_json(self, path: str) -> dict:
        _, _, body = self.request("GET", path)
        return json.loads(body)

    def health(self) -> dict:
        """``GET /healthz`` (parsed body, whatever the status)."""
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def cache_stats(self) -> dict:
        return self._get_json("/cache/stats")
