"""A small blocking HTTP client for the configuration service.

Used by the tests, the load benchmark and the CI smoke job — and handy
as a reference for what a real caller sends. One
:class:`ServiceClient` wraps one keep-alive connection, so an instance
belongs to one thread; concurrent callers each create their own
(connections are cheap against the loopback interface).

Failures are *typed*: a 429/503 (or any body the server marks
``retriable``) raises :class:`RetriableServiceError` carrying the
server's ``Retry-After`` hint; every other non-2xx raises the plain
:class:`ServiceError`. Construct the client with a
:class:`~repro.resilience.RetryPolicy` and it backs off and retries
retriable failures itself (honouring ``Retry-After`` as a lower bound
on each delay); add a :class:`~repro.resilience.CircuitBreaker` and a
persistently failing service trips it, turning further calls into
immediate retriable :class:`~repro.resilience.CircuitOpen` errors
instead of doomed round trips.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException

from ..resilience import CircuitBreaker, RetryPolicy, retry_call


class ServiceError(Exception):
    """A non-2xx response from the service.

    ``retriable`` mirrors the server's judgment: 429/503 responses are
    safe to retry after backing off; 4xx others are not.
    """

    def __init__(self, status: int, code: str, message: str,
                 retriable: bool = False):
        self.status = status
        self.code = code
        self.retriable = retriable
        super().__init__(f"HTTP {status} [{code}]: {message}")


class RetriableServiceError(ServiceError):
    """A 429/503-class failure: back off and try again.

    ``retry_after`` is the server's ``Retry-After`` hint in seconds
    (``None`` when the server sent none) —
    :func:`repro.resilience.retry_call` uses it as a lower bound on
    the next backoff delay.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None):
        super().__init__(status, code, message, retriable=True)
        self.retry_after = retry_after


class ServiceClient:
    """Blocking client for one ``repro serve`` endpoint."""

    def __init__(self, port: int, host: str = "127.0.0.1", *,
                 timeout: float = 30.0, client_id: str | None = None,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        self.retry = retry
        self.breaker = breaker
        self._conn: HTTPConnection | None = None

    # -- transport -------------------------------------------------------

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def request(self, method: str, path: str, body: bytes | None = None,
                headers: dict[str, str] | None = None
                ) -> tuple[int, dict[str, str], bytes]:
        """One round trip; returns ``(status, headers, body)``.

        Retries once on a dropped keep-alive connection (the server may
        have closed an idle one between calls).
        """
        send_headers = dict(headers or {})
        if self.client_id:
            send_headers.setdefault("X-Client-Id", self.client_id)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body,
                             headers=send_headers)
                response = conn.getresponse()
                payload = response.read()
            except (HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
                continue
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- endpoints -------------------------------------------------------

    def generate_raw(self, sources, options: dict | None = None
                     ) -> tuple[int, dict[str, str], bytes]:
        """``POST /v1/generate`` returning the raw response triple."""
        document: dict[str, object] = {"sources": list(sources)}
        if options:
            document["options"] = options
        return self.request(
            "POST", "/v1/generate",
            body=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"})

    @staticmethod
    def _retry_after(headers: dict[str, str]) -> float | None:
        value = headers.get("retry-after")
        if value is None:
            return None
        try:
            return float(value)
        except ValueError:
            return None

    def _generate_once(self, sources, options: dict | None) -> dict:
        """One generate round trip, raising typed service errors."""
        if self.breaker is not None:
            self.breaker.allow()
        try:
            status, headers, body = self.generate_raw(sources, options)
        except (HTTPException, ConnectionError, OSError):
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        document = json.loads(body)
        if status == 200:
            if self.breaker is not None:
                self.breaker.record_success()
            return document
        error = document.get("error", {})
        code = error.get("code", "unknown")
        message = error.get("message",
                            body.decode("utf-8", errors="replace"))
        retriable = bool(error.get("retriable", status in (429, 503)))
        if retriable:
            # the service is struggling, not the request: a breaker
            # watching this client should see it as a failure
            if self.breaker is not None:
                self.breaker.record_failure()
            raise RetriableServiceError(
                status, code, message,
                retry_after=self._retry_after(headers))
        # a 4xx is the *request's* fault; the service answered fine
        if self.breaker is not None:
            self.breaker.record_success()
        raise ServiceError(status, code, message)

    def generate(self, sources, options: dict | None = None) -> dict:
        """Generate and return the parsed manifest bundle.

        Raises :class:`RetriableServiceError` on 429/503 (with the
        server's ``Retry-After``) and :class:`ServiceError` on any
        other non-200. With a ``retry`` policy configured, retriable
        failures (including :class:`~repro.resilience.CircuitOpen`)
        are retried with backoff before surfacing as
        :class:`~repro.resilience.RetryError`.
        """
        if self.retry is None:
            return self._generate_once(sources, options)
        return retry_call(lambda: self._generate_once(sources, options),
                          policy=self.retry,
                          describe="service.generate")

    def _get_json(self, path: str) -> dict:
        _, _, body = self.request("GET", path)
        return json.loads(body)

    def health(self) -> dict:
        """``GET /healthz`` (parsed body, whatever the status)."""
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def cache_stats(self) -> dict:
        return self._get_json("/cache/stats")
