"""Seeded generator of arbitrary-but-valid SysML v2 factory models.

One integer seed deterministically yields one :class:`FactoryScenario`:
a random machine inventory (ISA-95 workcell layout, machine counts,
driver mixes, variable/service shapes) realized as textual SysML v2
sources through the same emitters the ICE-lab model uses
(:mod:`repro.icelab.model_gen`). With ``hostile=True`` the name pools
additionally draw *unrestricted names* — unicode, embedded spaces and
quotes, reserved words, deep ``/``-nested categories — which stress the
printer/parser quoting path and the interchange format.

Scenarios are pure data; ``generate_scenario(seed) ==
generate_scenario(seed)`` byte-for-byte, which is what makes the
conformance harness replayable from a seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..isa95.levels import VariableSpec
from ..isa95.library import ISA95_LIBRARY_SOURCE
from ..machines.catalog import DriverSpec, MachineSpec, simple_service
from ..icelab.model_gen import (generate_driver_instance, generate_library,
                                generate_topology_source)

_DATA_TYPES = ("Real", "Integer", "Boolean", "String", "Double", "Natural")

_MACHINE_WORDS = ("Mill", "Lathe", "Robot", "Conveyor", "Press", "Printer",
                  "Scanner", "Loader", "Oven", "Crane", "Agv", "Cell")
_VENDOR_WORDS = ("Acme", "Umbra", "Nord", "Vega", "Orion", "Delta", "Kilo")
_CATEGORY_WORDS = ("Axes", "Spindle", "Alarms", "Energy", "Doors", "Tooling",
                   "Vision", "Safety", "Motion", "Program")
_VARIABLE_WORDS = ("pos", "vel", "temp", "load", "state", "err", "feed",
                   "power", "speed", "count")
_SERVICE_WORDS = ("start", "stop", "reset", "home", "load", "unload",
                  "calibrate", "measure")
_PROTOCOL_WORDS = ("OPCUA", "EMCO", "Modbus", "Ros", "Profinet", "MQTT")

#: Hostile name fragments: unicode identifiers, unrestricted names with
#: spaces/quotes/backslashes, reserved words, and a newline-bearing
#: name (legal — the printer must escape it).
_HOSTILE_NAMES = (
    "µzelle", "Maschine Ä", "name with spaces", "per-cent%", "1leading",
    "part", "connect", "import", "apo'strophe", "back\\slash",
    "tab\tname", "new\nline", "*/almost comment", "::looks::qualified",
    "", "   ", "'", "😀cell",
)
#: Hostile names for *structural* elements (machines, workcells, the
#: ISA-95 hierarchy). These flow into Kubernetes resource names, so a
#: valid model needs them to sanitize to a non-empty DNS label — i.e.
#: contain at least one ASCII alphanumeric. Names that sanitize to
#: nothing (``""``, ``"   "``, ``"µ"``) are *invalid* machine names by
#: the pipeline's contract and stay out of this pool.
_HOSTILE_STRUCTURAL_NAMES = (
    "µ cell 1", "Maschine Ä", "name with spaces", "part", "connect",
    "apo'strophe", "1leading", "Zelle::X", "tab\tcell", "😀 cell A",
)
_HOSTILE_STRINGS = (
    "opc.tcp://host:4840/'quoted'", "line1\nline2", "tab\tsep",
    "back\\slash", "mixed \\' \n end", "*/", "ünïcode",
)


@dataclass(frozen=True)
class CorpusConfig:
    """Shape knobs of the generated corpus (all bounds inclusive)."""

    min_machines: int = 1
    max_machines: int = 6
    max_workcells: int = 3
    max_categories: int = 3
    max_variables: int = 10
    max_services: int = 4
    max_category_depth: int = 3
    #: Draw from the hostile name/string pools as well.
    hostile: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "min_machines": self.min_machines,
            "max_machines": self.max_machines,
            "max_workcells": self.max_workcells,
            "max_categories": self.max_categories,
            "max_variables": self.max_variables,
            "max_services": self.max_services,
            "max_category_depth": self.max_category_depth,
            "hostile": self.hostile,
        }


@dataclass
class FactoryScenario:
    """One generated factory: machine specs plus the topology naming."""

    seed: int
    specs: list[MachineSpec]
    topology_name: str = "Topology0"
    enterprise: str = "Enterprise0"
    site: str = "Site0"
    area: str = "Area0"
    line: str = "Line0"
    #: OPC UA client capacity this scenario is generated/grouped with;
    #: varied per seed so small capacities (oversized machines, many
    #: clients) are exercised too.
    capacity: int = 120
    config: CorpusConfig = field(default_factory=CorpusConfig)

    @property
    def sources(self) -> list[str]:
        """The scenario's SysML v2 sources, in load order."""
        return scenario_sources(self)

    @property
    def user_sources(self) -> list[str]:
        """The sources minus the fixed ISA-95 library prelude."""
        return self.sources[1:]

    def describe(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "machines": [s.name for s in self.specs],
            "workcells": sorted({s.workcell for s in self.specs}),
            "capacity": self.capacity,
            "points": sum(s.point_count for s in self.specs),
            "hostile": self.config.hostile,
        }


def scenario_sources(scenario: FactoryScenario) -> list[str]:
    """Realize a scenario as textual sources (library prelude first)."""
    sources = [ISA95_LIBRARY_SOURCE]
    seen_types: set[str] = set()
    for spec in scenario.specs:
        if spec.type_name not in seen_types:
            sources.append(generate_library(spec))
            seen_types.add(spec.type_name)
    for spec in scenario.specs:
        sources.append(generate_driver_instance(spec))
    sources.append(generate_topology_source(
        scenario.specs, topology_name=scenario.topology_name,
        enterprise=scenario.enterprise, site=scenario.site,
        area=scenario.area, line=scenario.line))
    return sources


def _sanitized(name: str) -> str:
    """The DNS-label the pipeline would derive (same rule as
    ``repro.templates.engine.k8s_name``, empty instead of raising)."""
    import re
    return re.sub(r"[^a-z0-9-]+", "-", name.lower()).strip("-")


class _NamePool:
    """Draws names from word pools, guaranteeing uniqueness by suffix.

    ``structural=True`` marks names that become Kubernetes resource
    names downstream: they draw from the sanitizable hostile pool and
    are kept unique *after* sanitization too, so two hostile names
    cannot collapse onto one manifest name.
    """

    def __init__(self, rng: random.Random, hostile: bool,
                 hostile_rate: float = 0.25):
        self.rng = rng
        self.hostile = hostile
        self.hostile_rate = hostile_rate
        self.used: set[str] = set()
        self.used_sanitized: set[str] = set()

    def draw(self, words: tuple[str, ...], *, suffix: str = "",
             style: str = "lower", structural: bool = False) -> str:
        base = self._raw(words, style, structural)
        name = base + suffix
        index = 2
        while name in self.used or (
                structural and _sanitized(name) in self.used_sanitized):
            name = f"{base}{index}{suffix}"
            index += 1
        self.used.add(name)
        if structural:
            self.used_sanitized.add(_sanitized(name))
        return name

    def _raw(self, words: tuple[str, ...], style: str,
             structural: bool) -> str:
        if self.hostile and self.rng.random() < self.hostile_rate:
            pool = (_HOSTILE_STRUCTURAL_NAMES if structural
                    else _HOSTILE_NAMES)
            return self.rng.choice(pool)
        word = self.rng.choice(words)
        if style == "lower":
            return word[:1].lower() + word[1:]
        return word


def generate_scenario(seed: int,
                      config: CorpusConfig | None = None) -> FactoryScenario:
    """Deterministically generate the scenario for *seed*."""
    config = config or CorpusConfig()
    rng = random.Random(seed)
    machine_count = rng.randint(config.min_machines, config.max_machines)
    workcell_count = rng.randint(1, min(config.max_workcells, machine_count))
    names = _NamePool(rng, config.hostile)
    workcells = [names.draw(("workCell",), suffix=f"_{i:02d}",
                            structural=True)
                 for i in range(workcell_count)]

    specs: list[MachineSpec] = []
    type_pool: list[MachineSpec] = []
    for _ in range(machine_count):
        # occasionally clone an existing type (two machines of the same
        # kind sharing one library package, like the RB-Kairos pair)
        if type_pool and rng.random() < 0.2:
            template = rng.choice(type_pool)
            specs.append(_instantiate(rng, names, template,
                                      rng.choice(workcells)))
            continue
        spec = _generate_spec(rng, names, config, rng.choice(workcells))
        type_pool.append(spec)
        specs.append(spec)

    scenario = FactoryScenario(
        seed=seed, specs=specs,
        topology_name=names.draw(("Topology", "Plant", "Factory"),
                                 style="upper", structural=True),
        enterprise=names.draw(_VENDOR_WORDS, suffix="Corp", style="upper",
                              structural=True),
        site=names.draw(("North", "South", "Main", "West"), suffix="Site",
                        style="upper", structural=True),
        area=names.draw(("Area", "Hall", "Floor"), suffix="A",
                        style="upper", structural=True),
        line=names.draw(("Line", "Flow", "Track"), suffix="1",
                        style="upper", structural=True),
        capacity=rng.choice((4, 8, 16, 40, 120)),
        config=config,
    )
    return scenario


def _generate_spec(rng: random.Random, names: _NamePool,
                   config: CorpusConfig, workcell: str) -> MachineSpec:
    vendor = rng.choice(_VENDOR_WORDS)
    kind = rng.choice(_MACHINE_WORDS)
    type_name = names.draw((f"{vendor}{kind}",), style="upper")
    instance = names.draw((f"{kind.lower()}",), structural=True)
    display = f"{vendor} {kind} {rng.randint(100, 999)}"
    if config.hostile and rng.random() < 0.3:
        display += " " + rng.choice(_HOSTILE_STRINGS)

    local = _LocalNames(rng, names, config)
    categories: dict[str, list[VariableSpec]] = {}
    for _ in range(rng.randint(0, config.max_categories)):
        category = local.category()
        count = rng.randint(0, config.max_variables)
        categories[category] = [
            VariableSpec(name=local.variable(),
                         data_type=rng.choice(_DATA_TYPES),
                         unit=rng.choice(("", "mm", "rpm", "°C", "%")))
            for _ in range(count)]
    services = [simple_service(
        local.service(),
        inputs=[(local.argument(), rng.choice(_DATA_TYPES))
                for _ in range(rng.randint(0, 2))],
        outputs=[(local.argument(), rng.choice(_DATA_TYPES))
                 for _ in range(rng.randint(1, 2))])
        for _ in range(rng.randint(0, config.max_services))]

    return MachineSpec(
        name=instance, display_name=display, type_name=type_name,
        workcell=workcell, driver=_generate_driver(rng, config),
        categories=categories, services=services)


def _instantiate(rng: random.Random, names: _NamePool,
                 template: MachineSpec, workcell: str) -> MachineSpec:
    """A second instance of an existing machine type."""
    return MachineSpec(
        name=names.draw((template.name,), structural=True),
        display_name=template.display_name,
        type_name=template.type_name, workcell=workcell,
        driver=template.driver,
        categories={category: list(variables) for category, variables
                    in template.categories.items()},
        services=list(template.services))


def _generate_driver(rng: random.Random, config: CorpusConfig) -> DriverSpec:
    protocol = f"{rng.choice(_PROTOCOL_WORDS)}Driver"
    parameters: dict[str, object] = {}
    for i in range(rng.randint(0, 4)):
        key = f"param{i}"
        roll = rng.random()
        if roll < 0.3:
            parameters[key] = rng.randint(-1000, 65535)
        elif roll < 0.4:
            parameters[key] = rng.random() < 0.5
        elif config.hostile and roll < 0.7:
            parameters[key] = rng.choice(_HOSTILE_STRINGS)
        else:
            parameters[key] = f"opc.tcp://host{i}:{rng.randint(1, 9999)}"
    return DriverSpec(protocol=protocol,
                      is_generic=rng.random() < 0.5,
                      parameters=parameters)


class _LocalNames:
    """Per-machine name scopes (variables/services must be unique only
    within their machine)."""

    def __init__(self, rng: random.Random, names: _NamePool,
                 config: CorpusConfig):
        self.rng = rng
        self.names = names
        self.config = config
        self.used: set[str] = set()

    def _unique(self, base: str) -> str:
        name = base
        index = 2
        while name in self.used:
            name = f"{base}{index}"
            index += 1
        self.used.add(name)
        return name

    def _maybe_hostile(self, fallback: str) -> str:
        if self.config.hostile and self.rng.random() < 0.2:
            return self._unique(self.rng.choice(_HOSTILE_NAMES))
        return self._unique(fallback)

    def category(self) -> str:
        depth = self.rng.randint(1, self.config.max_category_depth)
        parts = [self.rng.choice(_CATEGORY_WORDS) for _ in range(depth)]
        return self._unique("/".join(parts))

    def variable(self) -> str:
        return self._maybe_hostile(
            f"{self.rng.choice(_VARIABLE_WORDS)}_{self.rng.randint(1, 99)}")

    def service(self) -> str:
        return self._maybe_hostile(self.rng.choice(_SERVICE_WORDS))

    def argument(self) -> str:
        return f"arg{self.rng.randint(0, 9)}"
