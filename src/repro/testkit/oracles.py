"""Equivalence oracles: independent paths through the system that must
agree on every valid model.

Each oracle states one differential property:

* ``roundtrip``    — parse -> print -> parse yields an identical AST
  (and printing is a fixpoint);
* ``interchange``  — the JSON interchange format round-trips the model;
* ``cache``        — cache-off, cache-cold and cache-warm pipeline runs
  emit byte-identical bundles;
* ``jobs``         — serial and parallel (``jobs=N``) pipeline runs emit
  byte-identical bundles;
* ``serve``        — the configuration service returns exactly the bytes
  a direct pipeline run produces;
* ``incremental``  — the incremental engine's output is byte-identical
  to a cold pipeline run, and no-op / comment-only edits reuse every
  artifact;
* ``grouping``     — client grouping is a partition (every machine
  assigned exactly once), respects capacity, and is deterministic.
* ``sim``          — scenario-engine briefings for one seed are
  byte-identical across repeat runs, ``jobs=1`` vs ``jobs=N`` and
  thread vs process pools, and reports do not depend on job input
  order.
* ``plan``         — the PDDL operations-planning backend is held to the
  :mod:`repro.sim` determinism contract: domain/problem/plan emission
  for one seed is byte-identical across repeat runs and ``jobs=1`` vs
  ``jobs=N``, every plan replays cleanly on the behavioural machine
  simulators, changing the *planner* seed never changes the emitted
  PDDL text nor the (optimal) plan cost — only the tie-break path;
* ``sharded``      — the sharded serving tier is transparent: a
  request routed through the consistent-hash router (1 worker or N
  workers) returns exactly the direct-pipeline bytes, the router's
  parse-free routing key equals the worker-side single-flight key,
  and repeats stick to the same shard (memo-visible affinity);
* ``chaos``        — opt-in (``repro conformance --chaos``): under a
  seeded fault plan injecting cache corruption, cache I/O errors,
  worker crashes and router-dispatch crashes, the pipeline still
  emits bundles byte-identical to the fault-free reference, and the
  serving paths (single-node and sharded) return either those same
  bytes or a *typed retriable* error — never a corrupt or partial
  bundle, never an untyped crash, never a hang.

Oracles never return a value; agreement is silence, disagreement raises
:class:`OracleFailure` with a deterministic message (the harness digest
covers failure messages, so nondeterministic text would break replay).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Callable

from ..codegen import (PipelineOptions, generate_configuration,
                       group_machines, lower_bound_clients)
from ..isa95.topology import extract_topology
from ..sysml import load_model, print_element
from ..sysml.elements import Model
from ..sysml.interchange import element_to_dict, model_from_json, model_to_json

from .corpus import FactoryScenario


class OracleFailure(AssertionError):
    """Two supposedly equivalent paths disagreed."""


@dataclass(frozen=True)
class Oracle:
    """One registered equivalence check."""

    name: str
    description: str
    run: Callable[["TrialContext"], None]
    #: Source-level oracles depend only on the textual sources (not the
    #: machine specs), so the shrinker can reduce them line-by-line.
    source_level: bool = False
    #: Opt-in oracles stay out of the default run (``oracle_names()``)
    #: and are enabled explicitly (``--chaos`` / ``--oracles chaos``).
    opt_in: bool = False


class TrialContext:
    """Shared per-trial state: the scenario (or raw sources) plus
    lazily computed artifacts every oracle can reuse — the model is
    parsed once and the reference pipeline run executes once no matter
    how many oracles consume them."""

    def __init__(self, scenario: FactoryScenario | None = None,
                 sources: list[str] | None = None):
        if scenario is None and sources is None:
            raise ValueError("need a scenario or explicit sources")
        self.scenario = scenario
        self._sources = sources
        self._model: Model | None = None
        self._direct: bytes | None = None

    @property
    def sources(self) -> list[str]:
        if self._sources is None:
            self._sources = self.scenario.sources
        return self._sources

    @property
    def model(self) -> Model:
        if self._model is None:
            self._model = load_model(*self.sources)
        return self._model

    @property
    def options(self) -> PipelineOptions:
        capacity = self.scenario.capacity if self.scenario else 120
        return PipelineOptions(capacity=capacity)

    @property
    def direct_payload(self) -> bytes:
        """Reference bytes: one serial, cache-less pipeline run."""
        if self._direct is None:
            self._direct = self._payload(self.options)
        return self._direct

    def _payload(self, options: PipelineOptions) -> bytes:
        from ..service.server import bundle_bytes
        result = generate_configuration(self.model, options=options)
        return bundle_bytes(result, self.model.content_fingerprint, options)


def _user_elements(model: Model):
    return [element for element in model.owned_elements
            if not getattr(element, "is_library", False)]


def _print_user(model: Model) -> str:
    return "".join(print_element(element)
                   for element in _user_elements(model))


def _user_dicts(model: Model) -> list[dict]:
    return [element_to_dict(element) for element in _user_elements(model)]


# -- front-end oracles -------------------------------------------------------

def _check_roundtrip(ctx: TrialContext) -> None:
    first = ctx.model
    printed = _print_user(first)
    try:
        second = load_model(printed)
    except Exception as error:
        raise OracleFailure(
            f"printed model does not re-parse: {error}") from error
    if _user_dicts(first) != _user_dicts(second):
        raise OracleFailure("AST differs after print -> parse round-trip")
    reprinted = _print_user(second)
    if reprinted != printed:
        raise OracleFailure("printing is not a fixpoint "
                            "(print(parse(print(m))) != print(m))")


def _check_interchange(ctx: TrialContext) -> None:
    first = ctx.model
    text = model_to_json(first)
    try:
        second = model_from_json(text)
    except Exception as error:
        raise OracleFailure(
            f"interchange JSON does not load back: {error}") from error
    if _user_dicts(first) != _user_dicts(second):
        raise OracleFailure("AST differs after interchange round-trip")
    if _print_user(second) != _print_user(first):
        raise OracleFailure("interchange round-trip changes printed form")


# -- pipeline byte-identity oracles ------------------------------------------

def _check_cache(ctx: TrialContext) -> None:
    reference = ctx.direct_payload
    with tempfile.TemporaryDirectory(prefix="repro-conformance-") as tmp:
        options = ctx.options.replace(cache_dir=tmp)
        cold = ctx._payload(options)
        warm = ctx._payload(options)
    if cold != reference:
        raise OracleFailure("cache-cold bundle differs from cache-off")
    if warm != reference:
        raise OracleFailure("cache-warm bundle differs from cache-off")


def _check_jobs(ctx: TrialContext) -> None:
    reference = ctx.direct_payload
    parallel = ctx._payload(ctx.options.replace(jobs=4))
    if parallel != reference:
        raise OracleFailure("jobs=4 bundle differs from jobs=1")


def _check_serve(ctx: TrialContext) -> None:
    from ..service.server import ConfigurationService
    reference = ctx.direct_payload
    service = ConfigurationService(ctx.options)
    served, _info = service.generate(ctx.sources)
    again, info = service.generate(ctx.sources)
    if served != reference:
        raise OracleFailure("served bundle differs from direct pipeline run")
    if again != served:
        raise OracleFailure("repeat request served different bytes")
    if info["singleflight"] != "memo":
        raise OracleFailure("repeat request missed the result memo")


def _comparable_bundle(result, options: PipelineOptions) -> bytes:
    """Bundle bytes with the model fingerprint pinned.

    Incremental-vs-cold compares runs over *different* source text
    (comment-only edits), whose content fingerprints legitimately
    differ; everything else in the bundle must still be identical.
    """
    import json as _json

    from ..service.server import bundle_from_result
    return _json.dumps(bundle_from_result(result, "-", options),
                       indent=2).encode("utf-8")


def _check_incremental(ctx: TrialContext) -> None:
    from ..codegen import GenerationPipeline, IncrementalEngine
    options = ctx.options
    reference = _comparable_bundle(
        generate_configuration(ctx.model, options=options), options)

    engine = IncrementalEngine(options)
    cold = _comparable_bundle(engine.generate(*ctx.sources), options)
    if cold != reference:
        raise OracleFailure(
            "incremental engine cold run differs from direct pipeline run")

    repeat_result = engine.generate(*ctx.sources)
    if _comparable_bundle(repeat_result, options) != reference:
        raise OracleFailure("identical re-generate changed bundle bytes")
    stale = sorted(artifact for artifact, state
                   in repeat_result.provenance.items()
                   if state != "reused")
    if stale:
        raise OracleFailure(
            f"identical re-generate regenerated artifacts: {stale}")

    # a comment-only edit changes the text but no anchor fingerprint,
    # so the engine must reuse everything and emit identical bytes
    touched = [ctx.sources[0] + "\n// conformance touch\n"] \
        + list(ctx.sources[1:])
    touched_result = engine.generate(*touched)
    if _comparable_bundle(touched_result, options) != reference:
        raise OracleFailure("comment-only edit changed bundle bytes")
    stale = sorted(artifact for artifact, state
                   in touched_result.provenance.items()
                   if state != "reused")
    if stale:
        raise OracleFailure(
            f"comment-only edit regenerated artifacts: {stale}")

    # and the engine's output for the edited text must byte-match what
    # a cold pipeline run over that same text produces
    cold_touched = _comparable_bundle(
        GenerationPipeline(options).run_on_model(load_model(*touched)),
        options)
    if _comparable_bundle(touched_result, options) != cold_touched:
        raise OracleFailure(
            "incremental output for edited sources differs from a cold "
            "run over the same sources")


def _check_sharded(ctx: TrialContext) -> None:
    """The sharded tier must be observationally identical to a direct
    pipeline run — for any worker count."""
    from ..fingerprint import SERVICE_GENERATE_SALT, fingerprint
    from ..service import LocalWorker, RouterService
    from ..service.server import REQUEST_OPTION_KEYS
    reference = ctx.direct_payload
    options = ctx.options

    # 1 worker: the degenerate ring must already be transparent
    with LocalWorker("solo", options) as solo:
        router_one = RouterService([solo], options)
        status, _headers, one_payload, _name = router_one.dispatch(
            ctx.sources)
        if status != 200:
            raise OracleFailure(
                f"1-worker router returned HTTP {status}")
        if one_payload != reference:
            raise OracleFailure(
                "1-worker routed bundle differs from direct pipeline run")

    # N workers: same bytes, stable shard affinity, memo-hit repeats
    workers = [LocalWorker(f"shard{i}", options).start()
               for i in range(3)]
    try:
        router = RouterService(workers, options)
        # the router's parse-free routing key must equal the key the
        # owning worker derives after actually parsing the sources —
        # that identity is what keeps per-shard single-flight/memo
        # collapsing effective
        semantic = {key: getattr(options, key)
                    for key in REQUEST_OPTION_KEYS}
        worker_key = fingerprint(ctx.model.content_fingerprint,
                                 semantic, salt=SERVICE_GENERATE_SALT)
        if router.routing_key(ctx.sources) != worker_key:
            raise OracleFailure(
                "router routing key differs from the worker-side "
                "generation single-flight key")
        status, first_headers, n_payload, first_worker = \
            router.dispatch(ctx.sources)
        if status != 200:
            raise OracleFailure(f"3-worker router returned HTTP {status}")
        if n_payload != one_payload:
            raise OracleFailure(
                "3-worker routed bundle differs from the 1-worker bundle")
        status, repeat_headers, repeat_payload, repeat_worker = \
            router.dispatch(ctx.sources)
        if repeat_worker != first_worker:
            raise OracleFailure(
                f"repeat request changed shard "
                f"({first_worker} -> {repeat_worker})")
        if repeat_payload != n_payload:
            raise OracleFailure("repeat routed request served "
                                "different bytes")
        if repeat_headers.get("x-repro-singleflight") != "memo":
            raise OracleFailure(
                "repeat routed request missed the shard's result memo")
    finally:
        for worker in workers:
            worker.close()


# -- chaos: resilience under a seeded fault plan -----------------------------

def chaos_plan(seed: int) -> "FaultPlan":
    """The fault plan the chaos oracle injects for one trial seed.

    Everything here must be *gracefully absorbable*: corruption and
    I/O errors in the cache degrade to regeneration, worker crashes
    retry then fall back to serial, and the service site raises a
    typed retriable error — so the oracle can demand byte-identity (or
    a retriable error) as the only acceptable outcomes.
    """
    from ..faults import FaultPlan, FaultSpec
    return FaultPlan(seed=seed, specs=(
        FaultSpec("cache.get", "corrupt", probability=0.25),
        FaultSpec("cache.get", "io-error", probability=0.05),
        FaultSpec("cache.put", "io-error", probability=0.10),
        FaultSpec("cache.put", "corrupt", probability=0.10),
        FaultSpec("parallel.worker", "crash", probability=0.25),
        FaultSpec("service.generate", "unavailable", probability=0.5,
                  max_injections=2, retry_after=0.01),
        FaultSpec("router.dispatch", "crash", probability=0.25,
                  max_injections=2),
    ))


def _check_chaos(ctx: TrialContext) -> None:
    from ..service.server import ConfigurationService
    reference = ctx.direct_payload
    seed = ctx.scenario.seed if ctx.scenario is not None else 0
    plan = chaos_plan(seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        options = ctx.options.replace(cache_dir=tmp, jobs=2)
        with plan.activated():
            try:
                cold = ctx._payload(options)
                warm = ctx._payload(options)
            except Exception as error:
                if getattr(error, "retriable", False):
                    raise OracleFailure(
                        "pipeline surfaced a retriable error instead of "
                        "absorbing cache/worker faults") from error
                raise OracleFailure(
                    f"pipeline failed under faults with non-retriable "
                    f"{type(error).__name__}") from error
    if cold != reference:
        raise OracleFailure(
            "chaos cold run differs from the fault-free reference")
    if warm != reference:
        raise OracleFailure(
            "chaos warm run differs from the fault-free reference")
    # the serving path may *reject* (typed + retriable) but must never
    # serve bytes that differ from the fault-free reference
    service = ConfigurationService(ctx.options)
    with plan.activated():
        for _ in range(3):
            try:
                served, _info = service.generate(ctx.sources)
            except Exception as error:
                if not getattr(error, "retriable", False):
                    raise OracleFailure(
                        f"service raised non-retriable "
                        f"{type(error).__name__} under faults") from error
            else:
                if served != reference:
                    raise OracleFailure(
                        "served bundle under faults differs from the "
                        "fault-free reference")
    # the sharded path: an injected crash at router.dispatch simulates
    # the owning worker dying mid-request — the router must fail over
    # to a surviving shard and return the byte-identical payload, or
    # surface a typed retriable error; never a hang, never mixed bytes.
    # dispatch() runs in this thread, so the context-local plan is
    # visible at the fault site (the HTTP handler threads would not be).
    from ..service import LocalWorker, RouterService
    shards = [LocalWorker(f"chaos-shard{i}", ctx.options).start()
              for i in range(2)]
    try:
        router = RouterService(shards, ctx.options)
        with plan.activated():
            for _ in range(3):
                try:
                    status, _headers, payload, _worker = router.dispatch(
                        ctx.sources)
                except Exception as error:
                    if not getattr(error, "retriable", False):
                        raise OracleFailure(
                            f"router raised non-retriable "
                            f"{type(error).__name__} under faults"
                        ) from error
                else:
                    if status == 200 and payload != reference:
                        raise OracleFailure(
                            "routed bundle under faults differs from "
                            "the fault-free reference")
                # injected crashes mark shards down, but the workers
                # never actually died — re-admit them so each attempt
                # exercises failover from a full ring
                for name in router.worker_names:
                    router.mark_up(name)
    finally:
        for shard in shards:
            shard.close()


# -- semantic invariants -----------------------------------------------------

def _check_one_grouping(machines, capacity: int, algorithm: str) -> list:
    """Partition/capacity/oversized/index/determinism invariants for one
    packing algorithm; returns the groups for cross-algorithm checks."""
    groups = group_machines(machines, capacity, algorithm=algorithm)
    assigned: list[str] = [name for group in groups
                           for name in group.machine_names]
    expected = sorted(machine.name for machine in machines)
    if sorted(assigned) != expected:
        missing = sorted(set(expected) - set(assigned))
        extra = sorted(name for name in assigned
                       if assigned.count(name) > 1)
        raise OracleFailure(
            f"{algorithm} grouping is not a partition (missing={missing}, "
            f"duplicated={sorted(set(extra))})")
    for group in groups:
        if group.oversized:
            if len(group.machines) != 1:
                raise OracleFailure(
                    f"{algorithm}: oversized client {group.name} holds "
                    f"{len(group.machines)} machines")
            if group.points <= capacity:
                raise OracleFailure(
                    f"{algorithm}: client {group.name} marked oversized at "
                    f"{group.points}/{capacity} points")
        elif group.points > capacity:
            raise OracleFailure(
                f"{algorithm}: client {group.name} over capacity: "
                f"{group.points}/{capacity} points")
    if [group.index for group in groups] != list(range(1, len(groups) + 1)):
        raise OracleFailure(f"{algorithm}: client indices are not sequential")
    rerun = group_machines(machines, capacity, algorithm=algorithm)
    if [g.machine_names for g in rerun] != [g.machine_names for g in groups]:
        raise OracleFailure(
            f"{algorithm} grouping is not deterministic across runs")
    return groups


def _check_grouping(ctx: TrialContext) -> None:
    topology = extract_topology(ctx.model)
    capacity = ctx.options.capacity
    first_fit = _check_one_grouping(topology.machines, capacity, "first-fit")
    best_fit = _check_one_grouping(topology.machines, capacity, "best-fit")
    # the opt-in solver must be equivalent or better, never worse
    if len(best_fit) > len(first_fit):
        raise OracleFailure(
            f"best-fit used more clients than first-fit "
            f"({len(best_fit)} > {len(first_fit)})")
    bound = lower_bound_clients(topology.machines, capacity)
    if len(best_fit) < bound:
        raise OracleFailure(
            f"best-fit beat the information-theoretic lower bound "
            f"({len(best_fit)} < {bound}) — the packing is unsound")


def _check_sim(ctx: TrialContext) -> None:
    """The scenario engine's determinism contract, by digest.

    One seed + one topology must produce byte-identical briefings
    across repeated runs, ``jobs=1`` vs ``jobs=N``, thread vs process
    pools — and a report must not depend on the input order of the
    job list it simulates.
    """
    from ..sim import (CANONICAL_SCENARIOS, Workload, build_scenario,
                       run_scenario, simulate_suite)
    topology = extract_topology(ctx.model)
    if not topology.machines:
        return  # nothing to simulate — trivially deterministic
    seed = ctx.scenario.seed if ctx.scenario is not None else 0
    serial = simulate_suite(topology, seed=seed, mode="serial")
    for mode in ("thread", "process"):
        pooled = simulate_suite(topology, seed=seed, jobs=4, mode=mode)
        if pooled.digest != serial.digest:
            raise OracleFailure(
                f"jobs=4 {mode}-pool briefing digest differs from serial")
        if pooled.to_json() != serial.to_json():
            raise OracleFailure(
                f"jobs=4 {mode}-pool briefing JSON differs from serial")
    again = simulate_suite(topology, seed=seed, mode="serial")
    if again.digest != serial.digest:
        raise OracleFailure("repeated serial simulation changed digest")
    if list(CANONICAL_SCENARIOS) != [report.scenario
                                     for report in serial.reports]:
        raise OracleFailure("briefing scenario order differs from the "
                            "requested scenario list")
    # input-order independence: the same job *set*, handed over in
    # reverse, must simulate to the same report
    spec = build_scenario("baseline", topology, seed=seed)
    reversed_spec = type(spec)(
        name=spec.name, description=spec.description, seed=spec.seed,
        policy=spec.policy,
        workload=Workload(list(reversed(spec.workload.jobs)),
                          machines=spec.workload.machines),
        slowdowns=spec.slowdowns, outages=spec.outages,
        perturbations=spec.perturbations)
    if run_scenario(reversed_spec).digest != run_scenario(spec).digest:
        raise OracleFailure(
            "report digest depends on job input order")


def _check_plan(ctx: TrialContext) -> None:
    """The planning backend's determinism contract, by digest.

    Emission (domain + problems) and the chosen plans must be
    byte-identical across repeat runs, ``jobs=1`` vs ``jobs=4`` thread
    pools and ``mode="process"`` pools;
    every plan must replay cleanly on the machine simulators; and the
    planner seed may only steer tie-breaks — the PDDL text is
    byte-stable across planner seeds and the plan *cost* matches the
    cost-optimal ``uniform`` strategy's.
    """
    from ..planning import PlanningOptions, plan_operations
    topology = extract_topology(ctx.model)
    inventory = topology.service_inventory()
    if not inventory:
        return  # no services to plan over — trivially deterministic
    seed = ctx.scenario.seed if ctx.scenario is not None else 0
    options = PlanningOptions(seed=seed, problems=2, orders=2)
    serial = plan_operations(topology, options)
    if not serial.all_valid:
        failures = [problem for result_problem in serial.problems
                    if result_problem.validation is not None
                    for problem in result_problem.validation.problems]
        raise OracleFailure(
            f"plan failed simulator replay: {failures[:3]}")
    again = plan_operations(topology, options)
    if again.digest != serial.digest or again.files() != serial.files():
        raise OracleFailure("repeated planning run changed emitted bytes")
    pooled = plan_operations(
        topology, options.replace(jobs=4))
    if pooled.digest != serial.digest or pooled.files() != serial.files():
        raise OracleFailure("jobs=4 planning emission differs from serial")
    forked = plan_operations(
        topology, options.replace(jobs=2, mode="process"))
    if forked.digest != serial.digest or forked.files() != serial.files():
        raise OracleFailure(
            "process-pool planning emission differs from serial")
    # a different planner seed reroutes tie-breaks only: the emitted
    # PDDL text is untouched and the greedy plan cost still equals the
    # optimum (the heuristic descends by exactly 1 per action)
    reseeded = plan_operations(
        topology, options.replace(planner_seed=seed + 1000))
    serial_emission = {name: text for name, text in serial.files().items()
                      if not name.endswith(".plan")}
    reseeded_emission = {name: text
                        for name, text in reseeded.files().items()
                        if not name.endswith(".plan")}
    if reseeded_emission != serial_emission:
        raise OracleFailure(
            "planner seed leaked into the emitted PDDL text")
    if not reseeded.all_valid:
        raise OracleFailure("reseeded plan failed simulator replay")
    optimal = plan_operations(
        topology, options.replace(strategy="uniform"))
    costs = [problem.cost for problem in serial.problems]
    reseeded_costs = [problem.cost for problem in reseeded.problems]
    optimal_costs = [problem.cost for problem in optimal.problems]
    if costs != optimal_costs:
        raise OracleFailure(
            f"greedy plan costs {costs} differ from the cost-optimal "
            f"uniform strategy's {optimal_costs}")
    if reseeded_costs != optimal_costs:
        raise OracleFailure(
            f"reseeded plan costs {reseeded_costs} differ from the "
            f"cost-optimal {optimal_costs}")


#: The registry, in canonical execution order (front end first, then
#: pipeline equivalences, then semantic invariants).
ORACLES: dict[str, Oracle] = {
    oracle.name: oracle for oracle in (
        Oracle("roundtrip",
               "parse -> print -> parse AST identity and print fixpoint",
               _check_roundtrip, source_level=True),
        Oracle("interchange",
               "JSON interchange round-trip preserves AST and printed form",
               _check_interchange, source_level=True),
        Oracle("cache",
               "cache-off / cache-cold / cache-warm bundles byte-identical",
               _check_cache),
        Oracle("jobs",
               "serial and parallel pipeline bundles byte-identical",
               _check_jobs),
        Oracle("serve",
               "configuration service returns the direct pipeline bytes",
               _check_serve),
        Oracle("incremental",
               "incremental engine output byte-identical to cold runs; "
               "no-op and comment-only edits reuse every artifact",
               _check_incremental),
        Oracle("grouping",
               "client grouping partitions machines within capacity, "
               "deterministically",
               _check_grouping),
        Oracle("sim",
               "scenario-engine briefings byte-identical across repeat "
               "runs, jobs=1/N and thread/process pools; reports "
               "independent of job input order",
               _check_sim),
        Oracle("plan",
               "PDDL emission byte-identical across repeat runs and "
               "jobs=1/N; plans replay cleanly on simulators; planner "
               "seed changes only tie-breaks, never emitted text or "
               "plan cost",
               _check_plan),
        Oracle("sharded",
               "consistent-hash routed bundles (1 and N workers) "
               "byte-identical to direct runs, with stable shard "
               "affinity and a parse-free routing key equal to the "
               "worker single-flight key",
               _check_sharded),
        Oracle("chaos",
               "under a seeded fault plan (cache corruption/IO errors, "
               "worker crashes, router-dispatch crashes, injected 503s) "
               "bundles stay byte-identical or fail with typed "
               "retriable errors",
               _check_chaos, opt_in=True),
    )
}


def oracle_names(include_opt_in: bool = False) -> list[str]:
    """Registered oracle names; opt-in oracles only when asked."""
    return [name for name, oracle in ORACLES.items()
            if include_opt_in or not oracle.opt_in]


def run_oracle(name: str, ctx: TrialContext) -> None:
    """Run one oracle by name (raises KeyError for unknown names)."""
    try:
        oracle = ORACLES[name]
    except KeyError:
        raise KeyError(f"unknown oracle {name!r}; "
                       f"known: {', '.join(ORACLES)}") from None
    oracle.run(ctx)
