"""Delta-debugging shrinker: failing scenario -> minimal reproducer.

A conformance failure on a 6-machine hostile scenario is a poor bug
report. The shrinker reduces it in up to three stages:

1. **ddmin over machine specs** — the classic delta-debugging minimum
   on the scenario's machine list;
2. **greedy per-spec reduction** — drop services, variable categories,
   individual variables and driver parameters while the oracle still
   fails;
3. **line-level ddmin** (source-level oracles only, i.e. those marked
   ``source_level`` in the registry) — reduce the flattened textual
   model line-by-line, keeping only candidates that still parse AND
   still fail the oracle. This is what turns a printer bug into a
   one-to-few-line ``.sysml`` reproducer.

The reduced model is written to a *crash corpus* directory together
with a JSON sidecar (seed, oracle, failure message), where the property
suites pick it up as explicit regression examples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace as _dc_replace
from pathlib import Path
from typing import Callable, Sequence, TypeVar

from ..machines.catalog import MachineSpec
from .corpus import FactoryScenario
from .oracles import ORACLES, OracleFailure, TrialContext

_T = TypeVar("_T")


def ddmin(items: Sequence[_T],
          failing: Callable[[list[_T]], bool]) -> list[_T]:
    """Zeller's ddmin: a 1-minimal sublist of *items* on which
    *failing* still returns True.

    *failing(items)* must be True on entry; the result is a sublist
    such that removing any single element makes *failing* False.
    """
    items = list(items)
    if not failing(items):
        raise ValueError("ddmin requires a failing starting point")
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        subsets = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for index, subset in enumerate(subsets):
            if failing(subset):
                items = subset
                granularity = 2
                reduced = True
                break
            complement = [item for j, s in enumerate(subsets) if j != index
                          for item in s]
            if complement and failing(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def _split_units(lines: list[str]) -> list[list[str]]:
    """Split lines into top-level brace-balanced units."""
    units: list[list[str]] = []
    current: list[str] = []
    depth = 0
    for line in lines:
        current.append(line)
        depth += line.count("{") - line.count("}")
        if depth <= 0:
            units.append(current)
            current = []
            depth = 0
    if current:
        units.append(current)
    return units


def _reduce_units(lines: list[str],
                  failing: Callable[[list[str]], bool]) -> list[str]:
    """Hierarchical reduction: ddmin over brace-balanced blocks, then
    recurse into each surviving block's interior. Plain line-level
    ddmin is 1-minimal but cannot drop a ``{``/``}`` pair (removing
    either line alone unbalances the braces); block-level moves can."""
    if failing([]):
        return []
    units = _split_units(lines)
    def flat(subset: list[list[str]]) -> list[str]:
        return [line for unit in subset for line in unit]
    if len(units) > 1:
        units = ddmin(units, lambda subset: failing(flat(subset)))
    for index in range(len(units)):
        unit = units[index]
        if len(unit) < 3:
            continue
        header, interior, footer = unit[0], unit[1:-1], unit[-1]

        def interior_failing(candidate: list[str], *,
                             _index=index, _header=header,
                             _footer=footer) -> bool:
            trial = (units[:_index]
                     + [[_header] + list(candidate) + [_footer]]
                     + units[_index + 1:])
            return failing(flat(trial))

        if interior and interior_failing(interior):
            reduced = ddmin(interior, interior_failing)
            reduced = _reduce_units(reduced, interior_failing)
            units[index] = [header] + reduced + [footer]
    return flat(units)


def _reduce_lines(lines: list[str],
                  failing: Callable[[list[str]], bool]) -> list[str]:
    """Line-level ddmin and the hierarchical block pass, iterated to a
    fixpoint: emptying a block can make a whole library package dead,
    which only the next round's unit-level ddmin can remove."""
    if not failing(lines):
        return lines
    current = ddmin(lines, failing)
    while True:
        reduced = ddmin(_reduce_units(current, failing), failing)
        if reduced == current:
            return current
        current = reduced


@dataclass
class Reproducer:
    """A shrunk failing trial, ready to be filed in the crash corpus."""

    oracle: str
    seed: int
    error: str
    source: str
    path: Path | None = None
    meta_path: Path | None = None

    @property
    def line_count(self) -> int:
        return len(self.source.splitlines())


def _fails(oracle_name: str, scenario: FactoryScenario) -> str | None:
    """The failure message if *scenario* still fails *oracle*, else
    None. Any error other than :class:`OracleFailure` (e.g. the reduced
    model no longer parses) does not count as the same failure."""
    try:
        ORACLES[oracle_name].run(TrialContext(scenario=scenario))
    except OracleFailure as error:
        return str(error)
    except Exception:
        return None
    return None


def _source_fails(oracle_name: str, text: str) -> bool:
    try:
        ctx = TrialContext(sources=[text])
        ctx.model  # noqa: B018 -- parse/resolve gate
    except Exception:
        return False
    try:
        ORACLES[oracle_name].run(ctx)
    except OracleFailure:
        return True
    except Exception:
        return False
    return False


def _with_specs(scenario: FactoryScenario,
                specs: list[MachineSpec]) -> FactoryScenario:
    return FactoryScenario(
        seed=scenario.seed, specs=specs,
        topology_name=scenario.topology_name,
        enterprise=scenario.enterprise, site=scenario.site,
        area=scenario.area, line=scenario.line,
        capacity=scenario.capacity, config=scenario.config)


def _reduce_spec(spec: MachineSpec,
                 still_fails: Callable[[MachineSpec], bool]) -> MachineSpec:
    """Greedily drop services, categories, variables and driver
    parameters from one spec while the failure persists."""
    def rebuild(**changes) -> MachineSpec:
        base = {"name": spec.name, "display_name": spec.display_name,
                "type_name": spec.type_name, "workcell": spec.workcell,
                "driver": spec.driver,
                "categories": {c: list(vs)
                               for c, vs in spec.categories.items()},
                "services": list(spec.services)}
        base.update(changes)
        return MachineSpec(**base)

    for service in list(spec.services):
        candidate = rebuild(services=[s for s in spec.services
                                      if s is not service])
        if still_fails(candidate):
            spec = candidate
    for category in list(spec.categories):
        remaining = {c: vs for c, vs in spec.categories.items()
                     if c != category}
        candidate = rebuild(categories=remaining, services=spec.services)
        if still_fails(candidate):
            spec = candidate
    for category, variables in list(spec.categories.items()):
        for variable in list(variables):
            slimmed = {c: [v for v in vs if v is not variable]
                       for c, vs in spec.categories.items()}
            candidate = rebuild(categories=slimmed, services=spec.services)
            if still_fails(candidate):
                spec = candidate
    for key in list(spec.driver.parameters):
        driver = _dc_replace(
            spec.driver,
            parameters={k: v for k, v in spec.driver.parameters.items()
                        if k != key})
        candidate = rebuild(driver=driver, categories=spec.categories,
                            services=spec.services)
        if still_fails(candidate):
            spec = candidate
    return spec


def shrink_failure(scenario: FactoryScenario, oracle_name: str,
                   *, error: str = "") -> Reproducer:
    """Reduce a failing (scenario, oracle) pair to a minimal model."""
    oracle = ORACLES[oracle_name]
    message = _fails(oracle_name, scenario)
    if message is None:
        raise ValueError(
            f"scenario seed={scenario.seed} does not fail oracle "
            f"{oracle_name!r}; nothing to shrink")

    # stage 1: ddmin over the machine list
    specs = ddmin(
        scenario.specs,
        lambda subset: bool(subset)
        and _fails(oracle_name, _with_specs(scenario, subset)) is not None)
    current = _with_specs(scenario, specs)

    # stage 2: greedy per-spec reduction
    reduced: list[MachineSpec] = []
    for index, spec in enumerate(list(current.specs)):
        def still_fails(candidate: MachineSpec) -> bool:
            trial = (reduced + [candidate]
                     + list(current.specs[index + 1:]))
            return _fails(oracle_name, _with_specs(scenario,
                                                   trial)) is not None
        reduced.append(_reduce_spec(spec, still_fails))
    current = _with_specs(scenario, reduced)
    message = _fails(oracle_name, current) or message
    source = "\n".join(current.user_sources)

    # stage 3: line-level ddmin for source-level oracles. The ISA-95
    # prelude joins the reduction set: resolution dependencies shrink
    # away together with the lines that needed them.
    if oracle.source_level:
        lines = "\n".join(current.sources).splitlines()
        minimal = _reduce_lines(
            lines,
            lambda subset: _source_fails(oracle_name, "\n".join(subset)))
        if minimal is not lines:
            source = "\n".join(line for line in minimal if line.strip())

    return Reproducer(oracle=oracle_name, seed=scenario.seed,
                      error=error or message, source=source)


def write_reproducer(reproducer: Reproducer,
                     crash_dir: str | Path) -> Reproducer:
    """File a reproducer in the crash corpus (idempotent per
    oracle+seed). Returns the reproducer with its paths filled in."""
    crash_dir = Path(crash_dir)
    crash_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{reproducer.oracle}-seed{reproducer.seed:08d}"
    path = crash_dir / f"{stem}.sysml"
    meta_path = crash_dir / f"{stem}.json"
    path.write_text(reproducer.source + "\n", encoding="utf-8")
    meta_path.write_text(json.dumps({
        "oracle": reproducer.oracle,
        "seed": reproducer.seed,
        "error": reproducer.error,
        "lines": reproducer.line_count,
    }, indent=2) + "\n", encoding="utf-8")
    reproducer.path = path
    reproducer.meta_path = meta_path
    return reproducer
