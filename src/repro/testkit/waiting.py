"""Bounded-wait primitives for concurrent tests.

Fixed ``time.sleep`` calls make a test either slow (sleep too long) or
flaky (sleep too short); every wait in the test suite goes through
these helpers instead, which poll until a condition holds and fail
loudly — with the caller's description — when a deadline expires.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

_T = TypeVar("_T")

#: Default ceiling for a single wait. Generous enough for a loaded CI
#: runner; a healthy condition is typically observed in well under 50ms.
DEFAULT_TIMEOUT = 10.0
DEFAULT_INTERVAL = 0.005


class Deadline:
    """A fixed point in (monotonic) time that waits can share.

    *clock* defaults to ``time.monotonic``; tests inject a scripted
    clock to drive waits without real elapsed time.
    """

    def __init__(self, seconds: float = DEFAULT_TIMEOUT, *,
                 clock: Callable[[], float] | None = None):
        self.seconds = seconds
        self.clock = clock or time.monotonic
        self._expires = self.clock() + seconds

    @property
    def expired(self) -> bool:
        return self.clock() >= self._expires

    def remaining(self) -> float:
        return max(0.0, self._expires - self.clock())


def wait_until(predicate: Callable[[], _T], *,
               timeout: float = DEFAULT_TIMEOUT,
               interval: float = DEFAULT_INTERVAL,
               message: str = "",
               deadline: Deadline | None = None,
               clock: Callable[[], float] | None = None,
               sleep: Callable[[float], None] | None = None) -> _T:
    """Poll *predicate* until it returns a truthy value, and return it.

    Raises :class:`TimeoutError` (carrying *message* and the timeout)
    if the deadline passes first. The predicate is always evaluated at
    least once and once more right at the deadline, so a condition that
    becomes true exactly at the boundary is still observed.

    Pass a shared *deadline* so several consecutive waits draw down one
    budget (a worker's port file *and* its health probe share a single
    startup timeout). *clock*/*sleep* are injectable for scripted-clock
    tests; when a *deadline* is given its clock wins.
    """
    if deadline is None:
        deadline = Deadline(timeout, clock=clock)
    do_sleep = sleep or time.sleep
    while True:
        value = predicate()
        if value:
            return value
        if deadline.expired:
            value = predicate()  # final check after the deadline
            if value:
                return value
            what = message or getattr(predicate, "__name__", "condition")
            raise TimeoutError(
                f"timed out after {deadline.seconds:.1f}s waiting for {what}")
        # clamp to the remaining budget: the old `remaining() or
        # interval` slept a *full* interval past an exactly-expired
        # deadline before re-checking; sleep(0) re-checks promptly
        do_sleep(min(interval, deadline.remaining()))


def wait_for_event(event: threading.Event, *,
                   timeout: float = DEFAULT_TIMEOUT,
                   message: str = "") -> None:
    """``event.wait`` with a mandatory deadline and a loud failure."""
    if not event.wait(timeout):
        raise TimeoutError(
            f"timed out after {timeout:.1f}s waiting for "
            f"{message or 'event'}")
