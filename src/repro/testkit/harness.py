"""The conformance trial runner behind ``repro conformance``.

``run_conformance`` draws N seeds, generates each scenario, runs the
requested oracles and folds the results into a JSON-serializable
:class:`ConformanceReport`. Trials fan out through
:func:`repro.parallel.map_ordered`, per-oracle wall time lands in the
:mod:`repro.obs` metrics registry, and failures are (optionally)
shrunk to minimal reproducers in the crash corpus.

The report carries a content digest over everything *semantic* —
seeds, oracle verdicts, failure messages, corpus configuration — and
nothing timing-dependent, so the same seeds produce the same digest
regardless of ``--jobs`` or machine load. That makes a conformance run
replayable evidence, not just a green light.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..fingerprint import fingerprint
from ..obs import METRICS
from ..parallel import map_ordered
from .corpus import CorpusConfig, FactoryScenario, generate_scenario
from .oracles import OracleFailure, ORACLES, TrialContext, oracle_names
from .shrink import Reproducer, shrink_failure, write_reproducer

_TRIALS = METRICS.counter("conformance.trials")
_FAILURES = METRICS.counter("conformance.failures")

_REPORT_SALT = "conformance-report/1"


@dataclass
class OracleOutcome:
    """One oracle's verdict on one trial."""

    name: str
    ok: bool
    error: str | None = None
    seconds: float = 0.0

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {"name": self.name, "ok": self.ok,
                                   "seconds": round(self.seconds, 6)}
        if self.error:
            data["error"] = self.error
        return data

    def semantic(self) -> dict[str, object]:
        """The digest-relevant part (no timings)."""
        return {"name": self.name, "ok": self.ok, "error": self.error}


@dataclass
class TrialResult:
    """All oracle verdicts for one seed."""

    seed: int
    outcomes: list[OracleOutcome] = field(default_factory=list)
    describe: dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> list[OracleOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def to_dict(self) -> dict[str, object]:
        return {"seed": self.seed, "ok": self.ok,
                "scenario": self.describe,
                "oracles": [outcome.to_dict() for outcome in self.outcomes]}


@dataclass
class ConformanceReport:
    """The harvest of one conformance run."""

    base_seed: int
    oracles: list[str]
    config: CorpusConfig
    trials: list[TrialResult] = field(default_factory=list)
    reproducers: list[Reproducer] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(trial.ok for trial in self.trials)

    @property
    def failure_count(self) -> int:
        return sum(len(trial.failures) for trial in self.trials)

    @property
    def digest(self) -> str:
        """Content address of the semantic outcome (timing-free)."""
        return fingerprint(
            self.base_seed, self.oracles, self.config.to_dict(),
            [{"seed": trial.seed,
              "oracles": [outcome.semantic()
                          for outcome in trial.outcomes]}
             for trial in self.trials],
            salt=_REPORT_SALT)

    def oracle_stats(self) -> dict[str, dict[str, object]]:
        stats: dict[str, dict[str, object]] = {}
        for name in self.oracles:
            runs = [outcome for trial in self.trials
                    for outcome in trial.outcomes if outcome.name == name]
            seconds = [outcome.seconds for outcome in runs]
            stats[name] = {
                "runs": len(runs),
                "failures": sum(1 for outcome in runs if not outcome.ok),
                "total_seconds": round(sum(seconds), 6),
                "max_seconds": round(max(seconds), 6) if seconds else 0.0,
            }
        return stats

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": "repro/conformance-report/1",
            "ok": self.ok,
            "digest": self.digest,
            "base_seed": self.base_seed,
            "seeds": len(self.trials),
            "oracles": self.oracles,
            "config": self.config.to_dict(),
            "failures": self.failure_count,
            "oracle_stats": self.oracle_stats(),
            "wall_seconds": round(self.wall_seconds, 3),
            "trials": [trial.to_dict() for trial in self.trials],
            "reproducers": [{
                "oracle": reproducer.oracle,
                "seed": reproducer.seed,
                "lines": reproducer.line_count,
                "error": reproducer.error,
                "path": str(reproducer.path) if reproducer.path else None,
            } for reproducer in self.reproducers],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"


def run_trial(seed: int, *, config: CorpusConfig | None = None,
              oracles: list[str] | None = None) -> TrialResult:
    """Generate the scenario for *seed* and run every oracle on it."""
    names = list(oracles) if oracles else oracle_names()
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise KeyError(f"unknown oracle(s) {', '.join(unknown)}; "
                       f"known: {', '.join(ORACLES)}")
    scenario = generate_scenario(seed, config)
    ctx = TrialContext(scenario=scenario)
    result = TrialResult(seed=seed, describe=scenario.describe())
    _TRIALS.inc()
    for name in names:
        started = time.perf_counter()
        try:
            ORACLES[name].run(ctx)
            outcome = OracleOutcome(name=name, ok=True)
        except OracleFailure as error:
            outcome = OracleOutcome(name=name, ok=False, error=str(error))
            _FAILURES.inc()
        except Exception as error:
            # an oracle crash (not a disagreement) still fails the
            # trial — with the exception type in the message
            outcome = OracleOutcome(
                name=name, ok=False,
                error=f"{type(error).__name__}: {error}")
            _FAILURES.inc()
        outcome.seconds = time.perf_counter() - started
        METRICS.histogram(f"conformance.oracle.{name}.seconds").observe(
            outcome.seconds)
        result.outcomes.append(outcome)
    return result


def run_conformance(seeds: int = 50, *, base_seed: int = 0,
                    oracles: list[str] | None = None,
                    config: CorpusConfig | None = None,
                    jobs: int = 1,
                    shrink: bool = True,
                    crash_dir: str | Path | None = None,
                    chaos: bool = False) -> ConformanceReport:
    """Run *seeds* conformance trials (``base_seed ..
    base_seed+seeds-1``) and return the report.

    Trials are independent, so they fan out ``jobs`` wide; shrinking
    runs serially afterwards (failures are rare and the reduction reuses
    the single-threaded oracle path). *chaos* adds the opt-in ``chaos``
    oracle: every trial re-runs the pipeline and the serving path under
    a per-seed fault plan (each trial builds its own plan, so parallel
    trials never share fault state and the report digest stays
    identical across ``jobs``).
    """
    names = list(oracles) if oracles else oracle_names()
    if chaos and "chaos" not in names:
        names.append("chaos")
    config = config or CorpusConfig()
    started = time.perf_counter()
    trials = map_ordered(
        lambda seed: run_trial(seed, config=config, oracles=names),
        range(base_seed, base_seed + seeds),
        jobs=jobs, mode="thread", pool_span="conformance",
        span_label=lambda seed, _i: f"trial:{seed}")
    report = ConformanceReport(base_seed=base_seed, oracles=names,
                               config=config, trials=trials)
    if shrink:
        for trial in trials:
            for outcome in trial.failures:
                scenario = generate_scenario(trial.seed, config)
                try:
                    reproducer = shrink_failure(
                        scenario, outcome.name,
                        error=outcome.error or "")
                except ValueError:
                    # flaked during shrinking: keep the unshrunk model
                    reproducer = Reproducer(
                        oracle=outcome.name, seed=trial.seed,
                        error=outcome.error or "",
                        source="\n".join(scenario.user_sources))
                if crash_dir is not None:
                    reproducer = write_reproducer(reproducer, crash_dir)
                report.reproducers.append(reproducer)
    report.wall_seconds = time.perf_counter() - started
    return report
