"""Mega-factory corpus: deterministic ICE-Lab×N replication.

The seeded corpus (:mod:`repro.testkit.corpus`) explores *shape*
diversity; this module explores *size*. ``mega_factory_specs(scale)``
replicates the ICE lab's nine-machine inventory across ``scale``
workcell blocks — ×100 is on the order of a thousand machines and
~50k data points, the regime where real plants modeled on ISA-95
substrates live — while staying a pure function of ``scale``:

* machine copies get deterministic names (``emco_c003``) and their own
  workcells, so the ISA-95 topology grows wide;
* driver flavours rotate per block between the original protocol, a
  generic OPC UA variant and a Modbus variant (each flavour gets its
  own part-definition library, so the *definition* count stays bounded
  while the *usage* count grows linearly — exactly the load that makes
  unmemoized name resolution quadratic);
* the flavoured libraries nest their variable categories two levels
  deeper, keeping deep-hierarchy lookup on the hot path.

``mega_factory_sources(scale)`` realizes the specs as textual SysML v2
through the same emitters the ICE-lab model uses, ready for
``load_model`` / the generation pipeline. The A4 scaling bench
(``benchmarks/test_ablation_scaling.py``) is the primary consumer.
"""

from __future__ import annotations

from ..icelab.model_gen import icelab_sources
from ..isa95.levels import VariableSpec
from ..machines.catalog import DriverSpec, MachineSpec
from ..machines.specs import ICE_LAB_SPECS

#: Driver flavour rotation: (type-name suffix, protocol override,
#: is_generic, category prefix). The empty suffix keeps the original
#: ICE-lab driver; flavoured copies reference their own library.
_FLAVOURS = (
    ("", None, None, ""),
    ("Ua", "ScaleOPCUAGenericDriver", True, "Plant/North/"),
    ("Mb", "ScaleModbusDriver", False, "Plant/South/"),
)


def _copy_variables(spec: MachineSpec,
                    category_prefix: str) -> dict[str, list[VariableSpec]]:
    """Fresh VariableSpec objects per copy (``MachineSpec.__post_init__``
    writes back into them), under an optionally deepened category."""
    categories: dict[str, list[VariableSpec]] = {}
    for category, variables in spec.categories.items():
        deep = f"{category_prefix}{category}" if category_prefix else category
        categories[deep] = [
            VariableSpec(name=v.name, data_type=v.data_type,
                         category=(f"{category_prefix}{v.category}"
                                   if category_prefix and v.category
                                   else v.category),
                         description=v.description, unit=v.unit,
                         initial_value=v.initial_value)
            for v in variables]
    return categories


def _replicate(spec: MachineSpec, block: int) -> MachineSpec:
    suffix, protocol, is_generic, category_prefix = \
        _FLAVOURS[block % len(_FLAVOURS)]
    driver = spec.driver
    if protocol is not None:
        driver = DriverSpec(
            protocol=protocol, is_generic=is_generic,
            parameters={**spec.driver.parameters,
                        "endpoint":
                        f"opc.tcp://10.{block % 250}.{block // 250}.1:4840"})
    return MachineSpec(
        name=f"{spec.name}_c{block:03d}",
        display_name=f"{spec.display_name} (cell {block})",
        type_name=f"{spec.type_name}{suffix}",
        workcell=f"scaleCell{block:03d}",
        driver=driver,
        categories=_copy_variables(spec, category_prefix),
        services=list(spec.services))


def mega_factory_specs(scale: int) -> list[MachineSpec]:
    """The ICE lab replicated into *scale* workcell blocks.

    ``scale=1`` is exactly the paper's inventory; ``scale=N`` appends
    ``N - 1`` replicated blocks. Deterministic: equal scales yield
    byte-identical spec lists (and therefore byte-identical sources).
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    specs = list(ICE_LAB_SPECS)
    for block in range(1, scale):
        specs.extend(_replicate(spec, block) for spec in ICE_LAB_SPECS)
    return specs


def mega_factory_sources(scale: int) -> list[str]:
    """Textual SysML v2 sources of the ×\\ *scale* mega factory."""
    return icelab_sources(mega_factory_specs(scale))
