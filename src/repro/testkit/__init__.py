"""Differential conformance harness for the reproduction pipeline.

The testkit closes the loop between the front end (parser/printer/
interchange), the generation pipeline (cache, parallel fan-out) and the
serving layer: a seeded corpus generator emits arbitrary-but-valid
factory models, a registry of equivalence oracles checks that every
path through the system agrees, and a delta-debugging shrinker reduces
any disagreement to a minimal reproducer.

Entry points:

* :func:`generate_scenario` — one seed -> one :class:`FactoryScenario`;
* :func:`mega_factory_specs` / :func:`mega_factory_sources` — the
  deterministic ICE-Lab×N corpus behind the A4 scaling bench;
* :data:`ORACLES` / :func:`run_oracle` — the oracle registry;
* :func:`run_conformance` — the parallel trial harness behind
  ``repro conformance``;
* :func:`shrink_failure` — ddmin reduction of a failing trial;
* :func:`wait_until` / :class:`Deadline` — bounded-wait helpers shared
  by the service tests (no fixed sleeps).
"""

from .corpus import CorpusConfig, FactoryScenario, generate_scenario
from .scale import mega_factory_sources, mega_factory_specs
from .harness import ConformanceReport, TrialResult, run_conformance, run_trial
from .oracles import (ORACLES, OracleFailure, TrialContext, chaos_plan,
                      oracle_names, run_oracle)
from .shrink import ddmin, shrink_failure, write_reproducer
from .waiting import Deadline, wait_for_event, wait_until

__all__ = [
    "ConformanceReport", "CorpusConfig", "Deadline", "FactoryScenario",
    "ORACLES", "OracleFailure", "mega_factory_sources",
    "mega_factory_specs", "TrialContext", "TrialResult",
    "chaos_plan", "ddmin", "generate_scenario", "oracle_names",
    "run_conformance", "run_oracle", "run_trial", "shrink_failure",
    "wait_for_event", "wait_until", "write_reproducer",
]
