"""Command-line interface: ``repro-factory`` / ``python -m repro``.

Subcommands
-----------
``model``     emit the generated ICE-lab SysML v2 model (textual notation)
``validate``  parse + validate a .sysml file (or the built-in ICE lab)
``generate``  run the two-step configuration pipeline, optionally writing
              all JSON/YAML files to a directory; ``--trace`` prints the
              span tree, ``--trace=FILE`` writes the trace JSON
``trace``     run the full front end + generation with telemetry on and
              report the span tree (or JSON) plus process metrics
``simulate``  predict how the configured factory behaves: run seeded
              what-if scenarios (rush orders, machine slowdowns,
              workcell outages) through the discrete-event scenario
              engine and print the briefing — byte-identical output
              for a seed, whatever ``--jobs``
``plan``      emit the third codegen backend: a PDDL operations-planning
              domain (machine capabilities as actions) plus per-workload
              problem files, solved by the deterministic from-scratch
              planner and replayed on the behavioural simulators —
              byte-identical emission for a seed, whatever ``--jobs``
``serve``     run the configuration service: a concurrent HTTP front end
              over the pipeline with single-flight dedup, admission
              control and graceful drain on SIGTERM
``watch``     watch .sysml files and incrementally regenerate on each
              edit: only dirty model subtrees re-elaborate, only
              changed output files are rewritten, and ``--deploy``
              rolls the regenerated manifests onto a simulated cluster
``deploy``    run the full Figure-1 flow on the simulated cluster and
              print the smoke report
``conformance``  run differential conformance trials over a seeded
              model corpus: every oracle on every seed, failures
              shrunk to minimal reproducers in the crash corpus
``table1``    print the reproduced Table I
``figures``   print the regenerated Figure 1 / Figure 2 renderings
``compare``   run the SysML v1-vs-v2 baseline comparison
"""

from __future__ import annotations

import argparse
import sys


def _cmd_model(args) -> int:
    from .icelab import icelab_model_text
    text = icelab_model_text()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_validate(args) -> int:
    import json as _json

    from .sysml import load_model, validate_model
    from .sysml.errors import SysMLError
    if args.file:
        with open(args.file) as handle:
            source = handle.read()
        sources = [source]
    else:
        from .icelab import icelab_sources
        sources = icelab_sources()
    try:
        model = load_model(*sources)
    except SysMLError as exc:
        if args.json:
            print(_json.dumps({
                "ok": False,
                "errors": 1,
                "warnings": 0,
                "front_end_error": {
                    "message": exc.message,
                    "location": str(exc.location),
                    "kind": type(exc).__name__,
                },
                "diagnostics": [],
            }, indent=2))
        else:
            print(f"FRONT-END ERROR: {exc}")
        return 1
    report = validate_model(model)
    if args.json:
        print(report.to_json())
    else:
        print(report if len(report) else "model is well-formed")
    return 0 if report.ok else 1


def _resolve_cache(args):
    """The ArtifactCache requested via --cache/--cache-dir, or None."""
    from .cache import ArtifactCache, default_cache_dir
    directory = args.cache_dir
    if directory is None and getattr(args, "cache", False):
        directory = default_cache_dir()
    if directory is None:
        return None
    max_bytes = getattr(args, "cache_max_bytes", None)
    if max_bytes is not None:
        return ArtifactCache(directory, max_bytes)
    return ArtifactCache(directory)


def _add_perf_arguments(parser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker-pool width for parse/step1/step2 fan-out "
             "(0 = one per CPU; output is identical to serial)")
    parser.add_argument(
        "--cache", action="store_true",
        help="cache artifacts under $REPRO_CACHE_DIR "
             "(default ~/.cache/repro-factory)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="cache artifacts under PATH")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="N", help="LRU size bound of the cache")


def _load_sources(sources, filenames, args, cache):
    """Front end honoring the shared --jobs/--cache flags."""
    from .sysml import load_model
    return load_model(
        *sources, filenames=filenames, cache=cache, jobs=args.jobs,
        parse_mode="process" if getattr(args, "parse_processes", False)
        else "thread")


def _cmd_generate(args) -> int:
    from .codegen import PipelineOptions, generate_configuration
    from .icelab import icelab_sources
    from .obs import Tracer
    tracer = Tracer() if args.trace is not None else None
    cache = _resolve_cache(args)
    options = PipelineOptions(
        capacity=args.capacity, namespace=args.namespace, tracer=tracer,
        jobs=args.jobs,
        cache_dir=str(cache.directory) if cache else None,
        cache_max_bytes=(cache.max_bytes if cache
                         else PipelineOptions().cache_max_bytes))
    if tracer is not None:
        with tracer.activate():
            model = _load_sources(icelab_sources(), None, args, cache)
            result = generate_configuration(model, options=options)
    else:
        model = _load_sources(icelab_sources(), None, args, cache)
        result = generate_configuration(model, options=options)
    for key, value in result.summary().items():
        print(f"{key:>20}: {value}")
    for group in result.groups:
        flag = " (oversized)" if group.oversized else ""
        print(f"  {group.name}: {', '.join(group.machine_names)} "
              f"[{group.points} pts]{flag}")
    if args.out:
        written = result.write_to(args.out)
        print(f"wrote {len(written)} files under {args.out}")
    if tracer is not None:
        trace = tracer.trace()
        if args.trace == "-":
            print()
            print("=== pipeline trace ===")
            print(trace.render())
        else:
            with open(args.trace, "w") as handle:
                handle.write(trace.to_json() + "\n")
            print(f"wrote trace JSON to {args.trace}")
    return 0


def _cmd_trace(args) -> int:
    """Run the full flow (parse -> ... -> step2) with telemetry on."""
    import json as _json

    from .codegen import PipelineOptions, generate_configuration
    from .obs import METRICS, Tracer
    from .sysml.errors import SysMLError

    if args.file:
        with open(args.file) as handle:
            sources = [handle.read()]
        filenames = [args.file]
    else:
        from .icelab import icelab_sources
        sources = icelab_sources()
        filenames = None

    cache = _resolve_cache(args)
    tracer = Tracer()
    try:
        with tracer.activate():
            model = _load_sources(sources, filenames, args, cache)
            result = generate_configuration(
                model, options=PipelineOptions(
                    capacity=args.capacity, namespace=args.namespace,
                    jobs=args.jobs,
                    cache_dir=str(cache.directory) if cache else None))
    except SysMLError as exc:
        print(f"ERROR: {exc}")
        return 1
    trace = tracer.trace()
    if args.json:
        document = trace.to_dict()
        document["result"] = result.summary()
        text = _json.dumps(document, indent=2, default=str)
    else:
        lines = ["=== pipeline trace ===", trace.render(), "",
                 "=== phases ==="]
        for name, seconds in trace.phase_seconds().items():
            lines.append(f"{name:>12}: {seconds * 1e3:9.2f}ms")
        snapshot = METRICS.snapshot()
        cache_counters = {name: value
                          for name, value in snapshot.items()
                          if name.startswith("cache.")
                          or name.startswith("parallel.")}
        lines += ["", "=== cache/parallel ==="]
        if cache_counters:
            for name, value in cache_counters.items():
                lines.append(f"{name:>20}: {value}")
        else:
            lines.append("(no cache/parallel activity)")
        lines += ["", "=== metrics ===", METRICS.to_json()]
        text = "\n".join(lines)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(text)} bytes to {args.out}")
    else:
        print(text)
    return 0


def _cmd_simulate(args) -> int:
    """Simulate seeded what-if scenarios for the configured factory."""
    from contextlib import nullcontext

    from .isa95 import extract_topology
    from .obs import Tracer
    from .sim import SCENARIOS, simulate_suite
    from .sysml import load_model
    from .sysml.errors import SysMLError

    if args.file:
        with open(args.file) as handle:
            sources = [handle.read()]
        filenames = [args.file]
    else:
        from .icelab import icelab_sources
        sources = icelab_sources()
        filenames = None
    names = tuple(name.strip() for name in args.scenarios.split(",")
                  if name.strip())
    unknown = sorted(set(names) - set(SCENARIOS))
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}; "
              f"known: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    tracer = Tracer() if args.trace else None
    try:
        with tracer.activate() if tracer else nullcontext():
            model = load_model(*sources, filenames=filenames)
            topology = extract_topology(model)
            briefing = simulate_suite(
                topology, seed=args.seed, names=names,
                policy=args.policy, jobs=args.jobs, mode=args.mode,
                base_jobs=args.base_jobs)
    except SysMLError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(briefing.to_json())
        print(f"wrote briefing to {args.out}")
    if args.json:
        sys.stdout.write(briefing.to_json())
    else:
        print(briefing.render())
        print(f"digest {briefing.digest}")
    if tracer is not None:
        # wall-clock timings are opt-in: the default output above is
        # deterministic for a seed, a trace never is
        print("\n=== phases ===")
        for name, seconds in tracer.trace().phase_seconds().items():
            print(f"{name:>12}: {seconds * 1e3:9.2f}ms")
    return 0


def _cmd_plan(args) -> int:
    """Emit PDDL + plan operations for the configured factory."""
    import json as _json
    from contextlib import nullcontext

    from .isa95 import extract_topology
    from .obs import Tracer
    from .planning import PlanningError, PlanningOptions, plan_operations
    from .sysml.errors import SysMLError

    if args.file:
        with open(args.file) as handle:
            sources = [handle.read()]
        filenames = [args.file]
    else:
        from .icelab import icelab_sources
        sources = icelab_sources()
        filenames = None
    cache = _resolve_cache(args)
    options = PlanningOptions(
        seed=args.seed, problems=args.problems, orders=args.orders,
        strategy=args.strategy, planner_seed=args.planner_seed,
        validate=not args.no_validate, jobs=args.jobs, mode=args.mode)
    tracer = Tracer() if args.trace else None
    try:
        with tracer.activate() if tracer else nullcontext():
            model = _load_sources(sources, filenames, args, cache)
            topology = extract_topology(model)
            result = plan_operations(
                topology, options,
                model_fingerprint=model.content_fingerprint, cache=cache)
    except SysMLError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    except PlanningError as exc:
        print(f"PLANNING ERROR: {exc}", file=sys.stderr)
        return 1
    if args.json:
        document = result.summary()
        document["problems_detail"] = [
            {"name": problem.name, "parts": problem.parts,
             "steps": problem.steps, "cost": problem.cost,
             "expanded": problem.expanded,
             "workload_fingerprint": problem.workload_fingerprint,
             "validation": (problem.validation.to_dict()
                            if problem.validation else None)}
            for problem in result.problems]
        document["digest"] = result.digest
        print(_json.dumps(document, indent=2))
    else:
        for key, value in result.summary().items():
            print(f"{key:>16}: {value}")
        for problem in result.problems:
            verdict = ("n/a" if problem.validation is None
                       else "valid" if problem.validation.ok
                       else "INVALID")
            print(f"  {problem.name}: {problem.parts} part(s), "
                  f"{problem.steps} step(s) -> plan cost {problem.cost} "
                  f"({problem.expanded} expanded) [{verdict}]")
            if problem.validation and not problem.validation.ok:
                for line in problem.validation.problems:
                    print(f"    ! {line}")
        print(f"digest {result.digest}")
    if args.out:
        written = result.write_to(args.out)
        print(f"wrote {len(written)} files under {args.out}")
    if tracer is not None:
        print("\n=== phases ===")
        for name, seconds in tracer.trace().phase_seconds().items():
            print(f"{name:>12}: {seconds * 1e3:9.2f}ms")
    if not result.all_valid:
        return 1
    return 0


def _cmd_serve(args) -> int:
    """Run the concurrent configuration service until SIGTERM/SIGINT."""
    import json as _json
    import signal
    import threading

    from .codegen import PipelineOptions
    from .service import ConfigurationService, ServiceHTTPServer

    if args.workers > 0:
        return _cmd_serve_sharded(args)
    cache = _resolve_cache(args)
    options = PipelineOptions(
        capacity=args.capacity, namespace=args.namespace,
        jobs=args.jobs,
        cache_dir=str(cache.directory) if cache else None,
        cache_max_bytes=(cache.max_bytes if cache
                         else PipelineOptions().cache_max_bytes))
    service = ConfigurationService(
        options, max_inflight=args.max_inflight,
        policy=args.backpressure, block_deadline=args.block_deadline,
        rate=args.rate, drain_deadline=args.drain_deadline)
    server = ServiceHTTPServer((args.host, args.port), service)
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(f"{server.port}\n")
    print(f"serving on http://{args.host}:{server.port} "
          f"(policy={args.backpressure}, max-inflight={args.max_inflight},"
          f" jobs={args.jobs}, cache={'on' if cache else 'off'})",
          flush=True)

    def _graceful(signum, frame):
        # shutdown() must come from outside serve_forever's thread
        threading.Thread(target=server.drain_and_shutdown,
                         name="drain", daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    report = service.lifecycle.last_drain
    if report is None:  # serve_forever ended without a drain signal
        report = service.drain()
    print(f"drained: completed={report.completed} "
          f"waited={report.waited_seconds:.2f}s "
          f"remaining={report.remaining}", flush=True)
    if args.drain_report_file:
        with open(args.drain_report_file, "w") as handle:
            handle.write(_json.dumps(report.summary()) + "\n")
    snapshot = service.final_metrics or {}
    for name in ("service.requests", "service.responses",
                 "service.pipeline_executions",
                 "service.singleflight.followers", "service.memo_hits"):
        if name in snapshot:
            print(f"{name:>36}: {snapshot[name]}")
    return 0 if report.completed else 1


def _cmd_serve_sharded(args) -> int:
    """Run the sharded tier: N worker processes behind the router."""
    import json as _json
    import signal
    import tempfile
    import threading

    from .codegen import PipelineOptions
    from .service import RouterHTTPServer, RouterService, WorkerProcess

    cache = _resolve_cache(args)
    if cache is None:
        # workers are separate processes; a shared content-addressed
        # store is what lets one shard's artifacts serve another after
        # a re-shard, so the sharded tier always runs with a cache
        from .cache import ArtifactCache, default_cache_dir
        cache = ArtifactCache(default_cache_dir())
    serve_args = [
        "--capacity", str(args.capacity),
        "--namespace", args.namespace,
        "--max-inflight", str(args.max_inflight),
        "--backpressure", args.backpressure,
        "--block-deadline", str(args.block_deadline),
        "--rate", str(args.rate),
        "--drain-deadline", str(args.drain_deadline),
        "--jobs", str(args.jobs),
        "--cache-dir", str(cache.directory),
    ]
    if args.cache_max_bytes is not None:
        serve_args += ["--cache-max-bytes", str(args.cache_max_bytes)]
    options = PipelineOptions(
        capacity=args.capacity, namespace=args.namespace, jobs=args.jobs,
        cache_dir=str(cache.directory))
    workdir = tempfile.mkdtemp(prefix="repro-shards-")
    workers = [WorkerProcess(f"worker{i}", host=args.host,
                             serve_args=serve_args, workdir=workdir)
               for i in range(args.workers)]
    exit_code = 1
    try:
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.wait_ready()
        router = RouterService(workers, options)
        server = RouterHTTPServer((args.host, args.port), router)
        router.start_probes()
        if args.port_file:
            with open(args.port_file, "w") as handle:
                handle.write(f"{server.port}\n")
        print(f"routing on http://{args.host}:{server.port} over "
              f"{len(workers)} worker(s): "
              + ", ".join(f"{w.name}={w.port}" for w in workers)
              + f" (cache={cache.directory})", flush=True)

        def _graceful(signum, frame):
            # shutdown() must come from outside serve_forever's thread
            threading.Thread(
                target=server.drain_and_shutdown,
                args=(args.drain_deadline,), name="drain",
                daemon=True).start()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            server.server_close()
        report = router.lifecycle.last_drain
        if report is None:  # no drain signal: drain the topology now
            topology = router.drain(args.drain_deadline)
        else:
            # _graceful already drained router + workers; rebuild the
            # topology view from the workers' report files
            from .service import TopologyDrainReport
            topology = TopologyDrainReport(
                router=report,
                workers={worker.name: worker.drain(args.drain_deadline)
                         for worker in workers})
        print(f"drained: completed={topology.completed} "
              f"router_remaining={topology.router.remaining}",
              flush=True)
        for name, worker_report in sorted(topology.workers.items()):
            if worker_report is None:
                print(f"  {name}: NO REPORT (crashed or killed)",
                      flush=True)
            else:
                print(f"  {name}: completed={worker_report.completed} "
                      f"waited={worker_report.waited_seconds:.2f}s "
                      f"remaining={worker_report.remaining}", flush=True)
        if args.drain_report_file:
            with open(args.drain_report_file, "w") as handle:
                handle.write(_json.dumps(topology.summary()) + "\n")
        exit_code = 0 if topology.completed else 1
    finally:
        for worker in workers:
            worker.close()
    return exit_code


def _cmd_watch(args) -> int:
    """Watch .sysml files; re-elaborate dirty subtrees on each edit."""
    from .codegen import PipelineOptions
    from .watch import WatchSession

    cache = _resolve_cache(args)
    options = PipelineOptions(
        capacity=args.capacity, namespace=args.namespace, jobs=args.jobs,
        cache_dir=str(cache.directory) if cache else None,
        cache_max_bytes=(cache.max_bytes if cache
                         else PipelineOptions().cache_max_bytes))
    cluster = None
    if args.deploy:
        from .k8s import Cluster
        cluster = Cluster()
    session = WatchSession(args.files, options=options, out_dir=args.out,
                           cluster=cluster, interval=args.interval)

    def report(event) -> None:
        if not event.ok:
            print(f"[{event.iteration}] BROKEN MODEL (keeping previous "
                  f"generation): {event.error}", flush=True)
            return
        what = ", ".join(event.changed_files) or "(initial)"
        print(f"[{event.iteration}] {what}: "
              f"{len(event.regenerated)} regenerated, "
              f"{event.reused} reused "
              f"({event.seconds * 1e3:.1f}ms)", flush=True)
        for artifact in event.regenerated:
            print(f"    ~ {artifact}")
        if event.written:
            print(f"    wrote {len(event.written)} file(s)")
        if event.deployed is not None:
            print(f"    applied {event.deployed['applied']} document(s), "
                  f"{event.deployed['running']} pods running, "
                  f"{event.deployed['restarted_downstream']} downstream "
                  f"restarts")

    if args.once:
        event = session.poll()
        if event is not None:
            report(event)
        return 0 if event is not None and event.ok else 1
    print(f"watching {len(session.paths)} file(s) "
          f"every {args.interval}s (ctrl-c to stop)", flush=True)
    try:
        session.run(max_iterations=args.max_iterations, on_event=report)
    except KeyboardInterrupt:
        print(f"\nstopped after {session.iterations} generation(s)")
    return 0


def _cmd_conformance(args) -> int:
    """Differential conformance trials over the seeded corpus."""
    from .testkit import (CorpusConfig, oracle_names, run_conformance)
    if args.list_oracles:
        from .testkit import ORACLES
        for name, oracle in ORACLES.items():
            kind = "source-level" if oracle.source_level else "pipeline"
            kind += ", opt-in" if oracle.opt_in else ""
            print(f"{name:>12}  [{kind}]  {oracle.description}")
        return 0
    oracles = args.oracles.split(",") if args.oracles else None
    if oracles:
        known = set(oracle_names(include_opt_in=True))
        unknown = [name for name in oracles if name not in known]
        if unknown:
            print(f"unknown oracle(s): {', '.join(unknown)} "
                  f"(known: {', '.join(oracle_names(include_opt_in=True))})",
                  file=sys.stderr)
            return 2
    config = CorpusConfig(hostile=args.hostile)
    report = run_conformance(
        args.seeds, base_seed=args.base_seed, oracles=oracles,
        config=config, jobs=args.jobs, shrink=not args.no_shrink,
        crash_dir=args.crash_dir, chaos=args.chaos)
    for name, stats in report.oracle_stats().items():
        print(f"{name:>12}: {stats['runs']} runs, "
              f"{stats['failures']} failures, "
              f"{stats['total_seconds']:.2f}s total")
    print(f"{report.failure_count} failure(s) over {len(report.trials)} "
          f"seeds [{args.base_seed}..{args.base_seed + args.seeds - 1}]"
          f"{' (hostile)' if args.hostile else ''}"
          f"{' (chaos)' if args.chaos else ''}")
    for reproducer in report.reproducers:
        where = reproducer.path or f"({reproducer.line_count} lines)"
        print(f"  reproducer [{reproducer.oracle} seed={reproducer.seed}]"
              f": {where}")
    print(f"digest: {report.digest}")
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote report JSON to {args.report}")
    return 0 if report.ok else 1


def _cmd_deploy(args) -> int:
    from .icelab import run_icelab
    result = run_icelab(capacity=args.capacity,
                        smoke_steps=args.steps)
    smoke = result.smoke
    print(f"pods: {smoke.pods_running} running, {smoke.pods_failed} failed,"
          f" {smoke.pods_pending} pending")
    print(f"variables flowing: {smoke.variables_flowing}"
          f"/{smoke.variables_total}")
    print(f"machines with data: {smoke.machines_with_data}"
          f"/{smoke.machines_total}")
    print(f"services invoked: {smoke.services_invoked} "
          f"(failed: {smoke.services_failed})")
    print(f"data points stored: {smoke.data_points_stored}")
    from .som import KpiMonitor
    monitor = KpiMonitor(result.world.store, result.topology)
    print()
    print(monitor.line_kpi().render())
    print(f"RESULT: {'OK' if smoke.all_ok else 'FAILED'}")
    result.shutdown()
    return 0 if smoke.all_ok else 1


def _cmd_table1(args) -> int:
    from .codegen import PipelineOptions, generate_configuration
    from .icelab import icelab_model
    from .pipeline import build_table1_report
    model = icelab_model()
    generation = generate_configuration(
        model, options=PipelineOptions(capacity=args.capacity))
    report = build_table1_report(model, generation.topology, generation)
    print(report.render())
    return 0


def _cmd_figures(args) -> int:
    from .codegen import generate_configuration
    from .diagrams import (connections_ascii, connections_dot,
                           measure_connections, overview_ascii,
                           overview_dot)
    from .icelab import icelab_model
    model = icelab_model()
    generation = generate_configuration(model)
    print("=== Figure 1 (methodology overview) ===")
    print(overview_ascii(generation) if not args.dot
          else overview_dot(generation))
    figure = measure_connections(model, "emco", "emcoDriverInstance")
    print("=== Figure 2 (machine-driver connections, EMCO) ===")
    print(connections_ascii(figure) if not args.dot
          else connections_dot(figure))
    return 0


def _cmd_convert(args) -> int:
    from .sysml.files import convert_model_file
    written = convert_model_file(args.source, args.destination)
    print(f"wrote {written}")
    return 0


def _cmd_handbook(args) -> int:
    from .codegen import (PipelineOptions, generate_configuration,
                          generate_handbook)
    from .icelab import icelab_model
    result = generate_configuration(
        icelab_model(), options=PipelineOptions(namespace="icelab"))
    text = generate_handbook(result, title="ICE Laboratory handbook")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_verify(args) -> int:
    from .icelab import run_icelab
    from .pipeline import verify_conformance
    result = run_icelab(smoke_steps=args.steps)
    report = verify_conformance(result)
    print(report.render())
    result.shutdown()
    return 0 if report.ok else 1


def _cmd_compare(args) -> int:
    from .baseline import compare_methodologies
    from .machines.specs import ICE_LAB_SPECS
    print(compare_methodologies(list(ICE_LAB_SPECS)).render())
    return 0


def _cmd_cache(args) -> int:
    from pathlib import Path

    from .cache import ArtifactCache, default_cache_dir
    directory = Path(args.cache_dir or default_cache_dir()).expanduser()
    if not directory.is_dir():
        # inspecting or clearing must not create the directory as a
        # side effect, and a missing cache is not an error
        print(f"no cache at {directory}")
        return 0
    cache = (ArtifactCache(directory, args.cache_max_bytes)
             if args.cache_max_bytes is not None
             else ArtifactCache(directory))
    if args.action == "clear":
        removed = cache.clear()
        if removed:
            print(f"removed {removed} artifacts from {cache.directory}")
        else:
            print(f"no cache at {cache.directory} (nothing to remove)")
        return 0
    for key, value in cache.stats().items():
        print(f"{key:>12}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-factory",
        description="SysML v2 smart-factory configuration (DATE 2025 "
                    "reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_model = subparsers.add_parser("model", help="emit the ICE-lab model")
    p_model.add_argument("--out", help="write to file instead of stdout")
    p_model.set_defaults(func=_cmd_model)

    p_validate = subparsers.add_parser("validate",
                                       help="validate a model file")
    p_validate.add_argument("file", nargs="?",
                            help=".sysml file (default: built-in ICE lab)")
    p_validate.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON report (for health checks and CI)")
    p_validate.set_defaults(func=_cmd_validate)

    p_generate = subparsers.add_parser("generate",
                                       help="run the generation pipeline")
    p_generate.add_argument("--capacity", type=int, default=120,
                            help="max points per OPC UA client")
    p_generate.add_argument("--namespace", default="icelab")
    p_generate.add_argument("--out", help="directory for generated files")
    p_generate.add_argument(
        "--trace", nargs="?", const="-", default=None, metavar="FILE",
        help="record pipeline telemetry; prints the span tree, or "
             "writes trace JSON to FILE when given")
    _add_perf_arguments(p_generate)
    p_generate.add_argument(
        "--parse-processes", action="store_true",
        help="parse sources on a process pool (CPU-bound fan-out)")
    p_generate.set_defaults(func=_cmd_generate)

    p_trace = subparsers.add_parser(
        "trace", help="run front end + generation with telemetry on")
    p_trace.add_argument("file", nargs="?",
                         help=".sysml file (default: built-in ICE lab)")
    p_trace.add_argument("--capacity", type=int, default=120)
    p_trace.add_argument("--namespace", default="icelab")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the full trace as JSON")
    p_trace.add_argument("--out", help="write the report to a file")
    _add_perf_arguments(p_trace)
    p_trace.add_argument(
        "--parse-processes", action="store_true",
        help="parse sources on a process pool (CPU-bound fan-out)")
    p_trace.set_defaults(func=_cmd_trace)

    p_simulate = subparsers.add_parser(
        "simulate",
        help="run seeded what-if scenarios through the scenario engine")
    p_simulate.add_argument("file", nargs="?",
                            help=".sysml file (default: built-in ICE lab)")
    p_simulate.add_argument("--seed", type=int, default=7,
                            help="scenario seed: fully determines the "
                                 "order book and every perturbation")
    p_simulate.add_argument("--scenarios",
                            default="baseline,rush-order,slowdown",
                            help="comma-separated scenario names; the "
                                 "first is the briefing's baseline")
    p_simulate.add_argument("--policy", choices=("fifo", "edd"),
                            default="fifo",
                            help="dispatch policy at every machine queue")
    p_simulate.add_argument("--base-jobs", type=int, default=None,
                            metavar="N",
                            help="baseline order-book size (default: "
                                 "2 jobs per workcell, min 4)")
    p_simulate.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="scenario fan-out width (output is "
                                 "identical to serial)")
    p_simulate.add_argument("--mode", choices=("thread", "process",
                                               "serial"),
                            default="thread",
                            help="pool flavor for --jobs > 1")
    p_simulate.add_argument("--json", action="store_true",
                            help="emit the briefing JSON on stdout")
    p_simulate.add_argument("--out", metavar="PATH",
                            help="write the briefing JSON to PATH")
    p_simulate.add_argument("--trace", action="store_true",
                            help="print phase timings (wall clock — "
                                 "not part of the deterministic output)")
    p_simulate.set_defaults(func=_cmd_simulate)

    p_plan = subparsers.add_parser(
        "plan",
        help="emit a PDDL operations-planning domain/problems and "
             "solve them with the deterministic planner")
    p_plan.add_argument("file", nargs="?",
                        help=".sysml file (default: built-in ICE lab)")
    p_plan.add_argument("--seed", type=int, default=7,
                        help="workload seed: fully determines every "
                             "order book (and hence every problem)")
    p_plan.add_argument("--problems", type=int, default=1, metavar="N",
                        help="number of problem files to derive "
                             "(each gets its own seeded workload)")
    p_plan.add_argument("--orders", type=int, default=None, metavar="N",
                        help="orders per problem (default: the "
                             "workload generator's sizing rule)")
    p_plan.add_argument("--strategy", choices=("greedy", "uniform"),
                        default="greedy",
                        help="search strategy: heuristic greedy "
                             "(default) or cost-optimal uniform-cost")
    p_plan.add_argument("--planner-seed", type=int, default=None,
                        metavar="N",
                        help="tie-break seed for the search (default: "
                             "the workload seed); emission is "
                             "byte-identical across planner seeds")
    p_plan.add_argument("--no-validate", action="store_true",
                        help="skip replaying plans on the machine "
                             "behavioural simulators")
    p_plan.add_argument("--mode", choices=("thread", "process", "serial"),
                        default="thread",
                        help="pool flavor for --jobs > 1")
    p_plan.add_argument("--json", action="store_true",
                        help="emit the planning summary as JSON")
    p_plan.add_argument("--out", metavar="DIR",
                        help="write domain.pddl plus per-problem "
                             ".pddl/.plan files under DIR")
    p_plan.add_argument("--trace", action="store_true",
                        help="print phase timings (wall clock — "
                             "not part of the deterministic output)")
    _add_perf_arguments(p_plan)
    p_plan.set_defaults(func=_cmd_plan)

    p_serve = subparsers.add_parser(
        "serve", help="run the concurrent configuration service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8737,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--port-file", metavar="PATH",
                         help="write the bound port to PATH "
                              "(for scripts using --port 0)")
    p_serve.add_argument("--capacity", type=int, default=120)
    p_serve.add_argument("--namespace", default="factory")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="max requests inside the pipeline at once")
    p_serve.add_argument(
        "--backpressure", choices=("reject", "block", "shed-oldest"),
        default="reject",
        help="policy past --max-inflight: fail fast with a retriable "
             "503, queue with a deadline, or shed the oldest waiter")
    p_serve.add_argument("--block-deadline", type=float, default=10.0,
                         metavar="SECONDS",
                         help="queue wait bound for --backpressure block")
    p_serve.add_argument("--rate", type=float, default=0.0,
                         metavar="RPS",
                         help="per-client token-bucket rate limit "
                              "(0 = off)")
    p_serve.add_argument("--drain-deadline", type=float, default=10.0,
                         metavar="SECONDS",
                         help="graceful-drain bound on SIGTERM/SIGINT")
    p_serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run the sharded tier: N worker processes behind a "
             "consistent-hash router (0 = single-process service)")
    p_serve.add_argument(
        "--drain-report-file", metavar="PATH",
        help="write the final drain report as JSON to PATH "
             "(single node: the DrainReport; --workers N: the "
             "topology report incl. every worker)")
    _add_perf_arguments(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_watch = subparsers.add_parser(
        "watch", help="watch .sysml files, regenerate incrementally")
    p_watch.add_argument("files", nargs="+", metavar="FILE",
                         help=".sysml source files to watch")
    p_watch.add_argument("--capacity", type=int, default=120)
    p_watch.add_argument("--namespace", default="icelab")
    p_watch.add_argument("--out", metavar="DIR",
                         help="write generated files under DIR "
                              "(only changed files are rewritten)")
    p_watch.add_argument("--interval", type=float, default=0.5,
                         metavar="SECONDS", help="poll interval")
    p_watch.add_argument("--once", action="store_true",
                         help="one generation, then exit")
    p_watch.add_argument("--max-iterations", type=int, default=None,
                         metavar="N",
                         help="stop after N generations (default: forever)")
    p_watch.add_argument("--deploy", action="store_true",
                         help="roll regenerated manifests onto a "
                              "simulated cluster after each generation")
    _add_perf_arguments(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_cache = subparsers.add_parser(
        "cache", help="inspect or clear the artifact cache")
    p_cache.add_argument("action", choices=("stats", "clear"))
    p_cache.add_argument("--cache-dir", metavar="PATH",
                         help="cache directory "
                              "(default: $REPRO_CACHE_DIR or "
                              "~/.cache/repro-factory)")
    p_cache.add_argument("--cache-max-bytes", type=int, default=None)
    p_cache.set_defaults(func=_cmd_cache)

    p_conf = subparsers.add_parser(
        "conformance",
        help="run differential conformance trials on a seeded corpus")
    p_conf.add_argument("--seeds", type=int, default=50, metavar="N",
                        help="number of consecutive seeds to try")
    p_conf.add_argument("--base-seed", type=int, default=0,
                        help="first seed of the range")
    p_conf.add_argument(
        "--oracles", default=None, metavar="A,B,...",
        help="comma-separated oracle subset (default: all)")
    p_conf.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="trials run in parallel (report digest is "
                             "identical regardless)")
    p_conf.add_argument("--hostile", action="store_true",
                        help="enable hostile mutations (unicode names, "
                             "quoted identifiers, deep nesting)")
    p_conf.add_argument("--chaos", action="store_true",
                        help="add the chaos oracle: re-run each trial "
                             "under a seeded fault plan (cache "
                             "corruption/IO errors, worker crashes, "
                             "injected 503s) and require byte-identical "
                             "bundles or typed retriable errors")
    p_conf.add_argument("--report", metavar="FILE",
                        help="write the JSON report to FILE")
    p_conf.add_argument("--crash-dir", metavar="DIR",
                        help="write shrunk reproducers under DIR")
    p_conf.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging failures")
    p_conf.add_argument("--list-oracles", action="store_true",
                        help="list the registered oracles and exit")
    p_conf.set_defaults(func=_cmd_conformance)

    p_deploy = subparsers.add_parser("deploy",
                                     help="full simulated deployment")
    p_deploy.add_argument("--capacity", type=int, default=120)
    p_deploy.add_argument("--steps", type=int, default=5,
                          help="simulation steps for the smoke test")
    p_deploy.set_defaults(func=_cmd_deploy)

    p_table1 = subparsers.add_parser("table1",
                                     help="print the reproduced Table I")
    p_table1.add_argument("--capacity", type=int, default=120)
    p_table1.set_defaults(func=_cmd_table1)

    p_figures = subparsers.add_parser("figures",
                                      help="print Figures 1 and 2")
    p_figures.add_argument("--dot", action="store_true",
                           help="emit Graphviz DOT instead of ASCII")
    p_figures.set_defaults(func=_cmd_figures)

    p_convert = subparsers.add_parser(
        "convert", help="convert a model between .sysml and .json")
    p_convert.add_argument("source")
    p_convert.add_argument("destination")
    p_convert.set_defaults(func=_cmd_convert)

    p_handbook = subparsers.add_parser(
        "handbook", help="generate the factory operator handbook")
    p_handbook.add_argument("--out", help="write to file instead of stdout")
    p_handbook.set_defaults(func=_cmd_handbook)

    p_verify = subparsers.add_parser(
        "verify", help="deploy, then check model-vs-deployment conformance")
    p_verify.add_argument("--steps", type=int, default=5)
    p_verify.set_defaults(func=_cmd_verify)

    p_compare = subparsers.add_parser("compare",
                                      help="SysML v1 vs v2 comparison")
    p_compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
