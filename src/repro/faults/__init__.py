"""Process-wide, seed-deterministic fault injection (chaos testing).

See :mod:`repro.faults.plan` for the model: a :class:`FaultPlan` maps
named fault sites to fault kinds (I/O error, payload corruption,
latency, worker crash, transient unavailability) with seeded
per-occurrence decisions, so the same seed and plan yield the same
fault schedule. Instrumented sites live in the artifact cache
(``cache.get`` / ``cache.put``), the parallel executor
(``parallel.worker``), the serving layer (``service.generate`` /
``service.request``) and the deployer (``k8s.apply``).

:mod:`repro.faults.schedule` is the public face of the underlying
seeded-hash contract: :func:`occurrence_fraction` is the raw
``(seed, site, kind, n)`` draw, and the schedule helpers turn it into
finite perturbation schedules — the primitive the scenario engine
(:mod:`repro.sim`) shares with fault injection.
"""

from .plan import (CORRUPT_PREFIX, FaultInjected, FaultPlan, FaultSpec,
                   InjectedCrash, InjectedIOError, InjectedUnavailable,
                   KIND_CORRUPT, KIND_CRASH, KIND_IO, KIND_LATENCY,
                   KIND_UNAVAILABLE, KINDS, active_plan, corrupt_at,
                   corrupt_bytes, fault_point, install_plan,
                   uninstall_plan)
from .schedule import (min_fraction_occurrence, occurrence_fraction,
                       occurrence_schedule, spec_schedule)

__all__ = [
    "CORRUPT_PREFIX", "FaultInjected", "FaultPlan", "FaultSpec",
    "InjectedCrash", "InjectedIOError", "InjectedUnavailable",
    "KIND_CORRUPT", "KIND_CRASH", "KIND_IO", "KIND_LATENCY",
    "KIND_UNAVAILABLE", "KINDS", "active_plan", "corrupt_at",
    "corrupt_bytes", "fault_point", "install_plan",
    "min_fraction_occurrence", "occurrence_fraction",
    "occurrence_schedule", "spec_schedule", "uninstall_plan",
]
