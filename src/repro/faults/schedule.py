"""The seeded-hash occurrence contract, as a public helper.

:class:`~repro.faults.plan.FaultPlan` decides whether occurrence *n* at
a ``(site, kind)`` fires by hashing ``(seed, site, kind, n)`` — a pure
SHA-256 draw, no :mod:`random` state, no wall clock. That contract is
useful beyond fault injection: the scenario engine (:mod:`repro.sim`)
derives *perturbation schedules* — which machine degrades, when a rush
order lands, how long an outage lasts — from the very same draw, so a
simulation seed and a chaos seed speak the same deterministic language.

This module is the single implementation of the hash. The plan's
``_fires`` delegates here, and the simulator builds on the two schedule
helpers instead of re-implementing the token format:

* :func:`occurrence_fraction` — the raw draw: a float in ``[0, 1)``
  that is a pure function of ``(seed, site, kind, occurrence)``;
* :func:`occurrence_schedule` — the occurrence indices (out of a finite
  opportunity count) whose draw lands under a probability;
* :func:`spec_schedule` — the same, driven by a
  :class:`~repro.faults.plan.FaultSpec` inside a
  :class:`~repro.faults.plan.FaultPlan` (honours ``max_injections``).

Changing the token format below silently reshuffles every seeded fault
schedule and every simulation scenario — the pinned-vector regression
test (``tests/faults/test_schedule.py``) exists to make that loud.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .plan import FaultPlan, FaultSpec

#: Separator of the hash token fields. Part of the wire contract:
#: changing it invalidates every pinned schedule.
_SEPARATOR = "\x1f"


def occurrence_fraction(seed: int, site: str, kind: str,
                        occurrence: int) -> float:
    """The deterministic draw for occurrence *n* at ``(site, kind)``.

    A float in ``[0, 1)``: the first 8 bytes of
    ``SHA-256(f"{seed}\\x1f{site}\\x1f{kind}\\x1f{occurrence}")`` scaled
    by ``2**64``. This is *the* hashing contract of
    :class:`~repro.faults.plan.FaultPlan` — the plan fires a spec iff
    the fraction lands under its probability.
    """
    token = (f"{seed}{_SEPARATOR}{site}{_SEPARATOR}{kind}"
             f"{_SEPARATOR}{occurrence}").encode("utf-8")
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def occurrence_schedule(seed: int, site: str, kind: str, *,
                        opportunities: int,
                        probability: float) -> list[int]:
    """Occurrence indices in ``[0, opportunities)`` that fire.

    The finite-horizon view of the contract: out of *opportunities*
    consecutive draws, the (sorted, deterministic) indices whose
    fraction lands under *probability*. An empty list is a legitimate
    schedule — callers that need at least one hit should fall back to
    :func:`min_fraction_occurrence`.
    """
    if opportunities < 0:
        raise ValueError(f"opportunities must be >= 0, got {opportunities}")
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    return [n for n in range(opportunities)
            if occurrence_fraction(seed, site, kind, n) < probability]


def min_fraction_occurrence(seed: int, site: str, kind: str, *,
                            opportunities: int) -> int:
    """The occurrence index with the smallest draw — the deterministic
    "pick one" primitive for schedules that must never be empty."""
    if opportunities < 1:
        raise ValueError(f"opportunities must be >= 1, got {opportunities}")
    return min(range(opportunities),
               key=lambda n: (occurrence_fraction(seed, site, kind, n), n))


def spec_schedule(plan: "FaultPlan", spec: "FaultSpec", *,
                  opportunities: int) -> list[int]:
    """The firing occurrences of *spec* under *plan*, finite horizon.

    Exactly what :meth:`FaultPlan.decide` would fire over
    *opportunities* consecutive calls at the spec's site with only this
    spec registered: the probability threshold plus the
    ``max_injections`` cap. Pure — never touches the plan's live
    occurrence counters.
    """
    fired = occurrence_schedule(
        plan.seed, spec.site, spec.kind,
        opportunities=opportunities, probability=spec.probability)
    if spec.max_injections is not None:
        fired = fired[:spec.max_injections]
    return fired


__all__ = [
    "min_fraction_occurrence", "occurrence_fraction",
    "occurrence_schedule", "spec_schedule",
]
