"""Seed-deterministic fault injection at named sites.

A :class:`FaultPlan` is a pure description of *which* faults to inject
*where*: a seed plus a tuple of :class:`FaultSpec` entries, each naming
a fault site (``cache.get``, ``parallel.worker``, ``service.request``,
``router.dispatch``, ``k8s.apply``, ...), a fault kind and a
probability. Instrumented code
declares its sites by calling :func:`fault_point` (raising kinds:
IO errors, worker crashes, service unavailability, latency) or
:func:`corrupt_at` (payload corruption) — both are no-ops unless a plan
is active, so the hot-path cost without chaos is one attribute read.

**Determinism contract.** Whether the *n*-th opportunity at a spec
fires is a pure function of ``(seed, site, kind, n)`` — a SHA-256 hash,
no :mod:`random` state, no wall clock. The same seed and the same plan
therefore produce the same per-spec fault schedule; combined with
graceful degradation at every site (retry, regenerate, fall back), the
same seed must also produce the same *outcome*: byte-identical
artifacts, or a typed error whose ``retriable`` attribute is ``True``.
Under concurrency the *assignment* of occurrence indices to threads can
vary with scheduling, so the contract is about outcomes, not about
which individual operation faults — the chaos oracle
(:mod:`repro.testkit.oracles`) checks exactly that.

Plans activate two ways:

* :meth:`FaultPlan.activated` — a context manager binding the plan to
  the current thread/context (a :class:`~contextvars.ContextVar`);
  :func:`repro.parallel.map_ordered` forwards the active plan into its
  worker threads/processes so nested sites keep injecting.
* :func:`install_plan` / :func:`uninstall_plan` — a process-global
  fallback for components whose threads the context cannot reach
  (the HTTP server's request handlers).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from ..obs import METRICS
from .schedule import occurrence_fraction

_INJECTED = METRICS.counter("faults.injected")

KIND_IO = "io-error"
KIND_CORRUPT = "corrupt"
KIND_LATENCY = "latency"
KIND_CRASH = "crash"
KIND_UNAVAILABLE = "unavailable"
KINDS = (KIND_IO, KIND_CORRUPT, KIND_LATENCY, KIND_CRASH,
         KIND_UNAVAILABLE)

#: Kinds :func:`fault_point` acts on (``corrupt`` needs a payload, so
#: only :func:`corrupt_at` consumes it).
_POINT_KINDS = (KIND_IO, KIND_LATENCY, KIND_CRASH, KIND_UNAVAILABLE)

#: Prefix stamped onto corrupted payloads: invalid UTF-8, invalid JSON
#: and an invalid pickle opcode, so every cache codec detects it.
CORRUPT_PREFIX = b"\xff\x00repro-fault\xff"


class FaultInjected(Exception):
    """Marker base of every injected failure."""

    #: Stable machine-readable identifier (mirrors the service-error
    #: convention in :mod:`repro.service`).
    code = "injected-fault"
    retriable = True

    def __init__(self, site: str, message: str = ""):
        self.site = site
        super().__init__(message or f"injected fault at {site!r}")


class InjectedIOError(FaultInjected, OSError):
    """An injected I/O failure (disk read/write, apply step)."""

    code = "injected-io-error"

    def __init__(self, site: str):
        FaultInjected.__init__(self, site,
                               f"injected I/O error at {site!r}")


class InjectedCrash(FaultInjected, RuntimeError):
    """An injected worker crash (the unit never ran)."""

    code = "injected-crash"

    def __init__(self, site: str):
        FaultInjected.__init__(self, site,
                               f"injected worker crash at {site!r}")


class InjectedUnavailable(FaultInjected):
    """Injected transient unavailability (HTTP 503 + ``Retry-After``)."""

    code = "injected-unavailable"

    def __init__(self, site: str, retry_after: float = 0.05):
        self.retry_after = retry_after
        FaultInjected.__init__(
            self, site, f"injected unavailability at {site!r} "
                        f"(retry after {retry_after:g}s)")


def corrupt_bytes(data: bytes) -> bytes:
    """Deterministically corrupt *data* (junk prefix + truncation)."""
    return CORRUPT_PREFIX + data[len(data) // 2:]


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: where, what, how often."""

    site: str
    kind: str
    probability: float = 1.0
    #: Stop injecting after this many hits (``None`` = unbounded).
    max_injections: int | None = None
    #: Sleep length for ``latency`` faults.
    latency: float = 0.001
    #: ``Retry-After`` hint carried by ``unavailable`` faults.
    retry_after: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {', '.join(KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")


class FaultPlan:
    """A seeded schedule of faults over named sites.

    Each spec keeps its own occurrence counter; occurrence *n* fires
    iff ``hash(seed, site, kind, n)`` lands under the spec's
    probability — see the module docstring for the exact contract.
    """

    def __init__(self, seed: int = 0,
                 specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()):
        self.seed = seed
        self.specs = tuple(specs)
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._lock = threading.Lock()
        self._occurrences: dict[FaultSpec, int] = {}
        self._injections: dict[FaultSpec, int] = {}

    # -- (de)serialization: worker processes receive plans by pickle ----

    def __getstate__(self) -> dict[str, object]:
        # counters are process-local working state, the schedule is not
        return {"seed": self.seed, "specs": self.specs}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(state["seed"], state["specs"])  # type: ignore[arg-type]

    # -- the decision procedure -----------------------------------------

    def _fires(self, spec: FaultSpec, occurrence: int) -> bool:
        fraction = occurrence_fraction(self.seed, spec.site, spec.kind,
                                       occurrence)
        return fraction < spec.probability

    def decide(self, site: str,
               kinds: tuple[str, ...] | None = None) -> FaultSpec | None:
        """The spec firing at this occurrence of *site*, if any.

        Only specs whose kind is in *kinds* (default: all) take part;
        each participating spec's occurrence counter advances whether
        or not it fires, so skipped opportunities stay deterministic.
        """
        specs = self._by_site.get(site)
        if not specs:
            return None
        chosen: FaultSpec | None = None
        with self._lock:
            for spec in specs:
                if kinds is not None and spec.kind not in kinds:
                    continue
                occurrence = self._occurrences.get(spec, 0)
                self._occurrences[spec] = occurrence + 1
                if spec.max_injections is not None and \
                        self._injections.get(spec, 0) >= spec.max_injections:
                    continue
                if chosen is None and self._fires(spec, occurrence):
                    chosen = spec
                    self._injections[spec] = \
                        self._injections.get(spec, 0) + 1
        if chosen is not None:
            _INJECTED.inc()
            METRICS.counter(f"faults.injected.{chosen.kind}").inc()
        return chosen

    # -- introspection ---------------------------------------------------

    @property
    def injection_count(self) -> int:
        with self._lock:
            return sum(self._injections.values())

    def injections(self) -> dict[str, int]:
        """``{"site:kind": count}`` of everything injected so far."""
        with self._lock:
            return {f"{spec.site}:{spec.kind}": count
                    for spec, count in sorted(
                        self._injections.items(),
                        key=lambda item: (item[0].site, item[0].kind))}

    # -- activation ------------------------------------------------------

    @contextmanager
    def activated(self):
        """Bind this plan to the current thread/context."""
        token = _LOCAL.set(self)
        try:
            yield self
        finally:
            _LOCAL.reset(token)

    # -- parsing ---------------------------------------------------------

    @classmethod
    def from_string(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``site:kind[:probability[:max]]`` comma-separated specs.

        Example: ``cache.get:corrupt:0.2,parallel.worker:crash:0.5:3``.
        """
        specs = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected site:kind[...]")
            site, kind = parts[0], parts[1]
            probability = float(parts[2]) if len(parts) > 2 else 1.0
            max_injections = int(parts[3]) if len(parts) > 3 else None
            specs.append(FaultSpec(site, kind, probability=probability,
                                   max_injections=max_injections))
        return cls(seed=seed, specs=tuple(specs))

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, specs={len(self.specs)})"


# -- ambient plan lookup --------------------------------------------------

_GLOBAL_LOCK = threading.Lock()
_GLOBAL: FaultPlan | None = None
_LOCAL: ContextVar[FaultPlan | None] = ContextVar("repro_fault_plan",
                                                  default=None)


def active_plan() -> FaultPlan | None:
    """The context-local plan, else the process-global one, else None."""
    plan = _LOCAL.get()
    return plan if plan is not None else _GLOBAL


def install_plan(plan: FaultPlan) -> None:
    """Install *plan* process-wide (server threads see it too)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = plan


def uninstall_plan() -> None:
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = None


# -- the two site primitives ----------------------------------------------

def fault_point(site: str) -> None:
    """Declare a raising fault site; no-op without an active plan.

    Raises :class:`InjectedIOError` / :class:`InjectedCrash` /
    :class:`InjectedUnavailable` or sleeps (``latency``) when the
    active plan schedules a fault for this occurrence.
    """
    plan = active_plan()
    if plan is None:
        return
    spec = plan.decide(site, kinds=_POINT_KINDS)
    if spec is None:
        return
    if spec.kind == KIND_LATENCY:
        time.sleep(spec.latency)
    elif spec.kind == KIND_IO:
        raise InjectedIOError(site)
    elif spec.kind == KIND_CRASH:
        raise InjectedCrash(site)
    elif spec.kind == KIND_UNAVAILABLE:
        raise InjectedUnavailable(site, spec.retry_after)


def corrupt_at(site: str, data: bytes) -> bytes:
    """Declare a corruption site: returns *data*, possibly corrupted."""
    plan = active_plan()
    if plan is None:
        return data
    spec = plan.decide(site, kinds=(KIND_CORRUPT,))
    if spec is None:
        return data
    return corrupt_bytes(data)
