"""The ICE Laboratory guiding example: model generator and entry points."""

from .factory import (generate_icelab_configuration, icelab_model,
                      icelab_topology, run_icelab)
from .model_gen import (generate_driver_instance, generate_library,
                        generate_machine_instance, generate_topology_source,
                        icelab_model_text, icelab_sources, load_icelab_model)

__all__ = [
    "generate_driver_instance", "generate_icelab_configuration",
    "generate_library", "generate_machine_instance",
    "generate_topology_source", "icelab_model", "icelab_model_text",
    "icelab_sources", "icelab_topology", "load_icelab_model", "run_icelab",
]
