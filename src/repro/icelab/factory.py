"""Convenience entry points for the ICE Laboratory guiding example."""

from __future__ import annotations

from ..codegen import DEFAULT_CLIENT_CAPACITY, GenerationResult, \
    PipelineOptions, generate_configuration
from ..isa95 import FactoryTopology, extract_topology
from ..machines.specs import ICE_LAB_SPECS
from ..pipeline import EndToEndResult, run_factory
from ..sysml.elements import Model
from .model_gen import load_icelab_model


def icelab_model() -> Model:
    """The full ICE Laboratory SysML v2 model, parsed and resolved."""
    return load_icelab_model()


def icelab_topology(model: Model | None = None) -> FactoryTopology:
    """The extracted ISA-95 topology of the ICE lab."""
    return extract_topology(model if model is not None else icelab_model())


def generate_icelab_configuration(
        *, capacity: int = DEFAULT_CLIENT_CAPACITY,
        namespace: str = "icelab") -> GenerationResult:
    """Run the paper's generation pipeline on the ICE-lab model."""
    return generate_configuration(
        icelab_model(), options=PipelineOptions(capacity=capacity,
                                                namespace=namespace))


def run_icelab(*, capacity: int = DEFAULT_CLIENT_CAPACITY,
               smoke_steps: int = 5, seed: int = 0) -> EndToEndResult:
    """The complete Figure-1 flow on the ICE Laboratory."""
    return run_factory(list(ICE_LAB_SPECS), capacity=capacity,
                       namespace="icelab", smoke_steps=smoke_steps,
                       seed=seed)
