"""Generator of the ICE Laboratory SysML v2 model.

Produces, from the machine catalog, exactly the model structure the
paper's methodology prescribes:

* one library package per machine type (Code 2 + Code 3): the driver
  definition specializing ``MachineDriver``/``GenericDriver`` with its
  Parameters/Variables/Methods parts and Var/Method port definitions,
  and the machine definition specializing ``Machine`` with category
  part defs under ``MachineData``;
* the instantiated ISA-95 topology (Code 4): enterprise -> site -> area
  -> production line -> workcells -> machines, every machine variable
  as an attribute bound to a conjugated driver port, every service as
  an action exposed through a conjugated method port;
* one driver instance per machine (Code 5) with parameter redefinitions
  and driver-side ports, plus ``connect`` statements joining the two
  sides of every data point (Section III-D / Figure 2).

The output is textual SysML v2, so it exercises the full front end on a
factory-scale model.
"""

from __future__ import annotations

from ..isa95.levels import VariableSpec
from ..isa95.library import ISA95_LIBRARY_SOURCE
from ..machines.catalog import MachineSpec
from ..machines.specs import ICE_LAB_SPECS
from ..sysml.elements import Model
from ..sysml.printer import format_name as _n
from ..sysml.resolver import load_model


def _q(*parts: str) -> str:
    """A qualified name as source text, quoting non-identifier parts."""
    return "::".join(_n(part) for part in parts)

_SCALAR = {"Real": "Real", "Double": "Real", "Integer": "Integer",
           "Natural": "Integer", "Boolean": "Boolean", "String": "String"}


def _scalar(data_type: str) -> str:
    return _SCALAR.get(data_type, "Real")


def _category_def_name(category: str) -> str:
    """'Segment01' -> 'Segment01Data'; '' -> 'GeneralData'."""
    cleaned = "".join((part[:1].upper() + part[1:]) if part else ""
                      for part in category.replace("/", "_").split("_"))
    return (cleaned or "General") + "Data"


def lib_package_name(spec: MachineSpec) -> str:
    return f"{spec.type_name}Lib"


def driver_def_name(spec: MachineSpec) -> str:
    return spec.driver.protocol


def _var_port_def(spec: MachineSpec) -> str:
    return f"{spec.type_name}Var"


def _method_port_def(spec: MachineSpec) -> str:
    return f"{spec.type_name}Mthd"


def _categories(spec: MachineSpec) -> dict[str, list[VariableSpec]]:
    categories: dict[str, list[VariableSpec]] = {}
    for variable in spec.variables:
        categories.setdefault(variable.category or "General",
                              []).append(variable)
    return categories


# -- library package (Codes 2 and 3) ------------------------------------------

def generate_library(spec: MachineSpec) -> str:
    """The library package for one machine type."""
    package = lib_package_name(spec)
    driver = driver_def_name(spec)
    base = "GenericDriver" if spec.driver.is_generic else "MachineDriver"
    var_port = _var_port_def(spec)
    method_port = _method_port_def(spec)
    lines: list[str] = []
    lines.append(f"package {_n(package)} {{")
    lines.append("    import ISA95::*;")
    lines.append(f"    doc /* Library for {_doc_text(spec.display_name)} "
                 f"({_doc_text(spec.workcell)}). */")
    # driver definition (Code 2)
    lines.append(f"    part def {_n(driver)} :> {base} {{")
    lines.append(f"        part def {_n(driver + 'Parameters')} :> "
                 f"Driver::DriverParameters {{")
    for name, value in spec.driver.parameters.items():
        scalar = "Integer" if isinstance(value, int) and not \
            isinstance(value, bool) else "String"
        lines.append(f"            attribute {_n(name)} : {scalar};")
    lines.append("        }")
    lines.append(f"        part def {_n(driver + 'Variables')} :> "
                 f"Driver::DriverVariables {{")
    lines.append(f"            port def {_n(var_port)} {{")
    lines.append("                in attribute value : Real;")
    lines.append("                attribute identifier : String;")
    lines.append("            }")
    lines.append("        }")
    lines.append(f"        part def {_n(driver + 'Methods')} :> "
                 f"Driver::DriverMethods {{")
    lines.append(f"            port def {_n(method_port)} {{")
    lines.append("                attribute identifier : String;")
    lines.append("                out action operation {")
    lines.append("                    out done : Boolean;")
    lines.append("                }")
    lines.append("            }")
    lines.append("        }")
    lines.append("    }")
    # machine definition (Code 3) with category part defs
    lines.append(f"    part def {_n(spec.type_name)} :> Machine {{")
    lines.append(f"        part def {_n(spec.type_name + 'Data')} :> "
                 f"Machine::MachineData {{")
    for category in _categories(spec):
        lines.append(
            f"            part def {_n(_category_def_name(category))};")
    lines.append("        }")
    lines.append(f"        part def {_n(spec.type_name + 'Services')} :> "
                 f"Machine::MachineServices;")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- machine instantiation (Code 4) ----------------------------------------------

def generate_machine_instance(spec: MachineSpec, indent: str) -> str:
    package = lib_package_name(spec)
    driver = driver_def_name(spec)
    var_port = _var_port_def(spec)
    method_port = _method_port_def(spec)
    pad = indent
    lines: list[str] = []
    lines.append(f"{pad}part {_n(spec.name)} : "
                 f"{_q(package, spec.type_name)} {{")
    # the reference names the concrete top-level driver instance, so two
    # machines of the same type (the RB-Kairos pair) keep distinct drivers
    lines.append(f"{pad}    ref part {_n(spec.name + 'Driver')} : "
                 f"{_q(package, driver)} = "
                 f"{_n(spec.name + 'DriverInstance')};")
    data_part = f"{spec.name}Data"
    lines.append(f"{pad}    part {_n(data_part)} : "
                 f"{_n(spec.type_name + 'Data')} {{")
    for category, variables in _categories(spec).items():
        category_def = _category_def_name(category)
        lines.append(f"{pad}        part "
                     f"{_n(_category_part_name(category))} : "
                     f"{_n(category_def)} {{")
        for variable in variables:
            scalar = _scalar(variable.data_type)
            port_name = f"{variable.name}_port"
            lines.append(f"{pad}            attribute {_n(variable.name)} : "
                         f"{scalar};")
            lines.append(
                f"{pad}            port {_n(port_name)} : "
                f"~{_q(package, driver, driver + 'Variables', var_port)};")
            lines.append(f"{pad}            bind {_n(port_name)}.value = "
                         f"{_n(variable.name)};")
            lines.append(
                f"{pad}            connect {_n(port_name)} to "
                f"{_n(spec.name + 'DriverInstance')}.driverVariables."
                f"{_n(_category_part_name(category))}."
                f"{_n('pp_' + variable.name)};")
        lines.append(f"{pad}        }}")
    lines.append(f"{pad}    }}")
    lines.append(f"{pad}    part {_n(spec.name + 'Services')} : "
                 f"{_n(spec.type_name + 'Services')} {{")
    for service in spec.services:
        lines.append(f"{pad}        action {_n(service.name)} {{")
        for argument in service.inputs:
            lines.append(f"{pad}            in {_n(argument.name)} : "
                         f"{_scalar(argument.data_type)};")
        for argument in service.outputs:
            lines.append(f"{pad}            out {_n(argument.name)} : "
                         f"{_scalar(argument.data_type)};")
        lines.append(f"{pad}        }}")
        port_name = f"{service.name}_mthd"
        lines.append(
            f"{pad}        port {_n(port_name)} : "
            f"~{_q(package, driver, driver + 'Methods', method_port)};")
        lines.append(
            f"{pad}        connect {_n(port_name)} to "
            f"{_n(spec.name + 'DriverInstance')}.driverMethods."
            f"{_n('pp_' + service.name)};")
    lines.append(f"{pad}    }}")
    lines.append(f"{pad}}}")
    return "\n".join(lines) + "\n"


# -- driver instantiation (Code 5) -------------------------------------------------

def generate_driver_instance(spec: MachineSpec) -> str:
    package = lib_package_name(spec)
    driver = driver_def_name(spec)
    var_port = _var_port_def(spec)
    method_port = _method_port_def(spec)
    lines: list[str] = []
    lines.append(f"part {_n(spec.name + 'DriverInstance')} : "
                 f"{_q(package, driver)} {{")
    lines.append(f"    part driverParameters : "
                 f"{_n(driver + 'Parameters')} {{")
    for name, value in spec.driver.parameters.items():
        lines.append(f"        :>> {_n(name)} = {_literal(value)};")
    lines.append("    }")
    lines.append(f"    part driverVariables : {_n(driver + 'Variables')} {{")
    for category, variables in _categories(spec).items():
        category_def = _category_def_name(category)
        category_type = _q(package, spec.type_name,
                           spec.type_name + "Data", category_def)
        lines.append(
            f"        part {_n(_category_part_name(category))} : "
            f"{category_type} {{")
        for variable in variables:
            scalar = _scalar(variable.data_type)
            lines.append(f"            attribute {_n(variable.name)} : "
                         f"{scalar};")
            lines.append(f"            port {_n('pp_' + variable.name)} : "
                         f"{_n(var_port)};")
            lines.append(f"            bind "
                         f"{_n('pp_' + variable.name)}.value = "
                         f"{_n(variable.name)};")
        lines.append("        }")
    lines.append("    }")
    lines.append(f"    part driverMethods : {_n(driver + 'Methods')} {{")
    for service in spec.services:
        lines.append(f"        port {_n('pp_' + service.name)} : "
                     f"{_n(method_port)};")
        lines.append(f"        action {_n('call_' + service.name)} {{")
        for argument in service.outputs:
            lines.append(f"            out {_n(argument.name)} : "
                         f"{_scalar(argument.data_type)};")
        lines.append(f"            perform "
                     f"{_n('pp_' + service.name)}.operation;")
        lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- the whole factory -----------------------------------------------------------

def generate_topology_source(
        specs: list[MachineSpec], *,
        topology_name: str = "ICETopology",
        enterprise: str = "UniVR", site: str = "Verona",
        area: str = "ICELab", line: str = "ICEProductionLine") -> str:
    """The instantiated ISA-95 hierarchy with all machines (Code 4)."""
    hierarchy = "ISA95::Topology::Enterprise"
    workcells: dict[str, list[MachineSpec]] = {}
    for spec in specs:
        workcells.setdefault(spec.workcell, []).append(spec)
    lines: list[str] = []
    lines.append(f"part {_n(topology_name)} : ISA95::Topology {{")
    lines.append(f"    part {_n(enterprise)} : {hierarchy} {{")
    lines.append(f"        part {_n(site)} : {hierarchy}::Site {{")
    lines.append(f"            part {_n(area)} : "
                 f"{hierarchy}::Site::Area {{")
    lines.append(f"                part {_n(line)} : "
                 f"{hierarchy}::Site::Area::ProductionLine {{")
    for workcell_name in sorted(workcells):
        lines.append(
            f"                    part {_n(workcell_name)} : "
            f"{hierarchy}::Site::Area::ProductionLine::Workcell {{")
        for spec in workcells[workcell_name]:
            lines.append(generate_machine_instance(
                spec, " " * 24).rstrip("\n"))
        lines.append("                    }")
    lines.append("                }")
    lines.append("            }")
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def icelab_sources(specs: list[MachineSpec] | None = None) -> list[str]:
    """All textual sources of the ICE-lab model, in load order."""
    specs = list(specs if specs is not None else ICE_LAB_SPECS)
    sources = [ISA95_LIBRARY_SOURCE]
    seen_types: set[str] = set()
    for spec in specs:
        if spec.type_name not in seen_types:
            sources.append(generate_library(spec))
            seen_types.add(spec.type_name)
    for spec in specs:
        sources.append(generate_driver_instance(spec))
    sources.append(generate_topology_source(specs))
    return sources


def icelab_model_text(specs: list[MachineSpec] | None = None) -> str:
    """The whole ICE-lab model as one textual-notation document."""
    return "\n".join(icelab_sources(specs))


def load_icelab_model(specs: list[MachineSpec] | None = None) -> Model:
    """Generate, parse and resolve the ICE-lab model."""
    return load_model(*icelab_sources(specs))


# -- helpers ------------------------------------------------------------------------

def _ident(category: str) -> str:
    return category.replace("/", "_").replace("-", "_") or "General"


def _category_part_name(category: str) -> str:
    """Instance part name for a category, paper style: 'AxesPositions'
    -> 'axesPositions' (Code 4 uses 'emcoAxesPosition')."""
    ident = _ident(category)
    return ident[0].lower() + ident[1:]


def _doc_text(text: str) -> str:
    """Documentation body text: block comments cannot nest, so a
    ``*/`` inside free text must not terminate the comment early."""
    return str(text).replace("*/", "*\u200b/")


def _literal(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    from ..sysml.printer import _escape_string
    return f"'{_escape_string(str(value))}'"
