"""Seeded scenarios: the baseline plus deterministic perturbations.

A scenario is a named recipe that takes the factory's baseline order
book and perturbs it the way :mod:`repro.faults` perturbs a pipeline
run: every choice — which machine degrades, which workcell goes dark,
how many rush orders land — is drawn from the same
``(seed, site, kind, occurrence)`` hash contract
(:mod:`repro.faults.schedule`), routed through a real
:class:`~repro.faults.plan.FaultPlan` so chaos testing and scenario
simulation speak one deterministic language.

Selection sites (the scenario engine's slice of the fault namespace):

* ``sim.machine.slowdown`` / ``latency``   — which machines degrade;
* ``sim.workcell.outage`` / ``unavailable`` — which workcell goes dark;
* ``sim.demand.rush`` / ``crash``           — how many rush orders land.

Every schedule falls back to :func:`min_fraction_occurrence`, so a
scenario never degenerates into a second baseline just because the
probability draw came up empty at some seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..faults.plan import (KIND_CRASH, KIND_LATENCY, KIND_UNAVAILABLE,
                           FaultPlan, FaultSpec)
from ..faults.schedule import min_fraction_occurrence, spec_schedule
from ..isa95.levels import FactoryTopology
from .engine import FactorySimulation, Outage, Slowdown
from .kernel import SimulationError
from .report import ScenarioReport
from .workload import (Job, ServiceTimeModel, Workload, generate_workload)

SITE_SLOWDOWN = "sim.machine.slowdown"
SITE_OUTAGE = "sim.workcell.outage"
SITE_RUSH = "sim.demand.rush"


def horizon(workload: Workload) -> int:
    """The planning horizon (ticks): twice the latest uncontended
    finish — room for every perturbation window to land inside the
    simulated day."""
    latest = max((job.release + job.work for job in workload.jobs),
                 default=0)
    return max(2 * latest, 1)


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully materialized scenario, ready to simulate."""

    name: str
    description: str
    seed: int
    policy: str
    workload: Workload
    slowdowns: tuple[Slowdown, ...] = ()
    outages: tuple[Outage, ...] = ()
    perturbations: tuple[dict, ...] = ()


#: build(topology, base workload, seed, service times) -> perturbed
#: pieces: (workload, slowdowns, outages, perturbation records).
Builder = Callable[
    [FactoryTopology, Workload, int, ServiceTimeModel],
    tuple[Workload, tuple[Slowdown, ...], tuple[Outage, ...], tuple[dict,
                                                                    ...]]]


@dataclass(frozen=True)
class Scenario:
    """A registered scenario recipe."""

    name: str
    description: str
    build: Builder


def _build_baseline(topology: FactoryTopology, base: Workload, seed: int,
                    times: ServiceTimeModel):
    return base, (), (), ()


def _used_machines(base: Workload) -> list[str]:
    """Machines some route actually visits — perturbing an idle machine
    would make every scenario a second baseline."""
    return sorted({step.machine for job in base.jobs
                   for step in job.steps})


def _pick_machines(seed: int, count: int) -> list[int]:
    """Seeded machine indices to degrade (at least one, at most half)."""
    plan = FaultPlan(seed, (FaultSpec(SITE_SLOWDOWN, KIND_LATENCY,
                                      probability=0.2),))
    fired = spec_schedule(plan, plan.specs[0], opportunities=count)
    if not fired:
        fired = [min_fraction_occurrence(seed, SITE_SLOWDOWN, KIND_LATENCY,
                                         opportunities=count)]
    return fired[:max(1, count // 2)]


def _build_slowdown(topology: FactoryTopology, base: Workload, seed: int,
                    times: ServiceTimeModel):
    machines = _used_machines(base)
    window_end = horizon(base)
    start, end = window_end // 4, 3 * window_end // 4
    slowdowns = tuple(
        Slowdown(machine=machines[index], start=start, end=end,
                 num=2, den=1)
        for index in _pick_machines(seed, len(machines)))
    records = tuple({"type": "slowdown", **slowdown.to_dict()}
                    for slowdown in slowdowns)
    return base, slowdowns, (), records


def _pick_workcell(seed: int, count: int) -> int:
    plan = FaultPlan(seed, (FaultSpec(SITE_OUTAGE, KIND_UNAVAILABLE,
                                      probability=0.15),))
    fired = spec_schedule(plan, plan.specs[0], opportunities=count)
    if fired:
        return fired[0]
    return min_fraction_occurrence(seed, SITE_OUTAGE, KIND_UNAVAILABLE,
                                   opportunities=count)


def _workcell_outages(topology: FactoryTopology, base: Workload,
                      seed: int, end: int | None,
                      start: int) -> tuple[tuple[Outage, ...], str]:
    used = set(_used_machines(base))
    workcells = [workcell for workcell in topology.workcells
                 if any(machine.name in used
                        for machine in workcell.machines)]
    if not workcells:
        raise SimulationError("no workcell of the topology appears in "
                              "the workload")
    workcell = workcells[_pick_workcell(seed, len(workcells))]
    outages = tuple(Outage(machine=machine.name, start=start, end=end)
                    for machine in workcell.machines
                    if machine.name in base.machines)
    return outages, workcell.name


def _build_outage(topology: FactoryTopology, base: Workload, seed: int,
                  times: ServiceTimeModel):
    window_end = horizon(base)
    start, end = window_end // 4, window_end // 2
    outages, workcell = _workcell_outages(topology, base, seed, end, start)
    records = tuple({"type": "outage", "workcell": workcell,
                     **outage.to_dict()} for outage in outages)
    return base, (), outages, records


def _build_blackout(topology: FactoryTopology, base: Workload, seed: int,
                    times: ServiceTimeModel):
    """A workcell that never comes back — jobs routed through it are
    reported stranded, not silently dropped."""
    start = horizon(base) // 4
    outages, workcell = _workcell_outages(topology, base, seed, None,
                                          start)
    records = tuple({"type": "blackout", "workcell": workcell,
                     **outage.to_dict()} for outage in outages)
    return base, (), outages, records


def _rush_count(seed: int, base_jobs: int) -> int:
    """Seeded rush-order volume in ``[1, ceil(base/2)]``."""
    plan = FaultPlan(seed, (FaultSpec(SITE_RUSH, KIND_CRASH,
                                      probability=0.4),))
    fired = spec_schedule(plan, plan.specs[0],
                          opportunities=max(base_jobs, 1))
    ceiling = max(1, -(-base_jobs // 2))
    return min(max(1, len(fired)), ceiling)


def _build_rush(topology: FactoryTopology, base: Workload, seed: int,
                times: ServiceTimeModel):
    from .kernel import TICKS_PER_UNIT
    window_end = horizon(base)
    count = _rush_count(seed, len(base))
    rush = generate_workload(
        topology, seed=seed, jobs=count, times=times,
        name_prefix="rush", stream="rush",
        release_offset=window_end // 4,
        release_window_units=(window_end // 4) / TICKS_PER_UNIT,
        slack_percent=20)
    # rush orders carry double lateness weight: missing one hurts more
    extra = [replace(job, weight=2) for job in rush.jobs]
    records = tuple({"type": "rush-order", "job": job.name,
                     "release": job.release, "due": job.due,
                     "steps": len(job.steps)} for job in extra)
    return base.extended(extra), (), (), records


#: The scenario registry (open: tests register their own).
SCENARIOS: dict[str, Scenario] = {
    "baseline": Scenario(
        "baseline", "the order book as generated, no perturbations",
        _build_baseline),
    "rush-order": Scenario(
        "rush-order", "a seeded burst of tight-deadline orders lands "
                      "mid-horizon", _build_rush),
    "slowdown": Scenario(
        "slowdown", "seeded machines run at half speed through the "
                    "middle of the horizon", _build_slowdown),
    "outage": Scenario(
        "outage", "a seeded workcell goes dark for a quarter of the "
                  "horizon", _build_outage),
    "blackout": Scenario(
        "blackout", "a seeded workcell never comes back (strands its "
                    "jobs)", _build_blackout),
}

#: The committed-golden trio: baseline first (the briefing's reference).
CANONICAL_SCENARIOS = ("baseline", "rush-order", "slowdown")


def build_scenario(name: str, topology: FactoryTopology, *, seed: int,
                   policy: str = "fifo",
                   times: ServiceTimeModel | None = None,
                   base: Workload | None = None,
                   jobs: int | None = None) -> ScenarioSpec:
    """Materialize one registered scenario for *topology* at *seed*."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; known: "
                       f"{', '.join(sorted(SCENARIOS))}") from None
    times = times or ServiceTimeModel(topology)
    if base is None:
        base = generate_workload(topology, seed=seed, jobs=jobs,
                                 times=times)
    workload, slowdowns, outages, records = scenario.build(
        topology, base, seed, times)
    return ScenarioSpec(name=scenario.name,
                        description=scenario.description, seed=seed,
                        policy=policy, workload=workload,
                        slowdowns=slowdowns, outages=outages,
                        perturbations=records)


def run_scenario(spec: ScenarioSpec, *,
                 trace_events: bool = False) -> ScenarioReport:
    """Simulate one materialized scenario into its report."""
    simulation = FactorySimulation(
        spec.workload, policy=spec.policy, slowdowns=spec.slowdowns,
        outages=spec.outages, trace_events=trace_events)
    outcome = simulation.run()
    return ScenarioReport.from_outcome(
        outcome, scenario=spec.name, description=spec.description,
        seed=spec.seed, perturbations=[dict(record)
                                       for record in spec.perturbations])
