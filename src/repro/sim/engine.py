"""The factory simulation: jobs flowing through machine queues.

Built directly on the kernel's total event order. Machines execute one
service at a time (the SOM constraint); each waiting step sits in its
machine's queue until the machine is idle *and* up, at which point the
scenario's dispatch policy picks the next job. Perturbations are
interpreted here:

* :class:`Slowdown` — within the window, services started on the
  machine stretch by ``num/den`` (integer arithmetic, applied at start
  time — a service keeps the speed it started with);
* :class:`Outage` — within the window the machine starts nothing new;
  a service already in progress finishes (machines complete their
  cycle before powering down). ``end=None`` models a permanent outage,
  which is how jobs end up **stranded** — reported, never silently
  dropped.

Event priorities encode the tie-break semantics at equal ticks:
state changes (outage/slowdown boundaries) apply first, then step
completions free machines, then new releases arrive — so a job
released exactly when a machine frees up queues behind the completed
step's successor, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .kernel import SimulationError, Simulator, scale_ticks
from .policies import PolicyKey, policy_key
from .workload import Job, Workload

#: Event priorities (lower runs first at the same tick).
PRIO_CONTROL = 0   # outage / slowdown window boundaries
PRIO_END = 1       # step completions (free the machine)
PRIO_RELEASE = 2   # job releases


@dataclass(frozen=True)
class Slowdown:
    """Machine degradation: services started in ``[start, end)`` take
    ``num/den`` times as long."""

    machine: str
    start: int
    end: int
    num: int = 2
    den: int = 1

    def to_dict(self) -> dict[str, object]:
        return {"machine": self.machine, "start": self.start,
                "end": self.end, "factor": f"{self.num}/{self.den}"}


@dataclass(frozen=True)
class Outage:
    """Machine unavailability window; ``end=None`` is permanent."""

    machine: str
    start: int
    end: int | None

    def to_dict(self) -> dict[str, object]:
        return {"machine": self.machine, "start": self.start,
                "end": self.end}


@dataclass
class QueuedJob:
    """One job waiting in one machine's queue."""

    job: Job
    step_index: int
    arrived: int  # tick the job joined *this* queue


@dataclass
class ScheduleEntry:
    """One executed step, for the report's Gantt view."""

    job: str
    step_index: int
    machine: str
    service: str
    start: int
    end: int

    def to_dict(self) -> dict[str, object]:
        return {"job": self.job, "step": self.step_index,
                "machine": self.machine, "service": self.service,
                "start": self.start, "end": self.end}


@dataclass
class _MachineState:
    name: str
    up: bool = True
    busy: bool = False
    slow_num: int = 1
    slow_den: int = 1
    queue: list[QueuedJob] = field(default_factory=list)
    busy_ticks: int = 0
    steps_done: int = 0


@dataclass
class _JobState:
    job: Job
    next_step: int = 0
    completed: int | None = None


@dataclass
class SimulationOutcome:
    """Raw engine results (the report layer shapes these for humans)."""

    workload: Workload
    policy: str
    schedule: list[ScheduleEntry]
    completions: dict[str, int | None]
    busy_ticks: dict[str, int]
    steps_done: dict[str, int]
    events: int
    makespan: int
    event_log: list[tuple[int, int, int, str]] | None = None

    @property
    def stranded(self) -> list[str]:
        return sorted(name for name, completed in self.completions.items()
                      if completed is None)


def _check_windows(name: str, windows: list[tuple[int, int | None]]) -> None:
    """Overlapping perturbation windows on one machine are ambiguous
    (which factor applies?) — reject them instead of guessing."""
    ordered = sorted(windows,
                     key=lambda w: (w[0], w[1] if w[1] is not None else -1))
    for (_, first_end), (second_start, _) in zip(ordered, ordered[1:]):
        if first_end is None or second_start < first_end:
            raise SimulationError(
                f"overlapping perturbation windows on machine {name!r}")


class FactorySimulation:
    """One deterministic run of one workload under perturbations."""

    def __init__(self, workload: Workload, *, policy: str = "fifo",
                 slowdowns: tuple[Slowdown, ...] = (),
                 outages: tuple[Outage, ...] = (),
                 trace_events: bool = False):
        self.workload = workload
        self.policy_name = policy
        self._key: PolicyKey = policy_key(policy)
        self.slowdowns = tuple(slowdowns)
        self.outages = tuple(outages)
        self._sim = Simulator(trace_events=trace_events)
        self._machines = {name: _MachineState(name)
                          for name in workload.machines}
        self._jobs = {job.name: _JobState(job) for job in workload.jobs}
        self._schedule: list[ScheduleEntry] = []
        self._makespan = 0
        by_machine: dict[str, list[tuple[int, int | None]]] = {}
        for slowdown in self.slowdowns:
            if slowdown.machine not in self._machines:
                raise SimulationError(
                    f"slowdown targets unknown machine "
                    f"{slowdown.machine!r}")
            by_machine.setdefault(slowdown.machine, []).append(
                (slowdown.start, slowdown.end))
        for name, windows in sorted(by_machine.items()):
            _check_windows(name, windows)
        outage_windows: dict[str, list[tuple[int, int | None]]] = {}
        for outage in self.outages:
            if outage.machine not in self._machines:
                raise SimulationError(
                    f"outage targets unknown machine {outage.machine!r}")
            outage_windows.setdefault(outage.machine, []).append(
                (outage.start, outage.end))
        for name, windows in sorted(outage_windows.items()):
            _check_windows(name, windows)

    # -- event actions -----------------------------------------------------

    def _release(self, state: _JobState) -> None:
        self._enqueue(state, self._sim.now)

    def _enqueue(self, state: _JobState, arrived: int) -> None:
        step = state.job.steps[state.next_step]
        machine = self._machines[step.machine]
        machine.queue.append(QueuedJob(state.job, state.next_step,
                                       arrived))
        self._dispatch(machine)

    def _dispatch(self, machine: _MachineState) -> None:
        if machine.busy or not machine.up or not machine.queue:
            return
        chosen = min(range(len(machine.queue)),
                     key=lambda index: self._key(machine.queue[index]))
        queued = machine.queue.pop(chosen)
        state = self._jobs[queued.job.name]
        step = queued.job.steps[queued.step_index]
        duration = scale_ticks(step.duration, machine.slow_num,
                               machine.slow_den)
        start = self._sim.now
        end = start + duration
        machine.busy = True
        entry = ScheduleEntry(job=queued.job.name,
                              step_index=queued.step_index,
                              machine=machine.name, service=step.service,
                              start=start, end=end)
        self._schedule.append(entry)
        self._sim.schedule(duration,
                           lambda: self._end_step(machine, state, entry),
                           priority=PRIO_END,
                           label=f"end:{machine.name}:{queued.job.name}")

    def _end_step(self, machine: _MachineState, state: _JobState,
                  entry: ScheduleEntry) -> None:
        machine.busy = False
        machine.busy_ticks += entry.end - entry.start
        machine.steps_done += 1
        self._makespan = max(self._makespan, entry.end)
        state.next_step += 1
        if state.next_step >= len(state.job.steps):
            state.completed = self._sim.now
        else:
            self._enqueue(state, self._sim.now)
        self._dispatch(machine)

    def _set_speed(self, machine: _MachineState, num: int,
                   den: int) -> None:
        machine.slow_num = num
        machine.slow_den = den

    def _set_up(self, machine: _MachineState, up: bool) -> None:
        machine.up = up
        if up:
            self._dispatch(machine)

    # -- the run -----------------------------------------------------------

    def run(self) -> SimulationOutcome:
        controls = 0
        for slowdown in self.slowdowns:
            machine = self._machines[slowdown.machine]
            self._sim.schedule_at(
                slowdown.start,
                lambda m=machine, s=slowdown: self._set_speed(m, s.num,
                                                              s.den),
                priority=PRIO_CONTROL,
                label=f"slowdown:{slowdown.machine}")
            self._sim.schedule_at(
                slowdown.end, lambda m=machine: self._set_speed(m, 1, 1),
                priority=PRIO_CONTROL,
                label=f"restore:{slowdown.machine}")
            controls += 2
        for outage in self.outages:
            machine = self._machines[outage.machine]
            self._sim.schedule_at(
                outage.start, lambda m=machine: self._set_up(m, False),
                priority=PRIO_CONTROL, label=f"down:{outage.machine}")
            controls += 1
            if outage.end is not None:
                self._sim.schedule_at(
                    outage.end, lambda m=machine: self._set_up(m, True),
                    priority=PRIO_CONTROL, label=f"up:{outage.machine}")
                controls += 1
        for job in self.workload.jobs:
            state = self._jobs[job.name]
            self._sim.schedule_at(job.release,
                                  lambda s=state: self._release(s),
                                  priority=PRIO_RELEASE,
                                  label=f"release:{job.name}")
        # every event is accounted for: releases + one end per executed
        # step + control boundaries; anything past that bound is a bug
        total_steps = sum(len(job.steps) for job in self.workload.jobs)
        bound = len(self.workload.jobs) + total_steps + controls + 8
        events = self._sim.run(max_events=bound)
        return SimulationOutcome(
            workload=self.workload,
            policy=self.policy_name,
            schedule=self._schedule,
            completions={name: state.completed
                         for name, state in sorted(self._jobs.items())},
            busy_ticks={name: machine.busy_ticks
                        for name, machine in sorted(
                            self._machines.items())},
            steps_done={name: machine.steps_done
                        for name, machine in sorted(
                            self._machines.items())},
            events=events,
            makespan=self._makespan,
            event_log=self._sim.event_log,
        )
