"""The discrete-event kernel: a totally ordered event queue and clock.

Everything above this module (machines, jobs, scenarios) is policy;
the kernel is the one mechanism: events execute in a **total order**
``(time, priority, ordinal)`` where the ordinal is the insertion
sequence number. There is no wall clock, no :mod:`random`, and no
iteration over unordered containers — two runs over the same schedule
of events are *identical*, not merely equivalent, which is what lets
:mod:`repro.sim` promise byte-identical reports for a seed.

Time is integer **ticks** (:data:`TICKS_PER_UNIT` per model time unit).
Integer time makes every comparison exact: no accumulated float error
can reorder events between platforms, and scaling a duration by a
slowdown factor is integer arithmetic (``ceil(d * num / den)``). The
reporting layer converts ticks back to units only at render time.
"""

from __future__ import annotations

import heapq
from typing import Callable

#: Granularity of the integer clock: 100 ticks = 1.0 model time units,
#: so two-decimal durations (the service-time model's resolution) are
#: exact.
TICKS_PER_UNIT = 100


class SimulationError(RuntimeError):
    """The simulation reached an inconsistent state."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


def ticks(units: float) -> int:
    """Model time units -> integer ticks (round-half-up at tick
    resolution, so ``ticks(0.015)`` is stable across platforms)."""
    scaled = round(units * TICKS_PER_UNIT)
    return int(scaled)


def units(tick_count: int) -> float:
    """Integer ticks -> model time units (for rendering only)."""
    return tick_count / TICKS_PER_UNIT


def scale_ticks(duration: int, numerator: int, denominator: int) -> int:
    """``ceil(duration * numerator / denominator)`` in exact integer
    arithmetic — how slowdown factors stretch service times."""
    if duration < 0:
        raise ValueError(f"duration must be >= 0, got {duration}")
    if numerator < 1 or denominator < 1:
        raise ValueError("scale factor must be positive")
    return -(-duration * numerator // denominator)


class Event:
    """One scheduled action; ordered by ``(time, priority, ordinal)``."""

    __slots__ = ("time", "priority", "ordinal", "action", "label")

    def __init__(self, time: int, priority: int, ordinal: int,
                 action: Callable[[], None], label: str):
        self.time = time
        self.priority = priority
        self.ordinal = ordinal
        self.action = action
        self.label = label

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.time, self.priority, self.ordinal)

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:
        return (f"Event(t={self.time}, prio={self.priority}, "
                f"#{self.ordinal}, {self.label!r})")


class Simulator:
    """The event loop: schedule actions, run them in total order.

    *trace_events* keeps a log of ``(time, priority, ordinal, label)``
    tuples for every executed event — the property-test hook for the
    monotonicity invariant (and a debugging aid); off by default so
    large runs allocate nothing per event beyond the heap entry.
    """

    def __init__(self, *, trace_events: bool = False):
        self.now = 0
        self._heap: list[Event] = []
        self._ordinal = 0
        self.processed = 0
        self.event_log: list[tuple[int, int, int, str]] | None = \
            [] if trace_events else None

    # -- scheduling --------------------------------------------------------

    def schedule_at(self, time: int, action: Callable[[], None], *,
                    priority: int = 0, label: str = "") -> Event:
        """Schedule *action* at absolute tick *time*."""
        if time < self.now:
            raise SchedulingInPastError(
                f"cannot schedule {label or 'event'!r} at t={time} "
                f"(now t={self.now})")
        event = Event(time, priority, self._ordinal, action, label)
        self._ordinal += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay: int, action: Callable[[], None], *,
                 priority: int = 0, label: str = "") -> Event:
        """Schedule *action* after *delay* ticks."""
        if delay < 0:
            raise SchedulingInPastError(
                f"negative delay {delay} for {label or 'event'!r}")
        return self.schedule_at(self.now + delay, action,
                                priority=priority, label=label)

    # -- execution ---------------------------------------------------------

    def run(self, *, until: int | None = None,
            max_events: int | None = None) -> int:
        """Drain the queue in total order; returns events processed.

        *until* stops the clock after every event at that tick has run
        (events beyond it stay queued); *max_events* bounds the run —
        exceeding it raises (a runaway model is a bug, not a result).
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            event = heapq.heappop(self._heap)
            if event.time < self.now:  # pragma: no cover - heap invariant
                raise SimulationError(
                    f"event {event!r} travels back in time "
                    f"(now t={self.now})")
            self.now = event.time
            if self.event_log is not None:
                self.event_log.append((event.time, event.priority,
                                       event.ordinal, event.label))
            event.action()
            executed += 1
            self.processed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    f"the model is likely non-terminating")
        return executed

    @property
    def pending(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return (f"Simulator(t={self.now}, pending={self.pending}, "
                f"processed={self.processed})")
