"""``repro.sim`` — a deterministic scenario engine for configured factories.

The pipeline's existing endpoint answers *"is the configuration
valid?"*; this subsystem answers *"how does the configured factory
behave?"* — before anything is deployed. It simulates the generated
configuration as a job shop: machines from the extracted ISA-95
topology execute their modeled services one at a time, jobs route
through workcells in production-line order, and seeded scenarios
perturb the baseline (rush orders, machine slowdowns, workcell
outages) using the :mod:`repro.faults` occurrence-hash contract.

Layering (each module only imports downward):

* :mod:`~repro.sim.kernel` — event queue with a **total** order
  ``(tick, priority, ordinal)``; integer clock; no wall time, no
  unseeded randomness anywhere above it.
* :mod:`~repro.sim.workload` — jobs/routes/service times derived from
  a :class:`~repro.isa95.levels.FactoryTopology`.
* :mod:`~repro.sim.policies` — pluggable dispatch (``fifo``, ``edd``).
* :mod:`~repro.sim.engine` — machines, queues, perturbations.
* :mod:`~repro.sim.scenarios` — seeded scenario recipes + registry.
* :mod:`~repro.sim.report` — :class:`ScenarioReport` and the
  cross-scenario :class:`Briefing` artifact.

**Determinism contract.** For a fixed topology, seed, scenario list
and policy, :func:`simulate_suite` produces byte-identical briefing
JSON — across repeated runs, interpreter restarts, ``--jobs 1`` vs
``--jobs N``, and thread vs process pools. The ``sim`` testkit oracle
(:mod:`repro.testkit.oracles`) enforces exactly this by digest.
"""

from __future__ import annotations

from ..isa95.levels import FactoryTopology
from ..obs import METRICS, span
from ..parallel import map_ordered
from .engine import (FactorySimulation, Outage, ScheduleEntry,
                     SimulationOutcome, Slowdown)
from .kernel import (TICKS_PER_UNIT, Event, SchedulingInPastError,
                     SimulationError, Simulator, scale_ticks, ticks,
                     units)
from .policies import POLICIES, policy_key
from .report import (BRIEFING_SCHEMA, Briefing, JobOutcome,
                     MachineUtilization, ScenarioReport)
from .scenarios import (CANONICAL_SCENARIOS, SCENARIOS, Scenario,
                        ScenarioSpec, build_scenario, horizon,
                        run_scenario)
from .workload import (Job, JobStep, ServiceTimeModel, Workload,
                       WorkloadError, generate_workload,
                       validate_workload)

_SCENARIOS_RUN = METRICS.counter("sim.scenarios")
_EVENTS = METRICS.counter("sim.events")
_JOBS_SIMULATED = METRICS.counter("sim.jobs")


def simulate_suite(topology: FactoryTopology, *, seed: int,
                   names: tuple[str, ...] = CANONICAL_SCENARIOS,
                   policy: str = "fifo",
                   jobs: int = 1, mode: str = "thread",
                   times: ServiceTimeModel | None = None,
                   base_jobs: int | None = None,
                   trace_events: bool = False) -> Briefing:
    """Run a scenario suite and compare everything to the first entry.

    Scenarios are materialized serially (cheap, and the baseline
    workload is shared), then simulated via
    :func:`repro.parallel.map_ordered` — results come back in input
    order whatever the pool, which is half of the determinism story
    (the other half is the kernel's total event order).
    """
    if not names:
        raise ValueError("simulate_suite needs at least one scenario")
    times = times or ServiceTimeModel(topology)
    with span("simulation", seed=seed, scenarios=len(names),
              policy=policy):
        base = generate_workload(topology, seed=seed, jobs=base_jobs,
                                 times=times)
        specs = [build_scenario(name, topology, seed=seed, policy=policy,
                                times=times, base=base)
                 for name in names]
        if trace_events:
            reports = [run_scenario(spec, trace_events=True)
                       for spec in specs]
        else:
            reports = map_ordered(
                run_scenario, specs, jobs=jobs, mode=mode,
                span_label=lambda spec, _: f"scenario:{spec.name}",
                pool_span="sim.pool")
    _SCENARIOS_RUN.inc(len(reports))
    _EVENTS.inc(sum(report.events for report in reports))
    _JOBS_SIMULATED.inc(sum(len(report.jobs) for report in reports))
    return Briefing(seed=seed, policy=policy, reports=reports)


__all__ = [
    "BRIEFING_SCHEMA", "Briefing", "CANONICAL_SCENARIOS", "Event",
    "FactorySimulation", "Job", "JobOutcome", "JobStep",
    "MachineUtilization", "Outage", "POLICIES", "SCENARIOS",
    "Scenario", "ScenarioReport", "ScenarioSpec", "ScheduleEntry",
    "SchedulingInPastError", "ServiceTimeModel", "SimulationError",
    "SimulationOutcome", "Simulator", "Slowdown", "TICKS_PER_UNIT",
    "Workload", "WorkloadError", "build_scenario", "generate_workload",
    "horizon", "policy_key", "run_scenario", "scale_ticks",
    "simulate_suite", "ticks", "units", "validate_workload",
]
