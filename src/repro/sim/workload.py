"""Jobs, routes and service times, derived from the configuration.

This is where the scenario engine plugs into the paper's pipeline
output: a :class:`Workload` is built *from* the extracted ISA-95
topology — machines are the resources, their service inventories are
the vocabulary of job steps, and the workcell/production-line structure
orders routes the way parts actually flow through a line.

Two sources of jobs:

* **Explicit order books** — callers (the production-scheduling
  example, tests) construct :class:`Job` objects directly from known
  recipes;
* **Seeded generation** — :func:`generate_workload` draws routes,
  release times and due dates from the deterministic occurrence-hash
  contract of :mod:`repro.faults.schedule`, so one integer seed plus
  one topology fully determines the workload.

Service durations come from :class:`ServiceTimeModel`: a pure function
of the machine and service *as modeled* (argument arity, machine data
width), so richer services take longer and the same configuration
always costs the same simulated time. All times are integer ticks
(:mod:`repro.sim.kernel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.schedule import occurrence_fraction
from ..fingerprint import WORKLOAD_SALT, fingerprint
from ..isa95.levels import FactoryTopology, MachineInfo, ServiceSpec
from .kernel import TICKS_PER_UNIT


class WorkloadError(ValueError):
    """The workload references machines/services the factory lacks."""


@dataclass(frozen=True)
class JobStep:
    """One service invocation on one machine, with a fixed duration."""

    machine: str
    service: str
    duration: int  # ticks

    def to_dict(self) -> dict[str, object]:
        return {"machine": self.machine, "service": self.service,
                "duration": self.duration}


@dataclass(frozen=True)
class Job:
    """An ordered route of steps with release and due times (ticks)."""

    name: str
    steps: tuple[JobStep, ...]
    release: int = 0
    due: int = 0
    #: Lateness weight (briefing-level aggregation; 1 = plain job).
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.steps:
            raise WorkloadError(f"job {self.name!r} has no steps")
        if self.release < 0:
            raise WorkloadError(f"job {self.name!r} released at negative "
                                f"t={self.release}")
        if any(step.duration < 0 for step in self.steps):
            raise WorkloadError(f"job {self.name!r} has a negative-duration "
                                f"step")

    @property
    def work(self) -> int:
        """Total processing ticks along the route."""
        return sum(step.duration for step in self.steps)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "release": self.release,
                "due": self.due, "weight": self.weight,
                "steps": [step.to_dict() for step in self.steps]}


@dataclass
class Workload:
    """A batch of jobs, canonicalized for input-order independence.

    Jobs are stored sorted by ``(release, name)`` and names must be
    unique — so two callers handing the same *set* of jobs in different
    list orders simulate identically (the ``sim`` conformance oracle
    checks the resulting report digests agree).
    """

    jobs: tuple[Job, ...] = ()
    machines: tuple[str, ...] = field(default=(), repr=False)

    def __init__(self, jobs, *, machines: tuple[str, ...] = ()):
        ordered = sorted(jobs, key=lambda job: (job.release, job.name))
        names = [job.name for job in ordered]
        if len(names) != len(set(names)):
            duplicates = sorted({name for name in names
                                 if names.count(name) > 1})
            raise WorkloadError(f"duplicate job names: {duplicates}")
        self.jobs = tuple(ordered)
        self.machines = tuple(machines) if machines else tuple(
            sorted({step.machine for job in ordered
                    for step in job.steps}))
        missing = sorted({step.machine for job in ordered
                          for step in job.steps} - set(self.machines))
        if missing:
            raise WorkloadError(
                f"jobs reference unknown machines: {missing}")

    def __len__(self) -> int:
        return len(self.jobs)

    def extended(self, extra: list[Job]) -> "Workload":
        """A new workload with *extra* jobs merged in (rush orders)."""
        return Workload(list(self.jobs) + list(extra),
                        machines=self.machines)

    def to_dict(self) -> dict[str, object]:
        return {"machines": list(self.machines),
                "jobs": [job.to_dict() for job in self.jobs]}

    def fingerprint_key(self) -> str:
        """Content hash of the canonicalized job set.

        Because the constructor sorts jobs by ``(release, name)``, two
        equal job *sets* handed over in different input orders share
        one key — the scenario engine and the planning backend both
        lean on this for their "equivalent workload" statements
        (:class:`repro.fingerprint.Fingerprintable`).
        """
        return fingerprint(self.to_dict(), salt=WORKLOAD_SALT)


class ServiceTimeModel:
    """Deterministic service durations from the modeled configuration.

    ``duration = base * (1 + 0.5*inputs + 0.25*outputs) * width`` where
    *width* stretches services of data-rich machines (a machine holding
    many data points models a physically bigger operation: milling vs a
    pick). Base and the resulting durations are in ticks; overrides
    (``machine.service`` -> model time units) pin known-long operations
    exactly, the way the old example's duration map did.
    """

    def __init__(self, topology: FactoryTopology, *,
                 base_units: float = 1.0,
                 overrides: dict[str, float] | None = None):
        self.base_ticks = round(base_units * TICKS_PER_UNIT)
        self.overrides = {name: round(duration * TICKS_PER_UNIT)
                          for name, duration in (overrides or {}).items()}
        self._machines: dict[str, MachineInfo] = {
            machine.name: machine for machine in topology.machines}

    def _width(self, machine: MachineInfo) -> tuple[int, int]:
        """(numerator, denominator) stretch from the machine's data
        width: +10% per 8 data points, capped at 2x."""
        steps = min(len(machine.variables) // 8, 10)
        return 10 + steps, 10

    def duration(self, machine_name: str, service_name: str) -> int:
        """Ticks the service occupies its machine (>= 1)."""
        override = self.overrides.get(f"{machine_name}.{service_name}")
        if override is not None:
            return max(1, override)
        machine = self._machines.get(machine_name)
        if machine is None:
            raise WorkloadError(f"no machine named {machine_name!r}")
        spec = next((s for s in machine.services
                     if s.name == service_name), None)
        arity_quarters = 4  # 1.0 in quarter-units
        if spec is not None:
            arity_quarters += 2 * len(spec.inputs) + len(spec.outputs)
        num, den = self._width(machine)
        # base * arity/4 * num/den, rounded up to a whole tick
        raw = self.base_ticks * arity_quarters * num
        return max(1, -(-raw // (4 * den)))

    def service_names(self, machine_name: str) -> list[str]:
        machine = self._machines.get(machine_name)
        if machine is None:
            raise WorkloadError(f"no machine named {machine_name!r}")
        return [service.name for service in machine.services]


#: Hash sites of the seeded workload generator (see
#: :mod:`repro.faults.schedule` for the contract).
SITE_WORKLOAD = "sim.workload"


def _frac(seed: int, kind: str, n: int) -> float:
    return occurrence_fraction(seed, SITE_WORKLOAD, kind, n)


def _pick(seed: int, kind: str, n: int, count: int) -> int:
    """A deterministic index in ``[0, count)``."""
    return min(int(_frac(seed, kind, n) * count), count - 1)


def generate_workload(topology: FactoryTopology, *, seed: int,
                      jobs: int | None = None,
                      times: ServiceTimeModel | None = None,
                      name_prefix: str = "job",
                      stream: str = "base",
                      release_window_units: float = 10.0,
                      release_offset: int = 0,
                      slack_percent: int = 60) -> Workload:
    """A seeded order book over the factory's own machines and services.

    Routes follow the production line: each job visits a deterministic
    subset of machines *in topology order* (parts flow forward through
    workcells), invoking one modeled service per visit. Release times
    spread over ``release_window_units``; due dates grant each job its
    processing time plus ``slack_percent`` percent slack — tight enough
    that contention shows up as lateness, loose enough that the
    baseline is mostly on time.

    *stream* namespaces the hash draws: rush orders generated at the
    same seed (``stream="rush"``) get genuinely different routes from
    the baseline book instead of repeating its first jobs.
    """
    machines = [machine.name for machine in topology.machines]
    if not machines:
        raise WorkloadError("topology has no machines to simulate")
    times = times or ServiceTimeModel(topology)
    if jobs is None:
        jobs = max(4, 2 * len(topology.workcells))
    release_window = round(release_window_units * TICKS_PER_UNIT)
    built: list[Job] = []
    for index in range(jobs):
        length = 2 + _pick(seed, f"{stream}:route-length", index, 3)
        length = min(length, len(machines))  # 2..4 visits
        visited: list[int] = []
        draw = 0
        while len(visited) < length and draw < 8 * length:
            position = _pick(seed, f"{stream}:route-{index}", draw,
                             len(machines))
            if position not in visited:
                visited.append(position)
            draw += 1
        steps: list[JobStep] = []
        for stop, position in enumerate(sorted(visited)):
            machine_name = machines[position]
            services = times.service_names(machine_name)
            if services:
                service = services[_pick(seed, f"{stream}:service-{index}",
                                         stop, len(services))]
            else:
                service = "process"  # data-only machine: generic handling
            steps.append(JobStep(machine_name, service,
                                 times.duration(machine_name, service)
                                 if services else times.base_ticks))
        release = release_offset + int(
            _frac(seed, f"{stream}:release", index) * release_window)
        work = sum(step.duration for step in steps)
        due = release + work + work * slack_percent // 100
        built.append(Job(name=f"{name_prefix}-{index:03d}",
                         steps=tuple(steps), release=release, due=due))
    return Workload(built, machines=tuple(machines))


def validate_workload(workload: Workload,
                      topology: FactoryTopology) -> list[str]:
    """Problems that would strand jobs: unknown machines/services."""
    known = {machine.name: {service.name for service in machine.services}
             for machine in topology.machines}
    problems: list[str] = []
    for job in workload.jobs:
        for step in job.steps:
            if step.machine not in known:
                problems.append(f"{job.name}: unknown machine "
                                f"{step.machine!r}")
            elif known[step.machine] and step.service != "process" \
                    and step.service not in known[step.machine]:
                problems.append(f"{job.name}: machine {step.machine!r} "
                                f"has no service {step.service!r}")
    return problems
