"""Scenario reports and the multi-scenario briefing artifact.

A :class:`ScenarioReport` scores one simulated scenario by the three
quantities the roadmap names — makespan, per-job lateness, per-machine
utilization — plus completion/stranded counts and the executed
schedule. A :class:`Briefing` compares variant scenarios against the
baseline and renders as both canonical JSON (the machine artifact) and
a text table (the human artifact).

Everything in these objects is integers, strings and *rounded* floats
derived from integers — no wall-clock, no process state — so
``to_json()`` is byte-identical for a given seed across runs,
interpreter restarts and worker pools, and :attr:`ScenarioReport.digest`
is a usable equivalence key (the ``sim`` conformance oracle compares
exactly these digests across execution modes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..fingerprint import SIM_BRIEFING_SALT, SIM_REPORT_SALT, fingerprint
from ..obs import Summarizable
from .engine import ScheduleEntry, SimulationOutcome
from .kernel import units

#: Briefing artifact schema (the JSON's ``schema`` field).
BRIEFING_SCHEMA = "repro/sim-briefing/1"


def _ratio(part: int, whole: int) -> float:
    """A rounded ratio that is a pure function of two ints."""
    return round(part / whole, 6) if whole else 0.0


@dataclass(frozen=True)
class JobOutcome:
    """One job's fate: completion, lateness, flow time (ticks)."""

    name: str
    release: int
    due: int
    completed: int | None
    weight: int = 1

    @property
    def lateness(self) -> int:
        """Positive lateness in ticks (0 when on time or stranded —
        stranded jobs are reported separately, not as infinite
        lateness)."""
        if self.completed is None:
            return 0
        return max(0, self.completed - self.due)

    @property
    def flow(self) -> int:
        return (self.completed - self.release
                if self.completed is not None else 0)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "release": self.release,
                "due": self.due, "completed": self.completed,
                "lateness": self.lateness, "flow": self.flow,
                "weight": self.weight}


@dataclass(frozen=True)
class MachineUtilization:
    """One machine's share of the makespan spent serving."""

    name: str
    busy: int
    steps: int
    makespan: int

    @property
    def utilization(self) -> float:
        return _ratio(self.busy, self.makespan)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "busy": self.busy,
                "steps": self.steps, "utilization": self.utilization}


@dataclass
class ScenarioReport(Summarizable):
    """The scored outcome of one scenario run."""

    scenario: str
    description: str
    seed: int
    policy: str
    makespan: int
    events: int
    jobs: list[JobOutcome]
    machines: list[MachineUtilization]
    schedule: list[ScheduleEntry] = field(default_factory=list, repr=False)
    perturbations: list[dict] = field(default_factory=list)

    # -- headline metrics --------------------------------------------------

    @property
    def completed(self) -> int:
        return sum(1 for job in self.jobs if job.completed is not None)

    @property
    def stranded(self) -> list[str]:
        return [job.name for job in self.jobs if job.completed is None]

    @property
    def total_lateness(self) -> int:
        return sum(job.lateness * job.weight for job in self.jobs)

    @property
    def max_lateness(self) -> int:
        return max((job.lateness for job in self.jobs), default=0)

    @property
    def late_jobs(self) -> int:
        return sum(1 for job in self.jobs if job.lateness > 0)

    @property
    def mean_utilization(self) -> float:
        if not self.machines:
            return 0.0
        return round(sum(m.busy for m in self.machines)
                     / (len(self.machines) * self.makespan), 6) \
            if self.makespan else 0.0

    def summary(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "policy": self.policy,
            "jobs": len(self.jobs),
            "completed": self.completed,
            "stranded": len(self.stranded),
            "events": self.events,
            "makespan": self.makespan,
            "total_lateness": self.total_lateness,
            "max_lateness": self.max_lateness,
            "late_jobs": self.late_jobs,
            "mean_utilization": self.mean_utilization,
        }

    def to_dict(self) -> dict[str, object]:
        return {
            **self.summary(),
            "description": self.description,
            "perturbations": list(self.perturbations),
            "job_outcomes": [job.to_dict() for job in self.jobs],
            "machine_utilization": [machine.to_dict()
                                    for machine in self.machines],
            "schedule": [entry.to_dict() for entry in self.schedule],
        }

    @property
    def digest(self) -> str:
        """Content address of the whole report (timing-free by
        construction — there are no wall-clock fields to exclude)."""
        return fingerprint(self.to_dict(), salt=SIM_REPORT_SALT)

    def render(self) -> str:
        lines = [f"scenario {self.scenario!r} (seed {self.seed}, "
                 f"policy {self.policy}): "
                 f"{self.completed}/{len(self.jobs)} jobs, "
                 f"makespan {units(self.makespan):g}"]
        if self.stranded:
            lines.append(f"  stranded: {', '.join(self.stranded)}")
        for machine in self.machines:
            lines.append(f"  {machine.name:>12}: "
                         f"{machine.utilization:7.1%} busy, "
                         f"{machine.steps} steps")
        return "\n".join(lines)

    @classmethod
    def from_outcome(cls, outcome: SimulationOutcome, *, scenario: str,
                     description: str, seed: int,
                     perturbations: list[dict] | None = None
                     ) -> "ScenarioReport":
        jobs = [JobOutcome(name=job.name, release=job.release,
                           due=job.due,
                           completed=outcome.completions[job.name],
                           weight=job.weight)
                for job in outcome.workload.jobs]
        jobs.sort(key=lambda job: job.name)
        machines = [MachineUtilization(
            name=name, busy=outcome.busy_ticks[name],
            steps=outcome.steps_done[name], makespan=outcome.makespan)
            for name in outcome.workload.machines]
        return cls(scenario=scenario, description=description, seed=seed,
                   policy=outcome.policy, makespan=outcome.makespan,
                   events=outcome.events, jobs=jobs, machines=machines,
                   schedule=list(outcome.schedule),
                   perturbations=list(perturbations or []))


def _delta(variant: int | float, baseline: int | float) -> str:
    """A signed human delta (``+12``, ``-3``, ``±0``)."""
    difference = variant - baseline
    if isinstance(difference, float):
        difference = round(difference, 6)
    if difference == 0:
        return "±0"
    return f"{difference:+g}"


@dataclass
class Briefing(Summarizable):
    """The cross-scenario comparison artifact.

    The first report is the baseline; every other scenario's headline
    metrics carry deltas against it. ``to_json()`` is the committed
    artifact format (golden-tested for the ICE lab), ``render()`` the
    console table.
    """

    seed: int
    policy: str
    reports: list[ScenarioReport]

    def __post_init__(self) -> None:
        if not self.reports:
            raise ValueError("a briefing needs at least one scenario")

    @property
    def baseline(self) -> ScenarioReport:
        return self.reports[0]

    def report(self, scenario: str) -> ScenarioReport:
        for report in self.reports:
            if report.scenario == scenario:
                return report
        raise KeyError(f"no scenario named {scenario!r}")

    def summary(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "policy": self.policy,
            "scenarios": [report.scenario for report in self.reports],
            "baseline": self.baseline.scenario,
        }

    def comparison(self) -> list[dict[str, object]]:
        """Per-scenario headline metrics with deltas vs baseline."""
        base = self.baseline.summary()
        rows = []
        for report in self.reports:
            row = report.summary()
            if report is not self.baseline:
                row["deltas"] = {
                    metric: _delta(row[metric], base[metric])
                    for metric in ("makespan", "total_lateness",
                                   "max_lateness", "late_jobs",
                                   "mean_utilization")}
            rows.append(row)
        return rows

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": BRIEFING_SCHEMA,
            **self.summary(),
            "digest": self.digest,
            "comparison": self.comparison(),
            "reports": [report.to_dict() for report in self.reports],
        }

    @property
    def digest(self) -> str:
        return fingerprint(
            self.seed, self.policy,
            [report.digest for report in self.reports],
            salt=SIM_BRIEFING_SALT)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def render(self) -> str:
        """The console comparison table."""
        headers = ("scenario", "jobs", "makespan", "late", "lateness",
                   "max late", "util", "stranded")
        rows: list[tuple[str, ...]] = []
        base = self.baseline
        for report in self.reports:
            mark = "" if report is base else (
                f" ({_delta(report.makespan, base.makespan)})")
            rows.append((
                report.scenario,
                f"{report.completed}/{len(report.jobs)}",
                f"{units(report.makespan):g}{mark}",
                str(report.late_jobs),
                f"{units(report.total_lateness):g}",
                f"{units(report.max_lateness):g}",
                f"{report.mean_utilization:.1%}",
                str(len(report.stranded)),
            ))
        widths = [max(len(headers[i]), *(len(row[i]) for row in rows))
                  for i in range(len(headers))]
        lines = [f"briefing: seed {self.seed}, policy {self.policy}, "
                 f"baseline {base.scenario!r}"]
        lines.append("  " + "  ".join(
            header.ljust(widths[i]) for i, header in enumerate(headers)))
        for row in rows:
            lines.append("  " + "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)
