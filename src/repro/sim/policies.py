"""Pluggable dispatch policies: who runs next on a freed machine.

A policy is a *key function* over the jobs waiting in one machine's
queue: the waiting job with the smallest key starts next. Keys must be
total and deterministic — every policy ends its key with the job name,
so ties can never fall back to arrival interleaving or hash order.

Two built-ins (the registry is open for more):

* ``fifo`` — first come, first served, by arrival tick at this queue
  (ties: release tick, then name);
* ``edd``  — earliest due date first (ties: release tick, then name),
  the classic lateness-minimizing heuristic for single machines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .engine import QueuedJob

#: key(queued) -> ordering tuple; smallest runs first.
PolicyKey = Callable[["QueuedJob"], tuple]


def fifo_key(queued: "QueuedJob") -> tuple:
    return (queued.arrived, queued.job.release, queued.job.name)


def edd_key(queued: "QueuedJob") -> tuple:
    return (queued.job.due, queued.job.release, queued.job.name)


POLICIES: dict[str, PolicyKey] = {
    "fifo": fifo_key,
    "edd": edd_key,
}


def policy_key(name: str) -> PolicyKey:
    """Look up a registered policy (raises with the known names)."""
    try:
        return POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown dispatch policy {name!r}; "
                       f"known: {', '.join(sorted(POLICIES))}") from None
