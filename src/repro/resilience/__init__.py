"""Retry/backoff policies, deadlines and a circuit breaker.

The serving layer classifies failures as retriable or not
(:mod:`repro.service`); this package is the machinery that acts on
that classification:

* :class:`RetryPolicy` / :func:`retry_call` — exponential backoff with
  seeded deterministic jitter, per-attempt and overall deadlines, and
  ``Retry-After`` hints honoured as a lower bound on the next delay;
* :class:`CircuitBreaker` — consecutive-failure trip with half-open
  probing, so a dead dependency fails fast instead of queueing work;
* everything counted in :data:`repro.obs.METRICS`
  (``resilience.attempts/retries/giveups``, ``breaker.trips/probes``)
  and visible as ``retry:*`` spans in the ambient trace.

Fault injection for exercising all of this lives in :mod:`repro.faults`.
"""

from .breaker import (CircuitBreaker, CircuitOpen, STATE_CLOSED,
                      STATE_HALF_OPEN, STATE_OPEN)
from .retry import DeadlineExceeded, RetryError, RetryPolicy, retry_call

__all__ = [
    "CircuitBreaker", "CircuitOpen", "DeadlineExceeded", "RetryError",
    "RetryPolicy", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN",
    "retry_call",
]
