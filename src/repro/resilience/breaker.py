"""Circuit breaker with half-open probing.

Wraps an unreliable dependency (a remote service, a flaky subsystem)
and fails fast once it keeps failing, instead of queueing doomed work
behind timeouts:

* **closed** — calls flow; ``failure_threshold`` *consecutive*
  failures trip the breaker;
* **open** — calls raise :class:`CircuitOpen` immediately (retriable,
  with a ``retry_after`` hint of the remaining cooldown); after
  ``reset_timeout`` seconds the next caller moves it to half-open;
* **half-open** — up to ``half_open_probes`` trial calls pass through;
  all succeeding closes the breaker, any failure re-opens it and the
  cooldown starts over.

Trips and probes are counted in :data:`repro.obs.METRICS`
(``breaker.trips`` / ``breaker.probes``). The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable

from ..obs import METRICS

_TRIPS = METRICS.counter("breaker.trips")
_PROBES = METRICS.counter("breaker.probes")
_OPEN_REJECTIONS = METRICS.counter("breaker.open_rejections")

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitOpen(Exception):
    """The breaker is open; carries how long until the next probe."""

    retriable = True
    code = "circuit-open"

    def __init__(self, name: str, retry_after: float):
        self.name = name
        self.retry_after = max(0.0, retry_after)
        super().__init__(f"circuit {name!r} is open "
                         f"(retry after {self.retry_after:.3f}s)")


class CircuitBreaker:
    """Thread-safe consecutive-failure breaker (see module docstring)."""

    def __init__(self, name: str = "default", *,
                 failure_threshold: int = 5,
                 reset_timeout: float = 1.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    # -- the three transitions (callers hold self._lock) -----------------

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._failures = 0
        _TRIPS.inc()

    def _close_locked(self) -> None:
        self._state = STATE_CLOSED
        self._failures = 0

    def _half_open_locked(self) -> None:
        self._state = STATE_HALF_OPEN
        self._probes_issued = 0
        self._probe_successes = 0

    # -- call protocol ---------------------------------------------------

    def allow(self) -> None:
        """Gate one call; raises :class:`CircuitOpen` when tripped."""
        with self._lock:
            if self._state == STATE_OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.reset_timeout:
                    _OPEN_REJECTIONS.inc()
                    raise CircuitOpen(self.name,
                                      self.reset_timeout - elapsed)
                self._half_open_locked()
            if self._state == STATE_HALF_OPEN:
                if self._probes_issued >= self.half_open_probes:
                    _OPEN_REJECTIONS.inc()
                    raise CircuitOpen(self.name, self.reset_timeout)
                self._probes_issued += 1
                _PROBES.inc()

    def record_success(self) -> None:
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._close_locked()
            else:
                self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._trip_locked()
                return
            if self._state == STATE_CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip_locked()

    @contextmanager
    def protect(self):
        """``with breaker.protect(): call()`` — gate + auto-record."""
        self.allow()
        try:
            yield
        except Exception:
            self.record_failure()
            raise
        else:
            self.record_success()

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state!r}, "
                f"threshold={self.failure_threshold})")
