"""Retry with exponential backoff, deterministic jitter and deadlines.

:class:`RetryPolicy` is a frozen description of a retry schedule —
attempt count, exponential backoff bounds, jitter fraction and an
optional seed that makes the jitter stream deterministic (the testkit
and the chaos oracle rely on that: same seed, same delays). Deadlines
come in two flavours:

* ``overall_deadline`` — a budget for the whole operation, enforced by
  :func:`retry_call` *before* each sleep: if the next backoff would
  overrun the budget the call gives up immediately with
  :class:`DeadlineExceeded` instead of sleeping past it;
* ``attempt_deadline`` — a per-attempt budget for call sites that can
  bound one attempt themselves (e.g. a socket timeout); query it with
  :meth:`RetryPolicy.attempt_budget`, which also clamps to whatever
  remains of the overall budget.

:func:`retry_call` classifies failures with *retry_on* (an exception
tuple or a predicate; the default retries exceptions whose
``retriable`` attribute is true — the convention shared by
:mod:`repro.service` and :mod:`repro.faults`) and honours a
``retry_after`` hint on the exception (HTTP ``Retry-After``) as a lower
bound on the next delay. Attempts and retries land in the
:data:`repro.obs.METRICS` registry and every backoff is folded into the
ambient trace as a ``retry:<describe>`` span.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..obs import METRICS, record_span

_ATTEMPTS = METRICS.counter("resilience.attempts")
_RETRIES = METRICS.counter("resilience.retries")
_GIVEUPS = METRICS.counter("resilience.giveups")

_T = TypeVar("_T")


class RetryError(Exception):
    """Retries exhausted; chains to the last underlying failure.

    ``retriable`` is ``True``: every attempt failed with a *retriable*
    error (that is the only way in here), so a caller with a fresh
    budget may legitimately try again later.
    """

    retriable = True

    def __init__(self, message: str, *, attempts: int,
                 last: BaseException | None = None):
        self.attempts = attempts
        self.last = last
        super().__init__(message)


class DeadlineExceeded(RetryError):
    """The overall retry budget ran out before the attempts did."""


def _default_classifier(error: BaseException) -> bool:
    return bool(getattr(error, "retriable", False))


@dataclass(frozen=True)
class RetryPolicy:
    """A frozen retry schedule (see module docstring)."""

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: Fraction of each delay randomized: ``delay * (1 ± jitter)``.
    jitter: float = 0.25
    #: Seed for the jitter stream; ``None`` draws from the process RNG.
    seed: int | None = None
    attempt_deadline: float | None = None
    overall_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def rng(self) -> random.Random:
        return random.Random(self.seed) \
            if self.seed is not None else random.Random()

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry *attempt* (1-based count of failures)."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    def attempt_budget(self, elapsed: float = 0.0) -> float | None:
        """Seconds one attempt may take, given *elapsed* so far."""
        budgets = []
        if self.attempt_deadline is not None:
            budgets.append(self.attempt_deadline)
        if self.overall_deadline is not None:
            budgets.append(max(0.0, self.overall_deadline - elapsed))
        return min(budgets) if budgets else None


def retry_call(fn: Callable[[], _T], *,
               policy: RetryPolicy | None = None,
               retry_on: tuple | Callable[[BaseException], bool] | None = None,
               describe: str = "operation",
               on_retry: Callable[[int, BaseException, float], None] | None
               = None,
               sleep: Callable[[float], None] = time.sleep,
               clock: Callable[[], float] = time.monotonic) -> _T:
    """Call *fn* until it succeeds, the policy's attempts run out
    (:class:`RetryError`) or its overall deadline would be overrun
    (:class:`DeadlineExceeded`).

    *retry_on* decides which failures are worth retrying: an exception
    tuple, a predicate, or ``None`` for the ``retriable``-attribute
    convention. Anything else propagates unchanged on the first raise.
    """
    policy = policy or RetryPolicy()
    if retry_on is None:
        classify = _default_classifier
    elif callable(retry_on) and not isinstance(retry_on, tuple):
        classify = retry_on
    else:
        classify = lambda error: isinstance(error, retry_on)  # noqa: E731
    rng = policy.rng()
    started = clock()
    for attempt in range(1, policy.max_attempts + 1):
        _ATTEMPTS.inc()
        try:
            return fn()
        except Exception as error:
            if not classify(error):
                raise
            if attempt >= policy.max_attempts:
                _GIVEUPS.inc()
                raise RetryError(
                    f"{describe} failed after {attempt} attempt(s): "
                    f"{type(error).__name__}: {error}",
                    attempts=attempt, last=error) from error
            delay = policy.delay(attempt, rng)
            hinted = getattr(error, "retry_after", None)
            if hinted is not None:
                delay = max(delay, float(hinted))
            if policy.overall_deadline is not None and \
                    (clock() - started) + delay > policy.overall_deadline:
                _GIVEUPS.inc()
                raise DeadlineExceeded(
                    f"{describe} gave up after {attempt} attempt(s): "
                    f"next backoff ({delay:.3f}s) would overrun the "
                    f"{policy.overall_deadline:g}s deadline",
                    attempts=attempt, last=error) from error
            _RETRIES.inc()
            record_span(f"retry:{describe}", delay, attempt=attempt,
                        error=type(error).__name__)
            if on_retry is not None:
                on_retry(attempt, error, delay)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
