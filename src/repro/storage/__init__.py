"""Database substrate: in-memory time-series store plus the historian."""

from .historian import Historian, HistorianConfig
from .timeseries import Point, Series, StorageError, TimeSeriesStore

__all__ = ["Historian", "HistorianConfig", "Point", "Series", "StorageError",
           "TimeSeriesStore"]
