"""An in-memory time-series store.

Stands in for the factory databases of the paper's architecture. Data is
organized as *series* identified by a name plus a tag set (machine,
workcell, variable), holding timestamped points. Queries support time
ranges, tag filters and simple aggregations — enough for the monitoring
software the generated configuration deploys.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable


class StorageError(RuntimeError):
    pass


@dataclass(frozen=True, order=True)
class Point:
    timestamp: float
    value: object = field(compare=False)


def _tags_key(tags: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(tags.items()))


@dataclass
class Series:
    """One measurement series with immutable identity and sorted points."""

    name: str
    tags: dict[str, str]
    points: list[Point] = field(default_factory=list)

    def append(self, timestamp: float, value: object) -> None:
        point = Point(timestamp, value)
        if self.points and timestamp < self.points[-1].timestamp:
            index = bisect.bisect_left(
                [p.timestamp for p in self.points], timestamp)
            self.points.insert(index, point)
        else:
            self.points.append(point)

    def range(self, start: float | None = None,
              end: float | None = None) -> list[Point]:
        timestamps = [p.timestamp for p in self.points]
        low = bisect.bisect_left(timestamps, start) if start is not None else 0
        high = (bisect.bisect_right(timestamps, end)
                if end is not None else len(self.points))
        return self.points[low:high]

    @property
    def last(self) -> Point | None:
        return self.points[-1] if self.points else None

    def __len__(self) -> int:
        return len(self.points)


class TimeSeriesStore:
    """Named database holding many series."""

    def __init__(self, name: str = "factorydb"):
        self.name = name
        self._series: dict[tuple[str, tuple], Series] = {}
        self.write_count = 0

    # -- writes ------------------------------------------------------------

    def write(self, measurement: str, value: object, *,
              timestamp: float, tags: dict[str, str] | None = None) -> None:
        tags = dict(tags or {})
        key = (measurement, _tags_key(tags))
        series = self._series.get(key)
        if series is None:
            series = Series(measurement, tags)
            self._series[key] = series
        series.append(timestamp, value)
        self.write_count += 1

    # -- queries ---------------------------------------------------------------

    def series(self, measurement: str | None = None,
               tags: dict[str, str] | None = None) -> list[Series]:
        """Series matching a measurement name and/or a tag subset."""
        result = []
        for (name, _), series in self._series.items():
            if measurement is not None and name != measurement:
                continue
            if tags is not None and any(
                    series.tags.get(k) != v for k, v in tags.items()):
                continue
            result.append(series)
        return result

    def query(self, measurement: str, *, tags: dict[str, str] | None = None,
              start: float | None = None,
              end: float | None = None) -> list[Point]:
        """All points across matching series, time-ordered."""
        points: list[Point] = []
        for series in self.series(measurement, tags):
            points.extend(series.range(start, end))
        return sorted(points, key=lambda p: p.timestamp)

    def latest(self, measurement: str,
               tags: dict[str, str] | None = None) -> Point | None:
        candidates = [s.last for s in self.series(measurement, tags)
                      if s.last is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.timestamp)

    def aggregate(self, measurement: str, func: Callable[[Iterable], object],
                  *, tags: dict[str, str] | None = None,
                  start: float | None = None, end: float | None = None):
        points = self.query(measurement, tags=tags, start=start, end=end)
        if not points:
            raise StorageError(
                f"no points for measurement {measurement!r} in range")
        return func(p.value for p in points)

    # -- retention & downsampling -----------------------------------------------

    def prune(self, *, before: float) -> int:
        """Drop every point older than *before*; returns how many.

        Empty series are removed entirely. This is what the generated
        historian's ``retention_days`` setting maps to.
        """
        dropped = 0
        for key in list(self._series):
            series = self._series[key]
            keep = [p for p in series.points if p.timestamp >= before]
            dropped += len(series.points) - len(keep)
            if keep:
                series.points = keep
            else:
                del self._series[key]
        return dropped

    def downsample(self, measurement: str, *, window: float,
                   tags: dict[str, str] | None = None,
                   start: float | None = None,
                   end: float | None = None,
                   reducer: Callable[[list], object] | None = None
                   ) -> list[Point]:
        """Aggregate numeric points into fixed windows.

        Windows are aligned at multiples of *window*; each produces one
        point stamped at the window start. The default reducer averages
        numeric values (non-numeric points are skipped).
        """
        if window <= 0:
            raise StorageError(f"window must be positive, got {window}")
        points = self.query(measurement, tags=tags, start=start, end=end)
        if reducer is None:
            def reducer(values: list) -> object:
                return sum(values) / len(values)
        buckets: dict[float, list] = {}
        for point in points:
            value = point.value
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            bucket = (point.timestamp // window) * window
            buckets.setdefault(bucket, []).append(value)
        return [Point(bucket, reducer(values))
                for bucket, values in sorted(buckets.items())]

    # -- introspection --------------------------------------------------------------

    @property
    def series_count(self) -> int:
        return len(self._series)

    def measurements(self) -> list[str]:
        return sorted({name for name, _ in self._series})

    def stats(self) -> dict[str, int]:
        return {
            "series": self.series_count,
            "points": sum(len(s) for s in self._series.values()),
            "writes": self.write_count,
        }
