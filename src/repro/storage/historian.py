"""The historian: the broker->database software component.

The paper's pipeline generates, per machine group, a configuration for
"the software component storing the data in the databases". This class
is that component: it subscribes to the data topics of its assigned
machines and writes every update into the time-series store, tagging
points with the ISA-95 coordinates carried in the topic.

Expected topic layout (produced by the generated OPC UA clients)::

    <root>/<workcell>/<machine>/data/<variable>
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..broker import BrokerClient, MessageBroker
from .timeseries import TimeSeriesStore


@dataclass
class HistorianConfig:
    """Deployment configuration of one historian instance."""

    name: str
    topic_root: str
    machines: list[str] = field(default_factory=list)
    measurement: str = "machine_data"


class Historian:
    """Subscribes to machine-data topics and records them."""

    def __init__(self, config: HistorianConfig, broker: MessageBroker,
                 store: TimeSeriesStore):
        self.config = config
        self.store = store
        self.client = BrokerClient(broker, config.name)
        self.records = 0
        self.malformed = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        if self.config.machines:
            for machine in self.config.machines:
                self.client.subscribe(
                    f"{self.config.topic_root}/+/{machine}/data/+",
                    self._on_data)
        else:
            self.client.subscribe(
                f"{self.config.topic_root}/+/+/data/+", self._on_data)
        self._running = True

    def stop(self) -> None:
        self.client.disconnect()
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    # -- message handling ------------------------------------------------------

    def _on_data(self, topic: str, payload: object) -> None:
        levels = topic.split("/")
        root_depth = len(self.config.topic_root.split("/"))
        # <root...>/<workcell>/<machine>/data/<variable>
        if len(levels) != root_depth + 4 or levels[root_depth + 2] != "data":
            self.malformed += 1
            return
        workcell = levels[root_depth]
        machine = levels[root_depth + 1]
        variable = levels[root_depth + 3]
        if isinstance(payload, dict):
            value = payload.get("value")
            timestamp = float(payload.get("timestamp", 0.0))
        else:
            value = payload
            timestamp = 0.0
        self.store.write(
            self.config.measurement, value,
            timestamp=timestamp,
            tags={"workcell": workcell, "machine": machine,
                  "variable": variable})
        self.records += 1

    def stats(self) -> dict[str, int]:
        return {"records": self.records, "malformed": self.malformed}
