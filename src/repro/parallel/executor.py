"""Deterministic fan-out over the pipeline's independent work units.

:func:`map_ordered` is the one primitive: apply a function to every item
of a list, possibly on a worker pool, and return the results **in input
order** — so a parallel phase is byte-for-byte identical to its serial
counterpart no matter how the scheduler interleaves workers.

Execution modes:

* ``serial`` (or ``jobs <= 1``) — plain in-process loop; the ambient
  tracer stays active, so spans opened inside the function record
  normally.
* ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; suits
  units that release the GIL or are cheap enough that pool mechanics
  dominate correctness testing over wall-clock wins.
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor` with a
  ``fork`` context where available; the right choice for CPU-bound
  pure-Python units (parsing), at the cost of pickling task and result.

Worker threads/processes do not see the caller's ambient tracer (the
context variable does not cross the pool), so every unit's wall time is
measured in the worker and folded back into the trace afterwards via
:func:`repro.obs.record_span` — the per-worker spans the
:class:`~repro.obs.PipelineTrace` reports for parallel phases.

**Crash resilience.** The caller's active :class:`~repro.faults.FaultPlan`
travels with each task, so a chaos run can crash workers at the
``parallel.worker`` fault site. A crashed unit (injected, or a pool
broken for real — :class:`~concurrent.futures.BrokenExecutor`) never
surfaces to the caller: the unit is retried up to
:data:`WORKER_MAX_ATTEMPTS` times and, if it keeps crashing, re-run
*serially* in the caller's thread — the degraded-but-correct path.
Results stay in input order and byte-identical to a fault-free run;
``parallel.worker_retries`` / ``parallel.serial_fallbacks`` count the
degradation. Exceptions raised by the unit function itself (not
injected crashes) propagate unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from typing import Callable, Iterable, Sequence, TypeVar

from ..faults import FaultPlan, InjectedCrash, active_plan, fault_point
from ..obs import METRICS, record_span, span

_TASKS = METRICS.counter("parallel.tasks")
_POOLS = METRICS.counter("parallel.pools")
_WORKER_RETRIES = METRICS.counter("parallel.worker_retries")
_SERIAL_FALLBACKS = METRICS.counter("parallel.serial_fallbacks")

_ITEM = TypeVar("_ITEM")
_RESULT = TypeVar("_RESULT")

#: Attempts per unit (first try + retries) before the serial fallback.
WORKER_MAX_ATTEMPTS = 3


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a jobs request: ``None``/``0`` means one per CPU."""
    if not jobs or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class _Crashed:
    """Sentinel result: this unit's worker crashed (injected)."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def _timed_call(task: tuple) -> tuple:
    """Run one unit in a worker, returning (result, wall seconds).

    Module-level so process pools can pickle it; the function, item and
    the caller's fault plan travel together as the task payload (the
    ambient plan's context variable does not cross the pool). An
    injected crash comes back as a :class:`_Crashed` sentinel so one
    dead unit does not abort the whole ``pool.map``.
    """
    fn, item, plan = task
    started = time.perf_counter()
    try:
        if plan is not None:
            with plan.activated():
                fault_point("parallel.worker")
                result = fn(item)
        else:
            result = fn(item)
    except InjectedCrash as error:
        return _Crashed(error), time.perf_counter() - started
    return result, time.perf_counter() - started


def _make_pool(mode: str, jobs: int):
    if mode == "process":
        methods = multiprocessing.get_all_start_methods()
        context = (multiprocessing.get_context("fork")
                   if "fork" in methods else None)
        return ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    if mode == "thread":
        return ThreadPoolExecutor(max_workers=jobs)
    raise ValueError(f"unknown executor mode {mode!r} "
                     f"(expected 'serial', 'thread' or 'process')")


def map_ordered(fn: Callable[[_ITEM], _RESULT],
                items: Iterable[_ITEM], *,
                jobs: int = 1,
                mode: str = "thread",
                span_label: Callable[[_ITEM, int], str] | None = None,
                pool_span: str = "parallel") -> list[_RESULT]:
    """Apply *fn* to every item, results in input order.

    With ``jobs <= 1``, ``mode='serial'`` or fewer than two items, this
    degenerates to a plain loop (no pool, ambient tracer intact).
    Otherwise the items run on a ``jobs``-wide pool under a *pool_span*
    span carrying ``jobs``/``mode``/``tasks`` attributes; when
    *span_label* is given, each unit's worker-measured duration is
    folded back as a child span named ``span_label(item, index)``.
    """
    work: Sequence[_ITEM] = list(items)
    if mode == "serial" or jobs == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    jobs = min(resolve_jobs(jobs), len(work))
    plan = active_plan()
    _POOLS.inc()
    _TASKS.inc(len(work))
    with span(pool_span, jobs=jobs, mode=mode, tasks=len(work)):
        chunksize = max(1, len(work) // (jobs * 4))
        tasks = [(fn, item, plan) for item in work]
        try:
            with _make_pool(mode, jobs) as pool:
                timed = list(pool.map(_timed_call, tasks,
                                      chunksize=chunksize))
        except BrokenExecutor:
            # the pool itself died (a worker process was killed):
            # degrade to the serial path rather than fail the phase
            _SERIAL_FALLBACKS.inc(len(work))
            timed = [_timed_call((fn, item, None)) for item in work]
        for index, (result, seconds) in enumerate(timed):
            if isinstance(result, _Crashed):
                timed[index] = _repair_unit(fn, work[index], plan,
                                            seconds)
        if span_label is not None:
            for index, (_, seconds) in enumerate(timed):
                record_span(span_label(work[index], index), seconds,
                            worker_pool=pool_span)
    return [result for result, _ in timed]


def _repair_unit(fn, item, plan: FaultPlan | None,
                 seconds: float) -> tuple:
    """Recover one crashed unit: retry under the plan, then run it
    serially with injection off — correctness over chaos."""
    for _ in range(WORKER_MAX_ATTEMPTS - 1):
        _WORKER_RETRIES.inc()
        result, retry_seconds = _timed_call((fn, item, plan))
        seconds += retry_seconds
        if not isinstance(result, _Crashed):
            return result, seconds
    _SERIAL_FALLBACKS.inc()
    started = time.perf_counter()
    result = fn(item)
    return result, seconds + (time.perf_counter() - started)
