"""Worker-pool fan-out with deterministic, order-preserving results."""

from .executor import map_ordered, resolve_jobs

__all__ = ["map_ordered", "resolve_jobs"]
