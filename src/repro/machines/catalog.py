"""Machine catalog: declarative specifications of factory equipment.

A :class:`MachineSpec` is the ground truth a model is generated *from*
(and simulators are built from): the machine's variables grouped in
functional categories, its services, and its driver/connection data.
The ICE-lab entries (:mod:`repro.machines.specs`) are sized from Table I
of the paper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..isa95.levels import ArgumentSpec, MachineInfo, ServiceSpec, VariableSpec


@dataclass
class DriverSpec:
    """Driver/protocol side of a machine spec."""

    protocol: str  # definition name, e.g. "EMCODriver", "OPCUAGenericDriver"
    is_generic: bool = False
    parameters: dict[str, object] = field(default_factory=dict)


@dataclass
class MachineSpec:
    """Full specification of one machine."""

    name: str  # instance name, e.g. "emco"
    display_name: str  # e.g. "EMCO Concept Mill 105"
    type_name: str  # part definition name, e.g. "EMCOMillingMachine"
    workcell: str  # e.g. "workCell02"
    driver: DriverSpec
    categories: dict[str, list[VariableSpec]] = field(default_factory=dict)
    services: list[ServiceSpec] = field(default_factory=list)

    def __post_init__(self):
        seen: set[str] = set()
        for category, variables in self.categories.items():
            for variable in variables:
                if variable.name in seen:
                    raise ValueError(
                        f"duplicate variable {variable.name!r} in machine "
                        f"{self.name!r}")
                seen.add(variable.name)
                if not variable.category:
                    variable.category = category
        service_names = [s.name for s in self.services]
        if len(service_names) != len(set(service_names)):
            raise ValueError(
                f"duplicate service names in machine {self.name!r}")

    @property
    def variables(self) -> list[VariableSpec]:
        return [v for vs in self.categories.values() for v in vs]

    @property
    def variable_count(self) -> int:
        return len(self.variables)

    @property
    def service_count(self) -> int:
        return len(self.services)

    @property
    def point_count(self) -> int:
        return self.variable_count + self.service_count


def numbered_variables(prefix: str, count: int, *, data_type: str = "Real",
                       category: str = "", unit: str = "",
                       start: int = 1) -> list[VariableSpec]:
    """Generate ``prefix_1 .. prefix_count`` variables."""
    return [VariableSpec(name=f"{prefix}_{i}", data_type=data_type,
                         category=category, unit=unit)
            for i in range(start, start + count)]


def simple_service(name: str, *, inputs: list[tuple[str, str]] | None = None,
                   outputs: list[tuple[str, str]] | None = None,
                   description: str = "") -> ServiceSpec:
    """Shorthand ServiceSpec constructor from (name, type) pairs."""
    return ServiceSpec(
        name=name,
        inputs=[ArgumentSpec(n, t) for n, t in (inputs or [])],
        outputs=[ArgumentSpec(n, t) for n, t in
                 (outputs or [("ok", "Boolean")])],
        description=description,
    )


def spec_from_machine_info(machine: MachineInfo) -> MachineSpec:
    """A simulator-ready spec synthesized from an extracted machine.

    The catalog is the ground truth for the built-in ICE lab, but the
    conformance corpus and user models only exist as *extracted*
    :class:`~repro.isa95.levels.MachineInfo` records; this bridges
    them so plans (and any other behaviour-level check) can execute
    against :class:`~repro.machines.simulator.MachineSimulator`
    instances for an arbitrary topology. Variable and service records
    are copied — ``MachineSpec`` normalizes categories in place and
    must never mutate the topology it was derived from.
    """
    variables = [dataclasses.replace(variable)
                 for variable in machine.variables]
    services = [dataclasses.replace(
                    service,
                    inputs=[dataclasses.replace(arg)
                            for arg in service.inputs],
                    outputs=[dataclasses.replace(arg)
                             for arg in service.outputs])
                for service in machine.services]
    driver = DriverSpec(
        protocol=machine.driver.protocol if machine.driver
        else "OPCUAGenericDriver",
        is_generic=machine.driver.is_generic if machine.driver else True,
        parameters=dict(machine.driver.parameters)
        if machine.driver else {})
    return MachineSpec(
        name=machine.name,
        display_name=machine.name,
        type_name=machine.type_name or "Machine",
        workcell=machine.workcell,
        driver=driver,
        categories={"data": variables} if variables else {},
        services=services)


class Catalog:
    """A named collection of machine specs."""

    def __init__(self, specs: list[MachineSpec] | None = None):
        self._specs: dict[str, MachineSpec] = {}
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: MachineSpec) -> MachineSpec:
        if spec.name in self._specs:
            raise ValueError(f"duplicate machine name {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> MachineSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"no machine spec named {name!r}") from None

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def by_workcell(self) -> dict[str, list[MachineSpec]]:
        grouped: dict[str, list[MachineSpec]] = {}
        for spec in self._specs.values():
            grouped.setdefault(spec.workcell, []).append(spec)
        return grouped

    def totals(self) -> dict[str, int]:
        return {
            "machines": len(self._specs),
            "variables": sum(s.variable_count for s in self),
            "services": sum(s.service_count for s in self),
            "points": sum(s.point_count for s in self),
        }
