"""UR5e collaborative robot — workcell 02 (99 variables, 4 services).

Counts match the UR5e row of Table I; the variable layout mirrors the
real-time data interface of Universal Robots controllers. The UR5e uses
a proprietary machine driver (``URDriver``).
"""

from __future__ import annotations

from ...isa95.levels import VariableSpec
from ..catalog import DriverSpec, MachineSpec, simple_service

_JOINTS = ("base", "shoulder", "elbow", "wrist1", "wrist2", "wrist3")


def _joints() -> list[VariableSpec]:
    variables = []
    for joint in _JOINTS:
        variables.append(VariableSpec(f"{joint}_position", "Real",
                                      unit="rad"))
        variables.append(VariableSpec(f"{joint}_velocity", "Real",
                                      unit="rad/s"))
        variables.append(VariableSpec(f"{joint}_current", "Real", unit="A"))
        variables.append(VariableSpec(f"{joint}_temperature", "Real",
                                      unit="degC"))
        variables.append(VariableSpec(f"{joint}_torque", "Real", unit="Nm"))
        variables.append(VariableSpec(f"{joint}_voltage", "Real", unit="V"))
    return variables  # 36


def _tcp() -> list[VariableSpec]:
    variables = []
    for group in ("actual", "target"):
        for coord in ("x", "y", "z", "rx", "ry", "rz"):
            variables.append(VariableSpec(f"tcp_{group}_{coord}", "Real"))
    for coord in ("x", "y", "z", "rx", "ry", "rz"):
        variables.append(VariableSpec(f"tcp_speed_{coord}", "Real"))
    for coord in ("x", "y", "z", "rx", "ry", "rz"):
        variables.append(VariableSpec(f"tcp_force_{coord}", "Real"))
    return variables  # 24


def _status() -> list[VariableSpec]:
    return [
        VariableSpec("robot_mode", "String"),
        VariableSpec("safety_mode", "String"),
        VariableSpec("program_state", "String"),
        VariableSpec("is_running", "Boolean"),
        VariableSpec("is_protective_stopped", "Boolean"),
        VariableSpec("speed_scaling", "Real", unit="%"),
        VariableSpec("runtime_seconds", "Real", unit="s"),
        VariableSpec("power_consumption", "Real", unit="W"),
        VariableSpec("controller_temperature", "Real", unit="degC"),
    ]  # 9


def _io() -> list[VariableSpec]:
    variables = []
    for i in range(8):
        variables.append(VariableSpec(f"digital_in_{i}", "Boolean"))
    for i in range(8):
        variables.append(VariableSpec(f"digital_out_{i}", "Boolean"))
    for i in range(2):
        variables.append(VariableSpec(f"analog_in_{i}", "Real", unit="V"))
    for i in range(2):
        variables.append(VariableSpec(f"analog_out_{i}", "Real", unit="V"))
    return variables  # 20


def _gripper() -> list[VariableSpec]:
    return [
        VariableSpec("grip_position", "Real", unit="mm"),
        VariableSpec("grip_force", "Real", unit="N"),
        VariableSpec("object_detected", "Boolean"),
        VariableSpec("grip_activated", "Boolean"),
    ]  # 4


def _payload() -> list[VariableSpec]:
    return [
        VariableSpec("payload_mass", "Real", unit="kg"),
        VariableSpec("payload_cog_x", "Real", unit="m"),
        VariableSpec("payload_cog_y", "Real", unit="m"),
        VariableSpec("payload_cog_z", "Real", unit="m"),
    ]  # 4


def _power() -> list[VariableSpec]:
    return [
        VariableSpec("momentum", "Real"),
        VariableSpec("main_voltage", "Real", unit="V"),
    ]  # 2


SPEC = MachineSpec(
    name="ur5",
    display_name="UR5e Collaborative Robot",
    type_name="UR5eCobot",
    workcell="workCell02",
    driver=DriverSpec(
        protocol="URDriver",
        is_generic=False,
        parameters={
            "ip": "10.197.12.12",
            "ip_port": 30002,
            "dashboard_port": 29999,
        },
    ),
    categories={
        "Joints": _joints(),
        "TCP": _tcp(),
        "Status": _status(),
        "IO": _io(),
        "Gripper": _gripper(),
        "Payload": _payload(),
        "Power": _power(),
    },
    services=[
        simple_service("play"),
        simple_service("pause"),
        simple_service("stop"),
        simple_service("load_program", inputs=[("program", "String")]),
    ],
)

assert SPEC.variable_count == 99, SPEC.variable_count
assert SPEC.service_count == 4, SPEC.service_count
