"""The ICE-lab machines that expose a standardized OPC UA interface.

Per Table I: SPEA ATE (wc01, 3/5), Siemens PLC (wc03, 26/8), Fiam
eTensil (wc03, 12/3), Quality-Control PC (wc04, 13/2), Vertical
Warehouse (wc05, 5/3), Conveyor Line (wc06, 296/10), and the two
RB-Kairos AGVs (wc06, 5/6 each). All use the generic ``OPCUADriver``.
"""

from __future__ import annotations

from ...isa95.levels import VariableSpec
from ..catalog import DriverSpec, MachineSpec, simple_service


def _opcua_driver(host: str, port: int = 4840) -> DriverSpec:
    return DriverSpec(
        protocol="OPCUADriver",
        is_generic=True,
        parameters={"endpoint": f"opc.tcp://{host}:{port}",
                    "security_policy": "None",
                    "session_timeout_ms": 30000},
    )


SPEA_SPEC = MachineSpec(
    name="spea",
    display_name="SPEA Automatic Test Equipment",
    type_name="SPEATester",
    workcell="workCell01",
    driver=_opcua_driver("10.197.11.21"),
    categories={
        "Testing": [
            VariableSpec("test_status", "String"),
            VariableSpec("tests_passed", "Integer"),
            VariableSpec("tests_failed", "Integer"),
        ],
    },
    services=[
        simple_service("is_ready", outputs=[("ready", "Boolean")]),
        simple_service("start_test", inputs=[("board_id", "String")]),
        simple_service("abort_test"),
        simple_service("get_report", outputs=[("report", "String")]),
        simple_service("reset"),
    ],
)
assert SPEA_SPEC.variable_count == 3 and SPEA_SPEC.service_count == 5


def _plc_variables() -> dict[str, list[VariableSpec]]:
    stations = [VariableSpec(f"station_{i}_state", "String")
                for i in range(1, 9)]
    sensors = [VariableSpec(f"sensor_{i}", "Boolean")
               for i in range(1, 11)]
    actuators = [VariableSpec(f"actuator_{i}", "Boolean")
                 for i in range(1, 6)]
    counters = [
        VariableSpec("parts_count", "Integer"),
        VariableSpec("cycle_time", "Real", unit="s"),
        VariableSpec("alarm_code", "Integer"),
    ]
    return {"Stations": stations, "Sensors": sensors,
            "Actuators": actuators, "Counters": counters}


SIEMENS_PLC_SPEC = MachineSpec(
    name="siemensPlc",
    display_name="Siemens S7-1500 PLC (assembly cell)",
    type_name="SiemensPLC",
    workcell="workCell03",
    driver=_opcua_driver("10.197.13.31"),
    categories=_plc_variables(),
    services=[
        simple_service("start_cycle"),
        simple_service("stop_cycle"),
        simple_service("reset_cell"),
        simple_service("ack_alarm", inputs=[("alarm_code", "Integer")]),
        simple_service("set_mode", inputs=[("mode", "String")]),
        simple_service("get_counters", outputs=[("parts", "Integer")]),
        simple_service("open_gripper"),
        simple_service("close_gripper"),
    ],
)
assert SIEMENS_PLC_SPEC.variable_count == 26
assert SIEMENS_PLC_SPEC.service_count == 8


FIAM_SPEC = MachineSpec(
    name="fiam",
    display_name="Fiam eTensil Electric Screwdriver",
    type_name="FiamETensil",
    workcell="workCell03",
    driver=_opcua_driver("10.197.13.32"),
    categories={
        "Tightening": [
            VariableSpec("torque", "Real", unit="Nm"),
            VariableSpec("angle", "Real", unit="deg"),
            VariableSpec("screw_count", "Integer"),
            VariableSpec("program_number", "Integer"),
            VariableSpec("tightening_status", "String"),
            VariableSpec("rpm", "Real", unit="rpm"),
        ],
        "Quality": [
            VariableSpec("ok_count", "Integer"),
            VariableSpec("nok_count", "Integer"),
            VariableSpec("min_torque", "Real", unit="Nm"),
            VariableSpec("max_torque", "Real", unit="Nm"),
            VariableSpec("target_torque", "Real", unit="Nm"),
            VariableSpec("error_code", "Integer"),
        ],
    },
    services=[
        simple_service("start_tightening"),
        simple_service("set_program", inputs=[("program", "Integer")]),
        simple_service("reset_counters"),
    ],
)
assert FIAM_SPEC.variable_count == 12 and FIAM_SPEC.service_count == 3


QC_PC_SPEC = MachineSpec(
    name="qcPc",
    display_name="Quality Control Vision PC",
    type_name="QualityControlPC",
    workcell="workCell04",
    driver=_opcua_driver("10.197.14.41"),
    categories={
        "Inspection": [
            VariableSpec("camera_status", "String"),
            VariableSpec("last_inspection_result", "String"),
            VariableSpec("defects_found", "Integer"),
            VariableSpec("inspection_time", "Real", unit="s"),
            VariableSpec("images_captured", "Integer"),
            VariableSpec("pass_count", "Integer"),
            VariableSpec("fail_count", "Integer"),
            VariableSpec("batch_id", "String"),
        ],
        "Camera": [
            VariableSpec("brightness", "Real"),
            VariableSpec("exposure", "Real", unit="ms"),
            VariableSpec("focus_score", "Real"),
            VariableSpec("algorithm_version", "String"),
            VariableSpec("cpu_load", "Real", unit="%"),
        ],
    },
    services=[
        simple_service("inspect", inputs=[("part_id", "String")],
                       outputs=[("result", "String")]),
        simple_service("calibrate"),
    ],
)
assert QC_PC_SPEC.variable_count == 13 and QC_PC_SPEC.service_count == 2


WAREHOUSE_SPEC = MachineSpec(
    name="warehouse",
    display_name="ICAM Vertical Warehouse",
    type_name="VerticalWarehouse",
    workcell="workCell05",
    driver=_opcua_driver("10.197.15.51"),
    categories={
        "Storage": [
            VariableSpec("tray_current", "Integer"),
            VariableSpec("occupancy_percent", "Real", unit="%"),
            VariableSpec("door_status", "String"),
            VariableSpec("alarm_active", "Boolean"),
            VariableSpec("total_movements", "Integer"),
        ],
    },
    services=[
        simple_service("fetch_tray", inputs=[("tray", "Integer")]),
        simple_service("store_tray", inputs=[("tray", "Integer")]),
        simple_service("get_inventory", outputs=[("inventory", "String")]),
    ],
)
assert WAREHOUSE_SPEC.variable_count == 5 and WAREHOUSE_SPEC.service_count == 3


def _conveyor_variables() -> dict[str, list[VariableSpec]]:
    categories: dict[str, list[VariableSpec]] = {}
    for segment in range(1, 33):  # 32 conveyor segments x 9 variables = 288
        categories[f"Segment{segment:02d}"] = [
            VariableSpec(f"seg{segment:02d}_motor_speed", "Real",
                         unit="m/s"),
            VariableSpec(f"seg{segment:02d}_motor_current", "Real",
                         unit="A"),
            VariableSpec(f"seg{segment:02d}_occupied", "Boolean"),
            VariableSpec(f"seg{segment:02d}_pallet_id", "Integer"),
            VariableSpec(f"seg{segment:02d}_stopper_engaged", "Boolean"),
            VariableSpec(f"seg{segment:02d}_sensor_entry", "Boolean"),
            VariableSpec(f"seg{segment:02d}_sensor_exit", "Boolean"),
            VariableSpec(f"seg{segment:02d}_temperature", "Real",
                         unit="degC"),
            VariableSpec(f"seg{segment:02d}_fault_code", "Integer"),
        ]
    categories["Line"] = [  # 8 line-wide variables
        VariableSpec("line_speed", "Real", unit="m/s"),
        VariableSpec("total_pallets", "Integer"),
        VariableSpec("line_state", "String"),
        VariableSpec("emergency_stop", "Boolean"),
        VariableSpec("power_consumption", "Real", unit="W"),
        VariableSpec("throughput", "Real", unit="pallets/h"),
        VariableSpec("oldest_pallet_age", "Real", unit="s"),
        VariableSpec("faults_active", "Integer"),
    ]
    return categories


CONVEYOR_SPEC = MachineSpec(
    name="conveyor",
    display_name="Minipallet Conveyor Line",
    type_name="ConveyorLine",
    workcell="workCell06",
    driver=_opcua_driver("10.197.16.61"),
    categories=_conveyor_variables(),
    services=[
        simple_service("start_line"),
        simple_service("stop_line"),
        simple_service("route_pallet", inputs=[("pallet", "Integer"),
                                               ("destination", "Integer")]),
        simple_service("release_stopper", inputs=[("segment", "Integer")]),
        simple_service("engage_stopper", inputs=[("segment", "Integer")]),
        simple_service("get_pallet_position",
                       inputs=[("pallet", "Integer")],
                       outputs=[("segment", "Integer")]),
        simple_service("reset_faults"),
        simple_service("set_speed", inputs=[("speed", "Real")]),
        simple_service("register_pallet", inputs=[("pallet", "Integer")]),
        simple_service("unregister_pallet", inputs=[("pallet", "Integer")]),
    ],
)
assert CONVEYOR_SPEC.variable_count == 296, CONVEYOR_SPEC.variable_count
assert CONVEYOR_SPEC.service_count == 10


def make_kairos_spec(index: int, host: str) -> MachineSpec:
    """RB-Kairos mobile manipulator (two identical units in wc06)."""
    return MachineSpec(
        name=f"kairos{index}",
        display_name=f"Robotnik RB-Kairos #{index}",
        type_name="RBKairosAGV",
        workcell="workCell06",
        driver=_opcua_driver(host),
        categories={
            "Navigation": [
                VariableSpec("battery_level", "Real", unit="%"),
                VariableSpec("pose_x", "Real", unit="m"),
                VariableSpec("pose_y", "Real", unit="m"),
                VariableSpec("pose_theta", "Real", unit="rad"),
                VariableSpec("status", "String"),
            ],
        },
        services=[
            simple_service("move_to", inputs=[("x", "Real"), ("y", "Real")]),
            simple_service("dock"),
            simple_service("undock"),
            simple_service("pick", inputs=[("item", "String")]),
            simple_service("place", inputs=[("item", "String")]),
            simple_service("get_status", outputs=[("status", "String")]),
        ],
    )


KAIROS1_SPEC = make_kairos_spec(1, "10.197.16.62")
KAIROS2_SPEC = make_kairos_spec(2, "10.197.16.63")
assert KAIROS1_SPEC.variable_count == 5 and KAIROS1_SPEC.service_count == 6
