"""Per-machine specifications of the ICE Laboratory (Table I rows)."""

from .emco import SPEC as EMCO_SPEC
from .opcua_machines import (CONVEYOR_SPEC, FIAM_SPEC, KAIROS1_SPEC,
                             KAIROS2_SPEC, QC_PC_SPEC, SIEMENS_PLC_SPEC,
                             SPEA_SPEC, WAREHOUSE_SPEC, make_kairos_spec)
from .ur5 import SPEC as UR5_SPEC

#: All ICE-lab machines, in the workcell order of Table I.
ICE_LAB_SPECS = [
    SPEA_SPEC,        # wc01
    EMCO_SPEC,        # wc02
    UR5_SPEC,         # wc02
    SIEMENS_PLC_SPEC,  # wc03
    FIAM_SPEC,        # wc03
    QC_PC_SPEC,       # wc04
    WAREHOUSE_SPEC,   # wc05
    CONVEYOR_SPEC,    # wc06
    KAIROS1_SPEC,     # wc06
    KAIROS2_SPEC,     # wc06
]

__all__ = ["CONVEYOR_SPEC", "EMCO_SPEC", "FIAM_SPEC", "ICE_LAB_SPECS",
           "KAIROS1_SPEC", "KAIROS2_SPEC", "QC_PC_SPEC", "SIEMENS_PLC_SPEC",
           "SPEA_SPEC", "UR5_SPEC", "WAREHOUSE_SPEC", "make_kairos_spec"]
