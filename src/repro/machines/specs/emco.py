"""EMCO Concept Mill 105 — workcell 02 (34 variables, 19 services).

Counts match the EMCO row of Table I. The EMCO uses a proprietary
machine driver (``EMCODriver``), as in the paper's running example.
"""

from __future__ import annotations

from ...isa95.levels import VariableSpec
from ..catalog import DriverSpec, MachineSpec, simple_service


def _axes() -> list[VariableSpec]:
    variables = []
    for axis in ("X", "Y", "Z"):
        variables.append(VariableSpec(f"actual_{axis}", "Real", unit="mm"))
        variables.append(VariableSpec(f"target_{axis}", "Real", unit="mm"))
        variables.append(VariableSpec(f"feed_rate_{axis}", "Real",
                                      unit="mm/min"))
    return variables


def _spindle() -> list[VariableSpec]:
    return [
        VariableSpec("spindle_speed", "Real", unit="rpm"),
        VariableSpec("spindle_load", "Real", unit="%"),
        VariableSpec("spindle_temperature", "Real", unit="degC"),
        VariableSpec("spindle_override", "Real", unit="%"),
        VariableSpec("spindle_direction", "String"),
        VariableSpec("spindle_active", "Boolean"),
    ]


def _program() -> list[VariableSpec]:
    return [
        VariableSpec("program_name", "String"),
        VariableSpec("program_status", "String"),
        VariableSpec("program_line", "Integer"),
        VariableSpec("program_progress", "Real", unit="%"),
        VariableSpec("block_number", "Integer"),
        VariableSpec("feed_override", "Real", unit="%"),
        VariableSpec("rapid_override", "Real", unit="%"),
        VariableSpec("cycle_time", "Real", unit="s"),
    ]


def _system_status() -> list[VariableSpec]:
    return [
        VariableSpec("operating_mode", "String"),
        VariableSpec("machine_state", "String"),
        VariableSpec("error_code", "Integer"),
        VariableSpec("error_message", "String"),
        VariableSpec("emergency_stop", "Boolean"),
        VariableSpec("door_closed", "Boolean"),
        VariableSpec("coolant_active", "Boolean"),
        VariableSpec("power_on_hours", "Real", unit="h"),
    ]


def _tooling() -> list[VariableSpec]:
    return [
        VariableSpec("tool_number", "Integer"),
        VariableSpec("tool_offset", "Real", unit="mm"),
        VariableSpec("tool_life", "Real", unit="%"),
    ]


SPEC = MachineSpec(
    name="emco",
    display_name="EMCO Concept Mill 105",
    type_name="EMCOMillingMachine",
    workcell="workCell02",
    driver=DriverSpec(
        protocol="EMCODriver",
        is_generic=False,
        parameters={
            "ip": "10.197.12.11",
            "ip_port": 5557,
            "program_file_path": "/programs/emco",
        },
    ),
    categories={
        "AxesPositions": _axes(),
        "Spindle": _spindle(),
        "Program": _program(),
        "SystemStatus": _system_status(),
        "Tooling": _tooling(),
    },
    services=[
        simple_service("is_ready", outputs=[("ready", "Boolean")]),
        simple_service("start_program"),
        simple_service("stop_program"),
        simple_service("pause_program"),
        simple_service("resume_program"),
        simple_service("load_program", inputs=[("program", "String")]),
        simple_service("unload_program"),
        simple_service("reset_errors"),
        simple_service("home_axes"),
        simple_service("move_to", inputs=[("x", "Real"), ("y", "Real"),
                                          ("z", "Real")]),
        simple_service("set_spindle_speed", inputs=[("rpm", "Real")]),
        simple_service("spindle_on"),
        simple_service("spindle_off"),
        simple_service("open_door"),
        simple_service("close_door"),
        simple_service("coolant_on"),
        simple_service("coolant_off"),
        simple_service("get_status", outputs=[("status", "String")]),
        simple_service("set_feed_override", inputs=[("percent", "Real")]),
    ],
)

assert SPEC.variable_count == 34, SPEC.variable_count
assert SPEC.service_count == 19, SPEC.service_count
