"""Behavioural machine simulator.

Stands in for the physical ICE-lab equipment: it owns the variable
values declared by a :class:`~repro.machines.catalog.MachineSpec`,
evolves them over simulated time (:meth:`step`), and executes service
calls. Deterministic given a seed, so end-to-end tests are repeatable.
"""

from __future__ import annotations

import random
from typing import Callable

from ..isa95.levels import ServiceSpec, VariableSpec
from .catalog import MachineSpec

_STRING_STATES = {
    "default": ("idle", "running", "paused", "error"),
    "mode": ("manual", "automatic", "maintenance"),
    "status": ("idle", "busy", "done"),
    "result": ("pass", "fail"),
}

_DEFAULTS = {"Real": 0.0, "Double": 0.0, "Integer": 0, "Natural": 0,
             "Boolean": False, "String": "idle"}


class SimulationError(RuntimeError):
    pass


class MachineSimulator:
    """One simulated machine."""

    def __init__(self, spec: MachineSpec, *, seed: int | None = None):
        self.spec = spec
        self._rng = random.Random(seed if seed is not None
                                  else _stable_seed(spec.name))
        self._variables: dict[str, object] = {}
        self._variable_specs: dict[str, VariableSpec] = {}
        self._services: dict[str, ServiceSpec] = {}
        self._listeners: list[Callable[[str, object], None]] = []
        self.clock = 0.0
        self.busy = False
        self.call_log: list[tuple[str, tuple]] = []
        for variable in spec.variables:
            initial = variable.initial_value
            if initial is None:
                initial = _DEFAULTS.get(variable.data_type, 0.0)
            self._variables[variable.name] = initial
            self._variable_specs[variable.name] = variable
        for service in spec.services:
            self._services[service.name] = service

    # -- variable access -------------------------------------------------------

    def read(self, name: str) -> object:
        try:
            return self._variables[name]
        except KeyError:
            raise SimulationError(
                f"machine {self.spec.name!r} has no variable {name!r}"
            ) from None

    def write(self, name: str, value: object) -> None:
        if name not in self._variables:
            raise SimulationError(
                f"machine {self.spec.name!r} has no variable {name!r}")
        self._variables[name] = value
        for listener in list(self._listeners):
            listener(name, value)

    def variables(self) -> dict[str, object]:
        return dict(self._variables)

    def variable_names(self) -> list[str]:
        return list(self._variables)

    def on_change(self, listener: Callable[[str, object], None]) -> None:
        self._listeners.append(listener)

    # -- services -------------------------------------------------------------

    def call(self, service_name: str, *args) -> tuple:
        service = self._services.get(service_name)
        if service is None:
            raise SimulationError(
                f"machine {self.spec.name!r} has no service "
                f"{service_name!r}")
        if len(args) != len(service.inputs):
            raise SimulationError(
                f"service {service_name!r} of {self.spec.name!r} expects "
                f"{len(service.inputs)} argument(s), got {len(args)}")
        self.call_log.append((service_name, args))
        self._apply_service_effects(service_name)
        return tuple(self._default_output(arg.data_type, service_name)
                     for arg in service.outputs)

    def _apply_service_effects(self, service_name: str) -> None:
        """Generic behavioural effects of well-known service verbs."""
        lowered = service_name.lower()
        if any(verb in lowered for verb in ("start", "play", "run")):
            self.busy = True
            self._set_if_present("program_status", "running")
            self._set_if_present("machine_state", "running")
            self._set_if_present("is_running", True)
        elif any(verb in lowered for verb in ("stop", "abort", "pause")):
            self.busy = False
            self._set_if_present("program_status", "idle")
            self._set_if_present("machine_state", "idle")
            self._set_if_present("is_running", False)
        elif "reset" in lowered:
            self._set_if_present("error_code", 0)
            self._set_if_present("alarm_code", 0)
            self._set_if_present("faults_active", 0)

    def _set_if_present(self, name: str, value: object) -> None:
        if name in self._variables:
            self.write(name, value)

    def _default_output(self, data_type: str, service_name: str):
        if data_type == "Boolean":
            if "ready" in service_name.lower() or service_name == "is_ready":
                return not self.busy
            return True
        if data_type in ("Integer", "Natural"):
            return 0
        if data_type in ("Real", "Double"):
            return 0.0
        return "ok"

    @property
    def service_names(self) -> list[str]:
        return list(self._services)

    def service(self, name: str) -> ServiceSpec:
        return self._services[name]

    # -- time evolution ---------------------------------------------------------

    def step(self, dt: float = 1.0) -> None:
        """Advance simulated time: numeric drift, occasional state flips."""
        self.clock += dt
        for name, spec in self._variable_specs.items():
            value = self._variables[name]
            if spec.data_type in ("Real", "Double"):
                drift = self._rng.gauss(0.0, 1.0) * dt
                self.write(name, round(float(value) + drift, 6))
            elif spec.data_type in ("Integer", "Natural"):
                if self._rng.random() < 0.2:
                    self.write(name, int(value) + 1)
            elif spec.data_type == "Boolean":
                if self._rng.random() < 0.05:
                    self.write(name, not bool(value))
            elif spec.data_type == "String":
                if self._rng.random() < 0.1:
                    states = _states_for(name)
                    self.write(name, self._rng.choice(states))

    def __repr__(self) -> str:
        return (f"<MachineSimulator {self.spec.name} "
                f"({self.spec.variable_count} vars, "
                f"{self.spec.service_count} services)>")


def _states_for(variable_name: str) -> tuple[str, ...]:
    lowered = variable_name.lower()
    for key, states in _STRING_STATES.items():
        if key in lowered:
            return states
    return _STRING_STATES["default"]


def _stable_seed(name: str) -> int:
    return sum(ord(c) * (i + 1) for i, c in enumerate(name)) % (2 ** 31)
