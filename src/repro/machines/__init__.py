"""Machine catalog and behavioural simulators."""

from .catalog import (Catalog, DriverSpec, MachineSpec, numbered_variables,
                      simple_service, spec_from_machine_info)
from .simulator import MachineSimulator, SimulationError
from .specs import ICE_LAB_SPECS

__all__ = ["Catalog", "DriverSpec", "ICE_LAB_SPECS", "MachineSimulator",
           "MachineSpec", "SimulationError", "numbered_variables",
           "simple_service", "spec_from_machine_info"]
