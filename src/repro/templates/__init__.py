"""Minimal template engine + built-in Kubernetes manifest templates."""

from .engine import Template, TemplateError, k8s_name, render
from .library import TEMPLATES, get_template

__all__ = ["TEMPLATES", "Template", "TemplateError", "get_template",
           "k8s_name", "render"]
