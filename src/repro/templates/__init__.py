"""Minimal template engine + built-in Kubernetes manifest templates."""

from .engine import Template, TemplateError, k8s_name, render
from .library import TEMPLATE_SOURCES, get_template, template_source

__all__ = ["TEMPLATES", "TEMPLATE_SOURCES", "Template", "TemplateError",
           "get_template", "k8s_name", "render", "template_source"]


def __getattr__(name: str):
    if name == "TEMPLATES":
        from . import library
        return library.TEMPLATES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
