"""A minimal text template engine (step 2 of the paper's pipeline).

The paper renders Kubernetes YAML "by using template files rendered
according to the information contained in the JSON files". This engine
provides the three constructs those templates need:

* ``{{ expr }}``         — substitution; ``expr`` is a dotted path into the
  context (``machine.name``), with optional filters ``{{ name | upper }}``.
* ``{% for x in expr %} ... {% endfor %}``  — iteration.
* ``{% if expr %} ... {% else %} ... {% endif %}`` — conditionals
  (truthiness of the resolved value).

Filters: ``upper``, ``lower``, ``k8s_name`` (DNS-1123 sanitization),
``json`` (compact JSON), ``yaml_str`` (quoted YAML string), ``indent:N``.
"""

from __future__ import annotations

import functools
import json
import re
import time

from ..obs import METRICS

_RENDERS = METRICS.counter("templates.renders")
_RENDER_SECONDS = METRICS.histogram("templates.render_seconds")


class TemplateError(ValueError):
    pass


_TOKEN_RE = re.compile(r"({{.*?}}|{%.*?%})", re.DOTALL)


@functools.lru_cache(maxsize=4096)
def _k8s_name(text: str) -> str:
    cleaned = re.sub(r"[^a-z0-9-]+", "-", text.lower()).strip("-")
    if not cleaned:
        raise TemplateError(f"cannot derive a k8s name from {text!r}")
    return cleaned[:63]


def k8s_name(text: str) -> str:
    """Sanitize into a DNS-1123 label (lowercase alnum and dashes).

    Memoized: every render re-sanitizes the same handful of component
    names (the ``| k8s_name`` filter fires several times per manifest).
    """
    return _k8s_name(str(text))


def _yaml_str(value: object) -> str:
    from ..yamlgen import needs_quoting
    text = str(value)
    if needs_quoting(text):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


_FILTERS = {
    "upper": lambda v: str(v).upper(),
    "lower": lambda v: str(v).lower(),
    "k8s_name": k8s_name,
    "json": lambda v: json.dumps(v, separators=(",", ":"), sort_keys=True),
    "yaml_str": _yaml_str,
    "length": lambda v: len(v),
}


def _resolve(path: str, context: dict):
    """Resolve a dotted path (with optional index access ``items.0``)."""
    path = path.strip()
    if not path:
        raise TemplateError("empty expression")
    current: object = context
    for part in path.split("."):
        if isinstance(current, dict):
            if part not in current:
                raise TemplateError(f"unknown name {part!r} in {path!r}")
            current = current[part]
        elif isinstance(current, (list, tuple)):
            try:
                current = current[int(part)]
            except (ValueError, IndexError) as exc:
                raise TemplateError(
                    f"bad index {part!r} in {path!r}") from exc
        else:
            attr = getattr(current, part, _MISSING)
            if attr is _MISSING:
                raise TemplateError(
                    f"cannot access {part!r} of "
                    f"{type(current).__name__} in {path!r}")
            current = attr
    return current


_MISSING = object()


def _apply_filters(value: object, filters: list[str]):
    for spec in filters:
        name, _, arg = spec.strip().partition(":")
        if name == "indent":
            pad = " " * int(arg)
            value = ("\n" + pad).join(str(value).splitlines())
        elif name in _FILTERS:
            value = _FILTERS[name](value)
        else:
            raise TemplateError(f"unknown filter {name!r}")
    return value


class _Node:
    def render(self, context: dict, out: list[str]) -> None:
        raise NotImplementedError


class _Text(_Node):
    def __init__(self, text: str):
        self.text = text

    def render(self, context, out):
        out.append(self.text)


class _Expr(_Node):
    def __init__(self, expression: str):
        parts = expression.split("|")
        self.path = parts[0].strip()
        self.filters = parts[1:]

    def render(self, context, out):
        value = _apply_filters(_resolve(self.path, context), self.filters)
        out.append("" if value is None else str(value))


class _For(_Node):
    def __init__(self, var: str, expression: str, body: list[_Node]):
        self.var = var
        self.expression = expression
        self.body = body

    def render(self, context, out):
        items = _resolve(self.expression, context)
        if not isinstance(items, (list, tuple)):
            raise TemplateError(
                f"cannot iterate over {type(items).__name__} "
                f"({self.expression!r})")
        for index, item in enumerate(items):
            scope = dict(context)
            scope[self.var] = item
            scope["loop"] = {"index": index, "first": index == 0,
                             "last": index == len(items) - 1}
            for node in self.body:
                node.render(scope, out)


class _If(_Node):
    def __init__(self, expression: str, then: list[_Node],
                 otherwise: list[_Node]):
        self.expression = expression
        self.negated = expression.startswith("not ")
        self.path = expression[4:] if self.negated else expression
        self.then = then
        self.otherwise = otherwise

    def render(self, context, out):
        try:
            value = _resolve(self.path, context)
        except TemplateError:
            value = None
        truthy = bool(value)
        if self.negated:
            truthy = not truthy
        for node in (self.then if truthy else self.otherwise):
            node.render(context, out)


class Template:
    """A compiled template."""

    def __init__(self, source: str, name: str = "<template>"):
        self.name = name
        tokens = _TOKEN_RE.split(source)
        self.nodes, remaining = self._parse(tokens, 0, None)
        if remaining != len(tokens):
            raise TemplateError(f"{name}: unexpected trailing block tag")

    def _parse(self, tokens: list[str], index: int,
               until: str | None) -> tuple[list[_Node], int]:
        nodes: list[_Node] = []
        while index < len(tokens):
            token = tokens[index]
            if token.startswith("{{"):
                nodes.append(_Expr(token[2:-2]))
                index += 1
            elif token.startswith("{%"):
                tag = token[2:-2].strip()
                if tag.startswith("for "):
                    match = re.fullmatch(r"for\s+(\w+)\s+in\s+(.+)", tag)
                    if not match:
                        raise TemplateError(f"malformed for tag: {tag!r}")
                    body, index = self._parse(tokens, index + 1, "endfor")
                    nodes.append(_For(match.group(1),
                                      match.group(2).strip(), body))
                elif tag.startswith("if "):
                    then, index = self._parse(tokens, index + 1,
                                              "endif-or-else")
                    otherwise: list[_Node] = []
                    if tokens[index - 1][2:-2].strip() == "else":
                        otherwise, index = self._parse(tokens, index, "endif")
                    nodes.append(_If(tag[3:].strip(), then, otherwise))
                elif tag in ("endfor", "endif", "else"):
                    if until is None:
                        raise TemplateError(f"unexpected {{% {tag} %}}")
                    if until == "endfor" and tag != "endfor":
                        raise TemplateError(
                            f"expected endfor, found {tag!r}")
                    if until == "endif" and tag != "endif":
                        raise TemplateError(f"expected endif, found {tag!r}")
                    if until == "endif-or-else" and tag not in ("endif",
                                                                "else"):
                        raise TemplateError(
                            f"expected endif/else, found {tag!r}")
                    return nodes, index + 1
                else:
                    raise TemplateError(f"unknown block tag {tag!r}")
            else:
                if token:
                    nodes.append(_Text(token))
                index += 1
        if until is not None:
            raise TemplateError(f"missing closing tag for {until!r}")
        return nodes, index

    def render(self, context: dict) -> str:
        started = time.perf_counter()
        out: list[str] = []
        for node in self.nodes:
            node.render(dict(context), out)
        _RENDERS.inc()
        _RENDER_SECONDS.observe(time.perf_counter() - started)
        return "".join(out)


def render(source: str, context: dict, name: str = "<template>") -> str:
    """One-shot compile and render."""
    return Template(source, name).render(context)
