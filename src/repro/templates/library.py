"""Built-in Kubernetes manifest templates.

One template per software-component type of the paper's stack. Each
renders a multi-document YAML stream with the resources the component
needs in the cluster: a ConfigMap embedding the intermediate JSON
configuration, a Deployment running the component image, and (for OPC UA
servers) a Service exposing the endpoint.

Context contract (produced by :mod:`repro.codegen`):

``component``  mapping with ``name``, ``kind``, ``image``, ``replicas``,
               ``config_json`` (the serialized intermediate JSON) and
               optionally ``port``.
"""

from __future__ import annotations

import functools

from .engine import Template

OPCUA_SERVER_TEMPLATE = """\
---
apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ component.name | k8s_name }}-config
  namespace: {{ namespace }}
  labels:
    app: {{ component.name | k8s_name }}
    component: opcua-server
    managed-by: sysmlv2-factory-config
data:
  config.json: {{ component.config_json | json | yaml_str }}
---
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ component.name | k8s_name }}
  namespace: {{ namespace }}
  labels:
    app: {{ component.name | k8s_name }}
    component: opcua-server
spec:
  replicas: {{ component.replicas }}
  selector:
    matchLabels:
      app: {{ component.name | k8s_name }}
  template:
    metadata:
      labels:
        app: {{ component.name | k8s_name }}
        component: opcua-server
    spec:
      containers:
        - name: opcua-server
          image: {{ component.image }}
          ports:
            - containerPort: {{ component.port }}
          env:
            - name: CONFIG_PATH
              value: /etc/factory/config.json
          volumeMounts:
            - name: config
              mountPath: /etc/factory
          resources:
            requests:
              cpu: {{ component.cpu_request }}
              memory: {{ component.memory_request }}
      volumes:
        - name: config
          configMap:
            name: {{ component.name | k8s_name }}-config
---
apiVersion: v1
kind: Service
metadata:
  name: {{ component.name | k8s_name }}
  namespace: {{ namespace }}
  labels:
    app: {{ component.name | k8s_name }}
spec:
  selector:
    app: {{ component.name | k8s_name }}
  ports:
    - name: opcua
      port: {{ component.port }}
      targetPort: {{ component.port }}
"""

OPCUA_CLIENT_TEMPLATE = """\
---
apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ component.name | k8s_name }}-config
  namespace: {{ namespace }}
  labels:
    app: {{ component.name | k8s_name }}
    component: opcua-client
    managed-by: sysmlv2-factory-config
data:
  config.json: {{ component.config_json | json | yaml_str }}
---
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ component.name | k8s_name }}
  namespace: {{ namespace }}
  labels:
    app: {{ component.name | k8s_name }}
    component: opcua-client
spec:
  replicas: {{ component.replicas }}
  selector:
    matchLabels:
      app: {{ component.name | k8s_name }}
  template:
    metadata:
      labels:
        app: {{ component.name | k8s_name }}
        component: opcua-client
    spec:
      containers:
        - name: opcua-client
          image: {{ component.image }}
          env:
            - name: CONFIG_PATH
              value: /etc/factory/config.json
            - name: BROKER_URL
              value: {{ broker_url | yaml_str }}
          volumeMounts:
            - name: config
              mountPath: /etc/factory
          resources:
            requests:
              cpu: {{ component.cpu_request }}
              memory: {{ component.memory_request }}
      volumes:
        - name: config
          configMap:
            name: {{ component.name | k8s_name }}-config
"""

HISTORIAN_TEMPLATE = """\
---
apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ component.name | k8s_name }}-config
  namespace: {{ namespace }}
  labels:
    app: {{ component.name | k8s_name }}
    component: historian
    managed-by: sysmlv2-factory-config
data:
  config.json: {{ component.config_json | json | yaml_str }}
---
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ component.name | k8s_name }}
  namespace: {{ namespace }}
  labels:
    app: {{ component.name | k8s_name }}
    component: historian
spec:
  replicas: {{ component.replicas }}
  selector:
    matchLabels:
      app: {{ component.name | k8s_name }}
  template:
    metadata:
      labels:
        app: {{ component.name | k8s_name }}
        component: historian
    spec:
      containers:
        - name: historian
          image: {{ component.image }}
          env:
            - name: CONFIG_PATH
              value: /etc/factory/config.json
            - name: BROKER_URL
              value: {{ broker_url | yaml_str }}
            - name: DATABASE_URL
              value: {{ database_url | yaml_str }}
          volumeMounts:
            - name: config
              mountPath: /etc/factory
          resources:
            requests:
              cpu: {{ component.cpu_request }}
              memory: {{ component.memory_request }}
      volumes:
        - name: config
          configMap:
            name: {{ component.name | k8s_name }}-config
"""

#: Template sources by component kind; compiled lazily by
#: :func:`get_template`.
TEMPLATE_SOURCES: dict[str, str] = {
    "opcua-server": OPCUA_SERVER_TEMPLATE,
    "opcua-client": OPCUA_CLIENT_TEMPLATE,
    "historian": HISTORIAN_TEMPLATE,
}


@functools.lru_cache(maxsize=None)
def get_template(kind: str) -> Template:
    """The compiled template for *kind*, compiled once per process."""
    try:
        source = TEMPLATE_SOURCES[kind]
    except KeyError:
        raise KeyError(
            f"no template for component kind {kind!r}; "
            f"known: {sorted(TEMPLATE_SOURCES)}") from None
    return Template(source, kind)


def template_source(kind: str) -> str:
    """The raw template text (cache keys fingerprint it)."""
    get_template(kind)  # same unknown-kind error path
    return TEMPLATE_SOURCES[kind]


def __getattr__(name: str):
    # TEMPLATES predates lazy compilation; keep it importable without
    # forcing every template to compile at module import.
    if name == "TEMPLATES":
        return {kind: get_template(kind) for kind in TEMPLATE_SOURCES}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
