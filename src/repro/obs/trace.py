"""Frozen, exportable pipeline traces.

A :class:`PipelineTrace` is the immutable snapshot of everything a
:class:`~repro.obs.tracer.Tracer` recorded: the span tree (with
durations, attributes and counters) plus a snapshot of the process-wide
metrics registry. It is attached to
:class:`~repro.codegen.pipeline.GenerationResult` and exportable as
JSON (``to_json``) or a rendered tree report (``render``)::

    generate                          11.85ms  100.0%
    ├─ topology                        2.31ms   19.5%  machines=10
    ├─ validate                        0.18ms    1.5%
    ├─ step1                           1.02ms    8.6%
    │  ├─ machine:conveyor             0.11ms    0.9%
    │  └─ grouping                     0.04ms    0.3%  placements=17
    └─ step2                           8.11ms   68.4%
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Iterator

from .metrics import METRICS
from .summary import Summarizable

#: Bump when the exported JSON layout changes.
TRACE_SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One frozen span: a node of the exported trace tree."""

    name: str
    duration_s: float
    attributes: dict[str, object] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "duration_s": round(self.duration_s, 9),
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self) -> Iterator["SpanRecord"]:
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def self_seconds(self) -> float:
        """Time not accounted for by child spans."""
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))


def _freeze(span) -> SpanRecord:
    duration = span.duration
    if duration == 0.0 and span.started:
        duration = time.perf_counter() - span.started  # still open
    return SpanRecord(
        name=span.name,
        duration_s=duration,
        attributes=dict(span.attributes),
        counters=dict(span.counters),
        children=[_freeze(child) for child in span.children],
    )


class PipelineTrace(Summarizable):
    """The exportable outcome of one traced pipeline run."""

    def __init__(self, roots: list[SpanRecord],
                 metrics: dict[str, object] | None = None,
                 name: str = "pipeline"):
        self.name = name
        self.roots = roots
        self.metrics = metrics if metrics is not None else {}

    @classmethod
    def from_tracer(cls, tracer) -> "PipelineTrace":
        return cls(roots=[_freeze(root) for root in tracer.roots],
                   metrics=METRICS.snapshot(), name=tracer.name)

    # -- queries ------------------------------------------------------------

    def iter_spans(self) -> Iterator[SpanRecord]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> SpanRecord | None:
        """First span with *name*, depth-first."""
        for record in self.iter_spans():
            if record.name == name:
                return record
        return None

    def find_all(self, prefix: str) -> list[SpanRecord]:
        """Every span whose name starts with *prefix*, depth-first."""
        return [r for r in self.iter_spans() if r.name.startswith(prefix)]

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.iter_spans())

    @property
    def total_seconds(self) -> float:
        return sum(root.duration_s for root in self.roots)

    def phase_seconds(self) -> dict[str, float]:
        """Top-level phase durations, the bench-JSON attribution unit.

        The direct children of the ``generate`` span (topology,
        validate, step1, step2) plus any front-end root phases (parse,
        resolve) recorded alongside it.
        """
        phases: dict[str, float] = {}

        def add(record: SpanRecord) -> None:
            phases[record.name] = (phases.get(record.name, 0.0)
                                   + record.duration_s)

        generate = self.find("generate")
        for root in self.roots:
            if generate is not None and any(r is generate
                                            for r in root.walk()):
                continue
            add(root)
        if generate is not None:
            for child in generate.children:
                add(child)
        return phases

    # -- export -------------------------------------------------------------

    def summary(self) -> dict[str, object]:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "total_seconds": round(self.total_seconds, 6),
            "span_count": self.span_count,
            "phases": {name: round(seconds, 6)
                       for name, seconds in self.phase_seconds().items()},
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "total_seconds": round(self.total_seconds, 9),
            "spans": [root.to_dict() for root in self.roots],
            "metrics": dict(self.metrics),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The full trace tree (not just the summary) as JSON."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self, *, max_depth: int | None = None,
               min_fraction: float = 0.0) -> str:
        """A flamegraph-style text tree with per-span timings."""
        lines: list[str] = []
        total = self.total_seconds or 1e-12
        name_width = self._name_width(max_depth)

        def emit(record: SpanRecord, prefix: str, tail: str,
                 depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            fraction = record.duration_s / total
            if depth and fraction < min_fraction:
                return
            label = prefix + tail + record.name
            extras = [f"{k}={v}" for k, v in record.attributes.items()]
            extras += [f"{k}={v}" for k, v in record.counters.items()]
            suffix = ("  " + " ".join(extras)) if extras else ""
            lines.append(f"{label:<{name_width}} "
                         f"{record.duration_s * 1e3:>9.2f}ms "
                         f"{fraction * 100:>6.1f}%{suffix}")
            child_prefix = prefix + ("   " if tail == "└─ " else
                                     "│  " if tail == "├─ " else "")
            for index, child in enumerate(record.children):
                last = index == len(record.children) - 1
                emit(child, child_prefix, "└─ " if last else "├─ ",
                     depth + 1)

        for root in self.roots:
            emit(root, "", "", 0)
        return "\n".join(lines) or "(empty trace)"

    def _name_width(self, max_depth: int | None) -> int:
        width = 8
        for root in self.roots:
            for record, depth in _walk_depth(root, 0):
                if max_depth is not None and depth > max_depth:
                    continue
                width = max(width, 3 * depth + len(record.name))
        return min(width + 2, 60)

    def __repr__(self) -> str:
        return (f"PipelineTrace(spans={self.span_count}, "
                f"total={self.total_seconds * 1e3:.2f}ms)")


def _walk_depth(record: SpanRecord, depth: int):
    yield record, depth
    for child in record.children:
        yield from _walk_depth(child, depth + 1)
