"""Observability for the generation pipeline and runtime components.

Three pieces:

* **Tracing** (:mod:`.tracer`) — hierarchical spans with wall-clock
  timings, attributes and counters. Instrumented code calls the
  module-level :func:`span` helper; with no active tracer every call
  resolves to a shared no-op singleton (zero cost when disabled).
* **Metrics** (:mod:`.metrics`) — a process-wide registry of counters,
  gauges and histograms (p50/p95/max) fed by the broker, OPC UA stack,
  Kubernetes simulator and template engine.
* **Traces** (:mod:`.trace`) — :class:`PipelineTrace`, the frozen
  span-tree + metrics snapshot attached to generation results and
  exportable as JSON or a rendered tree report.

:class:`Summarizable` (:mod:`.summary`) is the shared
``summary()``/``to_json()`` protocol of all result-like objects.
"""

from .metrics import (Counter, Gauge, Histogram, METRICS, MetricsRegistry,
                      aggregate_snapshots, snapshot_delta)
from .summary import Summarizable
from .trace import PipelineTrace, SpanRecord, TRACE_SCHEMA_VERSION
from .tracer import (NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer,
                     activation, current_tracer, record_span, span)

__all__ = [
    "Counter", "Gauge", "Histogram", "METRICS", "MetricsRegistry",
    "NULL_SPAN", "NULL_TRACER", "NullTracer", "PipelineTrace", "Span",
    "SpanRecord", "Summarizable", "TRACE_SCHEMA_VERSION", "Tracer",
    "activation", "aggregate_snapshots", "current_tracer", "record_span",
    "snapshot_delta", "span",
]
