"""Process-wide metrics registry: counters, gauges, histograms.

Unlike spans (scoped to one traced operation), metrics accumulate for
the lifetime of the process and cover the runtime components too —
broker message counts, OPC UA session operations, pods deployed.
Instrumented modules bind their instruments once at import time::

    _PUBLISHED = METRICS.counter("broker.messages_published")
    ...
    _PUBLISHED.inc()

so the hot-path cost is a single integer add. ``METRICS.snapshot()``
returns a plain dict suitable for JSON export; tests call
``METRICS.reset()`` between scenarios.
"""

from __future__ import annotations

import json


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that goes up and down (current sessions, pods running)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Collects observations and reports count/mean/p50/p95/max."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def reset(self) -> None:
        self.values.clear()

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; 0.0 for an empty histogram."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict[str, float]:
        if not self.values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "max": 0.0}
        return {
            "count": len(self.values),
            "mean": sum(self.values) / len(self.values),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "max": max(self.values),
        }


class MetricsRegistry:
    """Keeps one instrument per name; idempotent accessors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict[str, object]:
        """All instruments as a JSON-serializable mapping."""
        out: dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.snapshot()
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.snapshot()
        for name, histogram in sorted(self._histograms.items()):
            out[name] = histogram.snapshot()
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        for group in (self._counters, self._gauges, self._histograms):
            for instrument in group.values():
                instrument.reset()


#: The process-wide registry all instrumented modules share.
METRICS = MetricsRegistry()
