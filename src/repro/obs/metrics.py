"""Process-wide metrics registry: counters, gauges, histograms.

Unlike spans (scoped to one traced operation), metrics accumulate for
the lifetime of the process and cover the runtime components too —
broker message counts, OPC UA session operations, pods deployed.
Instrumented modules bind their instruments once at import time::

    _PUBLISHED = METRICS.counter("broker.messages_published")
    ...
    _PUBLISHED.inc()

so the hot-path cost is a single integer add. ``METRICS.snapshot()``
returns a plain dict suitable for JSON export; tests call
``METRICS.reset()`` between scenarios.

Instruments are thread-safe: the serving layer (:mod:`repro.service`)
updates them from many request threads at once, and single-flight
accounting (``service.pipeline_executions`` vs ``service.requests``)
must be exact, not approximately right. Each instrument carries its
own lock; :func:`snapshot_delta` diffs two registry snapshots to
attribute activity to one request or one scenario.
"""

from __future__ import annotations

import json
import threading


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that goes up and down (current sessions, pods running)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Collects observations and reports count/mean/p50/p95/max."""

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(value)

    def reset(self) -> None:
        with self._lock:
            self.values.clear()

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; 0.0 for an empty histogram."""
        with self._lock:
            ordered = sorted(self.values)
        if not ordered:
            return 0.0
        rank = max(0, min(len(ordered) - 1,
                          round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            values = list(self.values)
        if not values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "max": 0.0}
        ordered = sorted(values)

        def rank(fraction: float) -> float:
            return ordered[max(0, min(len(ordered) - 1,
                                      round(fraction * (len(ordered) - 1))))]

        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": rank(0.50),
            "p95": rank(0.95),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """Keeps one instrument per name; idempotent accessors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict[str, object]:
        """All instruments as a JSON-serializable mapping."""
        out: dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.snapshot()
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.snapshot()
        for name, histogram in sorted(self._histograms.items()):
            out[name] = histogram.snapshot()
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        for group in (self._counters, self._gauges, self._histograms):
            for instrument in group.values():
                instrument.reset()


#: The process-wide registry all instrumented modules share.
METRICS = MetricsRegistry()


def snapshot_delta(before: dict[str, object],
                   after: dict[str, object]) -> dict[str, object]:
    """What changed between two :meth:`MetricsRegistry.snapshot` captures.

    The registry is process-wide, so attributing activity to one request
    (or one test scenario) means snapshotting around it and diffing::

        before = METRICS.snapshot()
        ...handle the request...
        delta = snapshot_delta(before, METRICS.snapshot())

    Counters and gauges diff numerically; histograms report how many new
    observations landed (``{"count": n}``). Unchanged instruments are
    omitted, so the delta reads as "what this request did": e.g. a
    single-flight follower shows no ``service.pipeline_executions``
    while the leader shows ``1``.
    """
    delta: dict[str, object] = {}
    for name, value in after.items():
        prev = before.get(name)
        if isinstance(value, dict):  # histogram snapshot
            prev_count = prev.get("count", 0) if isinstance(prev, dict) \
                else 0
            grew = value.get("count", 0) - prev_count
            if grew:
                delta[name] = {"count": grew}
        elif isinstance(value, (int, float)):
            base = prev if isinstance(prev, (int, float)) else 0
            if value != base:
                delta[name] = value - base
        elif value != prev:
            delta[name] = value
    return delta


def aggregate_snapshots(
        snapshots: list[dict[str, object]]) -> dict[str, object]:
    """Merge per-process registry snapshots into one fleet view.

    The sharded serving router calls each worker's ``/metrics`` and
    presents the union: counters and gauges **sum exactly** (each worker
    process owns its own registry, so there is nothing to double-count),
    and histograms merge as:

    * ``count`` — exact sum;
    * ``mean`` — exact count-weighted mean;
    * ``max`` — exact max;
    * ``p50``/``p95`` — count-weighted average of the per-worker
      percentiles. This is an *approximation* (true fleet percentiles
      need the raw observations, which workers don't export); it is
      exact when shards see identically distributed latencies and
      bounded by the per-worker extremes otherwise.

    A name missing from some snapshots contributes only where present.
    """
    merged: dict[str, object] = {}
    histogram_counts: dict[str, int] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if isinstance(value, dict):  # histogram snapshot
                count = int(value.get("count", 0))
                current = merged.get(name)
                if not isinstance(current, dict):
                    current = {"count": 0, "mean": 0.0, "p50": 0.0,
                               "p95": 0.0, "max": 0.0}
                    merged[name] = current
                    histogram_counts[name] = 0
                if count == 0:
                    continue
                seen = histogram_counts[name]
                total = seen + count
                for field in ("mean", "p50", "p95"):
                    current[field] = (
                        (current[field] * seen
                         + float(value.get(field, 0.0)) * count) / total)
                current["max"] = max(current["max"],
                                     float(value.get("max", 0.0)))
                current["count"] = total
                histogram_counts[name] = total
            elif isinstance(value, (int, float)):
                base = merged.get(name, 0)
                merged[name] = (base if isinstance(base, (int, float))
                                else 0) + value
            else:  # non-numeric oddity: last writer wins
                merged[name] = value
    return merged
