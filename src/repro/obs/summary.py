"""The ``summary() -> dict`` / ``to_json()`` reporting protocol.

Every result-like object the toolchain produces — generation results,
incremental regeneration results, validation reports, pipeline traces —
mixes this in so the CLI and benchmarks can treat them uniformly
instead of special-casing each type.
"""

from __future__ import annotations

import json


class Summarizable:
    """Mixin: implement :meth:`summary`, inherit :meth:`to_json`."""

    def summary(self) -> dict[str, object]:
        """A flat, JSON-serializable digest of this object."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement summary()")

    def to_json(self, *, indent: int | None = 2) -> str:
        """The summary as a JSON document (override for richer exports)."""
        return json.dumps(self.summary(), indent=indent, default=str)
