"""Hierarchical tracing spans for the generation pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
instrumented phase of the pipeline (``parse``, ``resolve``,
``topology``, ``step1``, ``render:<file>``, ...). Spans nest through a
stack kept by the tracer, carry wall-clock duration, free-form
attributes and integer counters, and are later frozen into a
:class:`~repro.obs.trace.PipelineTrace` for export.

Instrumented code never holds a tracer reference: it calls the
module-level :func:`span` helper, which looks up the ambient tracer in
a :class:`contextvars.ContextVar`. When no tracer is active the helper
returns a shared :data:`NULL_SPAN` singleton whose every method is a
no-op, so instrumentation costs one context-variable read per span and
allocates nothing — the "zero cost when disabled" contract.

Usage::

    tracer = Tracer()
    with tracer.activate():
        with span("parse", file="plant.sysml") as s:
            tokens = tokenize(...)
            s.set("tokens", len(tokens))
    print(tracer.trace().render())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar


class Span:
    """One timed phase; a node in the trace tree."""

    __slots__ = ("name", "attributes", "counters", "children",
                 "started", "duration", "_tracer")

    #: Real spans record; call sites can gate expensive attributes on this.
    enabled = True

    def __init__(self, name: str, attributes: dict, tracer: "Tracer"):
        self.name = name
        self.attributes = attributes
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.started = 0.0
        self.duration = 0.0
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.started
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def set(self, key: str, value: object) -> None:
        """Attach an attribute (element counts, file names, bytes...)."""
        self.attributes[key] = value

    def incr(self, key: str, amount: int = 1) -> None:
        """Bump a per-span counter."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"children={len(self.children)})")


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass

    def incr(self, key: str, amount: int = 1) -> None:
        pass

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class NullTracer:
    """The default ambient tracer: every span is the no-op singleton."""

    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return NULL_SPAN

    def attach(self, span) -> None:
        pass

    @contextmanager
    def activate(self):
        """Deactivate tracing in the enclosed block."""
        token = _ACTIVE_TRACER.set(self)
        try:
            yield self
        finally:
            _ACTIVE_TRACER.reset(token)

    def trace(self):
        return None


NULL_TRACER = NullTracer()

_ACTIVE_TRACER: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_obs_tracer", default=NULL_TRACER)


class Tracer:
    """Collects a forest of spans for one traced operation."""

    enabled = True

    def __init__(self, name: str = "pipeline"):
        self.name = name
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span lifecycle (driven by Span.__enter__/__exit__) ----------------

    def span(self, name: str, **attributes) -> Span:
        return Span(name, attributes, self)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate exceptions unwinding several spans out of order
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def attach(self, span: Span) -> None:
        """Adopt an already-finished span as a child of the open span.

        Worker pools record spans off-thread (where the ambient tracer
        is not active) and fold them back here, so parallel phases keep
        per-unit timings in the exported :class:`PipelineTrace`.
        """
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- activation ---------------------------------------------------------

    @contextmanager
    def activate(self):
        """Make this tracer the ambient one for the enclosed block."""
        token = _ACTIVE_TRACER.set(self)
        try:
            yield self
        finally:
            _ACTIVE_TRACER.reset(token)

    # -- export ------------------------------------------------------------

    def trace(self):
        """Freeze the recorded spans into a :class:`PipelineTrace`."""
        from .trace import PipelineTrace
        return PipelineTrace.from_tracer(self)


def current_tracer() -> Tracer | NullTracer:
    """The ambient tracer (the :data:`NULL_TRACER` when none is active)."""
    return _ACTIVE_TRACER.get()


def span(name: str, **attributes) -> Span | _NullSpan:
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    return _ACTIVE_TRACER.get().span(name, **attributes)


def record_span(name: str, seconds: float, **attributes) -> None:
    """Attach a pre-timed span to the ambient tracer.

    Used when the work happened somewhere the ambient tracer could not
    follow (a worker thread or process): the caller measured *seconds*
    itself and folds the result back into the trace tree after the fact.
    No-op when tracing is off.
    """
    tracer = _ACTIVE_TRACER.get()
    if not tracer.enabled:
        return
    recorded = tracer.span(name, **attributes)
    recorded.duration = seconds
    tracer.attach(recorded)


@contextmanager
def activation(tracer: Tracer | None):
    """Activate *tracer* if given, else keep the ambient one.

    Yields the effective tracer either way — the pattern pipeline entry
    points use to honour both an explicit ``options.tracer`` and a
    tracer activated further up the call stack (e.g. by the CLI).
    """
    if tracer is not None:
        with tracer.activate():
            yield tracer
    else:
        yield _ACTIVE_TRACER.get()
