"""Step 1a: per-machine intermediate JSON.

"The tool explores the represented ISA-95 topology of the manufacturing
system, and generates a JSON file for each Machine. The JSON file
contains the information needed to configure their respective OPC UA
server and the connection parameters with the machine drivers."
"""

from __future__ import annotations

from ..isa95.levels import FactoryTopology, MachineInfo
from ..templates.engine import k8s_name

#: Port every workcell OPC UA server listens on inside its pod.
WORKCELL_SERVER_PORT = 4840


def workcell_endpoint(workcell: str) -> str:
    """In-cluster endpoint of a workcell's OPC UA server."""
    return f"opc.tcp://{k8s_name(workcell)}:{WORKCELL_SERVER_PORT}"


def machine_config(machine: MachineInfo,
                   topology: FactoryTopology) -> dict:
    """The intermediate JSON for one machine."""
    driver = machine.driver
    return {
        "machine": machine.name,
        "machine_type": machine.type_name,
        "workcell": machine.workcell,
        "hierarchy": {
            "enterprise": topology.enterprise,
            "site": topology.site,
            "area": topology.area,
            "production_line": _line_of(machine, topology),
        },
        "opcua_server": {
            "endpoint": workcell_endpoint(machine.workcell),
            "namespace_uri": f"urn:factory:{k8s_name(machine.name)}",
            "browse_root": machine.name,
        },
        "driver": {
            "name": driver.name if driver else "",
            "protocol": driver.protocol if driver else "",
            "is_generic": driver.is_generic if driver else False,
            "parameters": dict(driver.parameters) if driver else {},
        },
        "variables": [
            {
                "name": variable.name,
                "data_type": variable.data_type,
                "category": variable.category,
                "unit": variable.unit,
                "node_id": f"ns=2;s={machine.name}/data/{variable.name}",
            }
            for variable in machine.variables
        ],
        "methods": [
            {
                "name": service.name,
                "node_id": f"ns=2;s={machine.name}/services/{service.name}",
                "inputs": [{"name": a.name, "data_type": a.data_type}
                           for a in service.inputs],
                "outputs": [{"name": a.name, "data_type": a.data_type}
                            for a in service.outputs],
            }
            for service in machine.services
        ],
    }


def workcell_server_config(workcell_name: str,
                           machine_configs: list[dict]) -> dict:
    """Aggregate machine JSONs into one OPC UA server config per workcell.

    This is why the ICE-lab run yields 6 OPC UA servers: one per
    workcell, each exposing every machine of that cell.
    """
    return {
        "server": f"{k8s_name(workcell_name)}-opcua-server",
        "workcell": workcell_name,
        "endpoint": workcell_endpoint(workcell_name),
        "port": WORKCELL_SERVER_PORT,
        "machines": [
            {
                "machine": config["machine"],
                "driver": config["driver"],
                "browse_root": config["opcua_server"]["browse_root"],
                "variables": config["variables"],
                "methods": config["methods"],
            }
            for config in machine_configs
        ],
    }


def _line_of(machine: MachineInfo, topology: FactoryTopology) -> str:
    for workcell in topology.workcells:
        if workcell.name == machine.workcell:
            return workcell.production_line
    return ""
