"""Step 1b: per-group OPC UA client configuration JSON.

Each client module connects the machines of its group (all hosted on
their workcells' OPC UA servers) to the message broker: it subscribes
to every variable and republishes on the ISA-95 topic layout, and it
serves broker-side method invocation requests by forwarding them as UA
calls.
"""

from __future__ import annotations

from ..isa95.levels import FactoryTopology
from ..templates.engine import k8s_name
from .grouping import ClientGroup
from .machine_config import workcell_endpoint


def topic_root(topology: FactoryTopology) -> str:
    """Base topic level for the factory, derived from the hierarchy."""
    area = k8s_name(topology.area or "factory")
    line = k8s_name(topology.production_lines[0]
                    if topology.production_lines else "line")
    return f"{area}/{line}"


def client_config(group: ClientGroup, topology: FactoryTopology,
                  broker_url: str = "mqtt://broker:1883") -> dict:
    """The intermediate JSON for one OPC UA client module."""
    root = topic_root(topology)
    machines = []
    for machine in group.machines:
        base_topic = f"{root}/{k8s_name(machine.workcell)}/{machine.name}"
        machines.append({
            "machine": machine.name,
            "workcell": machine.workcell,
            "server_endpoint": workcell_endpoint(machine.workcell),
            "data_topic": f"{base_topic}/data",
            "service_topic": f"{base_topic}/services",
            "subscriptions": [
                {
                    "variable": variable.name,
                    "node_id": f"ns=2;s={machine.name}/data/{variable.name}",
                    "topic": f"{base_topic}/data/{variable.name}",
                }
                for variable in machine.variables
            ],
            "methods": [
                {
                    "method": service.name,
                    "node_id": (f"ns=2;s={machine.name}/services/"
                                f"{service.name}"),
                    "topic": f"{base_topic}/services/{service.name}",
                    "input_count": len(service.inputs),
                }
                for service in machine.services
            ],
        })
    return {
        "client": group.name,
        "capacity": group.capacity,
        "assigned_points": group.points,
        "oversized": group.oversized,
        "broker": {"url": broker_url, "client_id": group.name},
        "topic_root": root,
        "machines": machines,
    }
