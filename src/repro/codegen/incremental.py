"""Incremental regeneration.

Two generations of API live here.

:class:`IncrementalEngine` is the current one: it owns a
:class:`~repro.sysml.ModelSession` and turns each source revision into
a :class:`~repro.codegen.pipeline.GenerationResult` by re-elaborating
only the machines whose anchors the session reported dirty — untouched
artifacts are byte-reused from the previous result (grouping is
re-solved only when the capacity arithmetic actually changed), and the
result's ``provenance`` says exactly which artifact was reused vs
regenerated. Any edit the engine cannot localize (hierarchy
restructuring, definition churn, renames) falls back to a full
pipeline run, which still replays per-node cache entries.

:func:`regenerate` is the legacy diff-then-classify API (full re-run,
manifests classified afterwards); it keeps working one release cycle
behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace

from ..isa95.levels import FactoryTopology, MachineInfo, WorkcellInfo
from ..isa95.topology import TopologyExtractor, extract_topology
from ..obs import METRICS, Summarizable, span
from ..sysml.depgraph import find_by_path
from ..sysml.diff import ModelDiff, diff_models
from ..sysml.elements import Model, PartUsage
from ..sysml.incremental import ModelSession, ModelUpdate
from .client_config import client_config
from .grouping import ClientGroup, group_machines
from .machine_config import workcell_server_config
from .options import PipelineOptions, options_from_legacy_kwargs
from .pipeline import GenerationPipeline, GenerationResult
from .storage_config import storage_config

_REUSED = METRICS.counter("incremental.manifests_reused")
_REGENERATED = METRICS.counter("incremental.manifests_regenerated")
_PARTIAL_RUNS = METRICS.counter("incremental.partial_runs")
_FULL_RUNS = METRICS.counter("incremental.full_runs")
_CLEAN_RUNS = METRICS.counter("incremental.clean_runs")


@dataclass
class IncrementalResult(Summarizable):
    """Outcome of an incremental regeneration."""

    result: GenerationResult
    diff: ModelDiff
    changed_machines: list[str] = field(default_factory=list)
    regenerated_manifests: list[str] = field(default_factory=list)
    reused_manifests: list[str] = field(default_factory=list)

    @property
    def fully_reused(self) -> bool:
        return not self.regenerated_manifests

    def summary(self) -> dict[str, object]:
        return {
            "model_changes": len(self.diff),
            "changed_machines": list(self.changed_machines),
            "regenerated": len(self.regenerated_manifests),
            "reused": len(self.reused_manifests),
        }


def _machine_signature(machine: MachineInfo) -> tuple:
    driver = machine.driver
    return (
        machine.name,
        machine.workcell,
        tuple((v.name, v.data_type, v.category) for v in machine.variables),
        tuple((s.name,
               tuple((a.name, a.data_type) for a in s.inputs),
               tuple((a.name, a.data_type) for a in s.outputs))
              for s in machine.services),
        (driver.protocol, tuple(sorted(
            (k, str(v)) for k, v in driver.parameters.items())))
        if driver else None,
    )


def changed_machine_names(old_topology: FactoryTopology,
                          new_topology: FactoryTopology) -> list[str]:
    """Machines whose extracted content differs between two topologies."""
    old_signatures = {m.name: _machine_signature(m)
                      for m in old_topology.machines}
    new_signatures = {m.name: _machine_signature(m)
                      for m in new_topology.machines}
    changed = set()
    for name in old_signatures.keys() | new_signatures.keys():
        if old_signatures.get(name) != new_signatures.get(name):
            changed.add(name)
    return sorted(changed)


def regenerate(previous: GenerationResult, old_model: Model,
               new_model: Model,
               pipeline: GenerationPipeline | None = None
               ) -> IncrementalResult:
    """Regenerate configuration for *new_model*, reusing what it can.

    The returned :class:`GenerationResult` is complete (fresh topology,
    fresh groups); what "incremental" buys is the classification of
    manifests into regenerated vs reused, with reused manifest text
    taken byte-identical from *previous* so unchanged components do not
    redeploy.

    .. deprecated:: this full-re-run API is superseded by
       :class:`IncrementalEngine`, which skips the re-run entirely for
       clean subtrees.
    """
    warnings.warn(
        "regenerate() re-runs the full pipeline and only classifies "
        "manifests afterwards; use IncrementalEngine for true "
        "dirty-subtree regeneration", DeprecationWarning, stacklevel=2)
    pipeline = pipeline or GenerationPipeline()
    with span("incremental") as inc:
        diff = diff_models(old_model, new_model)
        new_topology = extract_topology(new_model)
        changed = changed_machine_names(previous.topology, new_topology)
        fresh = pipeline.run_on_topology(new_topology)

        changed_set = set(changed)
        changed_workcells = {m.workcell for m in new_topology.machines
                             if m.name in changed_set}
        changed_workcells |= {m.workcell
                              for m in previous.topology.machines
                              if m.name in changed_set}
        # groups whose membership or member contents changed
        changed_groups: set[str] = set()
        previous_membership = {tuple(c["machines"] and
                                     [m["machine"]
                                      for m in c["machines"]]):
                               c["client"]
                               for c in previous.client_configs}
        for config in fresh.client_configs:
            members = tuple(m["machine"] for m in config["machines"])
            if previous_membership.get(members) != config["client"] or \
                    changed_set.intersection(members):
                changed_groups.add(config["client"])

        regenerated: list[str] = []
        reused: list[str] = []
        merged_manifests: dict[str, str] = {}
        for filename, text in fresh.manifests.items():
            previous_text = previous.manifests.get(filename)
            if previous_text == text:
                merged_manifests[filename] = previous_text
                reused.append(filename)
            else:
                merged_manifests[filename] = text
                regenerated.append(filename)
        fresh.manifests = merged_manifests
        fresh.invalidate_size_cache()
        _REUSED.inc(len(reused))
        _REGENERATED.inc(len(regenerated))
        inc.set("changed_machines", len(changed))
        inc.set("regenerated", len(regenerated))
        inc.set("reused", len(reused))
    return IncrementalResult(
        result=fresh,
        diff=diff,
        changed_machines=changed,
        regenerated_manifests=sorted(regenerated),
        reused_manifests=sorted(reused),
    )


# -- the incremental engine --------------------------------------------------

class _EngineFallback(Exception):
    """Raised internally when an edit cannot be localized to machines."""


def _grouping_signature(topology: FactoryTopology, capacity: int,
                        algorithm: str) -> tuple:
    """Exactly the inputs the bin packing reads: the algorithm,
    capacity, plus each machine's (name, point count). Anything else —
    variable renames, driver params, hierarchy labels — cannot move a
    machine between groups, so equal signatures mean equal membership.
    """
    return (capacity, algorithm,
            tuple(sorted((m.name, m.point_count)
                         for m in topology.machines)))


class IncrementalEngine:
    """Long-lived source-to-manifests generator with dirty-subtree reuse.

    Feed it successive revisions of the model sources via
    :meth:`generate`; each call returns a complete
    :class:`GenerationResult` whose ``provenance`` maps every artifact
    to ``"reused"`` (byte-identical to the previous revision's) or
    ``"regenerated"``. Results share unchanged config/manifest objects
    with earlier results — treat them as read-only.
    """

    def __init__(self, options: PipelineOptions | None = None, **legacy):
        self.options = options_from_legacy_kwargs(
            options, legacy, api="IncrementalEngine")
        self.pipeline = GenerationPipeline(self.options)
        self.session: ModelSession | None = None
        #: The :class:`ModelUpdate` behind the last :meth:`generate`.
        self.last_update: ModelUpdate | None = None
        self.previous: GenerationResult | None = None
        self._machine_paths: dict[str, str] = {}
        self._driver_paths: dict[str, str] = {}
        self._signature: tuple | None = None

    @property
    def model(self) -> Model | None:
        return self.session.model if self.session is not None else None

    def generate(self, *texts: str,
                 filenames: list[str] | None = None) -> GenerationResult:
        """Generate (or regenerate) the full configuration for *texts*."""
        if self.session is None:
            self.session = ModelSession(
                *texts, filenames=filenames, cache=self.pipeline.cache,
                jobs=self.options.jobs)
            self.last_update = ModelUpdate(full_rebuild=True)
            _FULL_RUNS.inc()
            return self._full_run()
        update = self.session.update(*texts, filenames=filenames)
        self.last_update = update
        if not self.options.incremental or update.full_rebuild:
            _FULL_RUNS.inc()
            return self._full_run()
        if update.clean:
            _CLEAN_RUNS.inc()
            return self._reuse_everything()
        try:
            with span("engine-incremental") as s:
                result = self._partial_run(update)
                s.set("regenerated",
                      sum(1 for state in result.provenance.values()
                          if state == "regenerated"))
        except Exception:  # noqa: BLE001 - correctness safety valve
            _FULL_RUNS.inc()
            return self._full_run()
        _PARTIAL_RUNS.inc()
        return result

    # -- full / clean paths --------------------------------------------------

    def _full_run(self) -> GenerationResult:
        result = self.pipeline.run_on_model(self.session.model)
        self._retain(result)
        return result

    def _reuse_everything(self) -> GenerationResult:
        started = time.perf_counter()
        previous = self.previous
        result = replace(
            previous, trace=None,
            provenance={artifact: "reused"
                        for artifact in previous.artifact_ids()})
        result.generation_seconds = time.perf_counter() - started
        return result

    def _retain(self, result: GenerationResult) -> None:
        self.previous = result
        machines = result.topology.machines
        self._machine_paths = {m.name: m.node_path for m in machines
                               if m.node_path}
        self._driver_paths = {m.name: m.driver.node_path for m in machines
                              if m.driver is not None
                              and m.driver.node_path}
        self._signature = _grouping_signature(result.topology,
                                              self.options.capacity,
                                              self.options.grouping)

    # -- the partial path ----------------------------------------------------

    def _dirty_machines(self, update: ModelUpdate) -> set[str]:
        """Machines owning every changed anchor — or fall back.

        Every changed anchor must lie inside a known machine or driver
        subtree; anything else (hierarchy edits, definition changes,
        renames, new parts) means the edit's blast radius is not
        machine-local and the full pipeline decides what to reuse.
        """
        dirty: set[str] = set()
        for key in update.changed_anchors:
            matched = False
            for name, path in self._machine_paths.items():
                if key.is_under(path):
                    dirty.add(name)
                    matched = True
            for name, path in self._driver_paths.items():
                if key.is_under(path):
                    dirty.add(name)
                    matched = True
            if not matched:
                raise _EngineFallback(f"non-machine change at {key}")
        return dirty

    def _reextract(self, dirty: set[str]) -> FactoryTopology:
        """The previous topology with dirty machines re-elaborated."""
        model = self.session.model
        previous = self.previous.topology
        extractor = TopologyExtractor(model)
        workcells = []
        for workcell in previous.workcells:
            machines = []
            for machine in workcell.machines:
                if machine.name not in dirty:
                    machines.append(machine)
                    continue
                usage = find_by_path(model,
                                     self._machine_paths[machine.name])
                if not isinstance(usage, PartUsage):
                    raise _EngineFallback(
                        f"machine path vanished: {machine.name}")
                machines.append(
                    extractor.extract_machine_at(usage, workcell.name))
            workcells.append(WorkcellInfo(
                name=workcell.name,
                production_line=workcell.production_line,
                machines=machines))
        return FactoryTopology(
            enterprise=previous.enterprise, site=previous.site,
            area=previous.area,
            production_lines=list(previous.production_lines),
            workcells=workcells)

    def _regroup(self, topology: FactoryTopology) -> list[ClientGroup]:
        """Re-solve grouping only when the capacity arithmetic changed;
        otherwise rebuild the retained membership around the current
        :class:`MachineInfo` objects (first-fit-decreasing is a pure
        function of the signature, so membership cannot differ)."""
        signature = _grouping_signature(topology, self.options.capacity,
                                        self.options.grouping)
        if signature == self._signature and self.previous.groups:
            by_name = {m.name: m for m in topology.machines}
            return [ClientGroup(index=group.index, capacity=group.capacity,
                                machines=[by_name[m.name]
                                          for m in group.machines],
                                oversized=group.oversized)
                    for group in self.previous.groups]
        return group_machines(topology.machines, self.options.capacity,
                              algorithm=self.options.grouping)

    def _partial_run(self, update: ModelUpdate) -> GenerationResult:
        started = time.perf_counter()
        previous = self.previous
        dirty = self._dirty_machines(update)
        topology = self._reextract(dirty)
        self.pipeline._validate(topology)
        node_keys = self.pipeline._node_fingerprints(self.session.model,
                                                     topology)
        result = GenerationResult(topology=topology)

        step1_started = time.perf_counter()
        for machine in topology.machines:
            if machine.name in dirty:
                config, cached = self.pipeline._machine_config_cached(
                    machine, topology, node_keys)
                if config == previous.machine_configs.get(machine.name):
                    config = previous.machine_configs[machine.name]
                    state = "reused"
                else:
                    state = "reused" if cached else "regenerated"
            else:
                config = previous.machine_configs[machine.name]
                state = "reused"
            result.machine_configs[machine.name] = config
            result.provenance[f"machine:{machine.name}"] = state

        render_tasks: list[tuple[str, str, dict, int | None, str]] = []
        for workcell in topology.workcells:
            if not workcell.machines:
                continue
            reusable = all(
                result.machine_configs[m.name]
                is previous.machine_configs.get(m.name)
                for m in workcell.machines) \
                and workcell.name in previous.server_configs
            if reusable:
                server = previous.server_configs[workcell.name]
                state = "reused"
            else:
                server = workcell_server_config(
                    workcell.name,
                    [result.machine_configs[m.name]
                     for m in workcell.machines])
                state = "regenerated"
            result.server_configs[workcell.name] = server
            result.provenance[f"server:{workcell.name}"] = state
            render_tasks.append(("opcua-server", server["server"], server,
                                 server["port"], state))

        result.groups = self._regroup(topology)
        previous_clients = {c["client"]: c
                            for c in previous.client_configs}
        previous_storage = {c["historian"]: c
                            for c in previous.storage_configs}
        previous_members = {g.name: g.machine_names
                            for g in previous.groups}
        client_tasks: list[tuple[str, str, dict, int | None, str]] = []
        storage_tasks: list[tuple[str, str, dict, int | None, str]] = []
        for group in result.groups:
            member_reuse = previous_members.get(group.name) \
                == group.machine_names and all(
                result.machine_configs.get(m.name)
                is previous.machine_configs.get(m.name)
                for m in group.machines)
            client = previous_clients.get(group.name)
            if member_reuse and client is not None:
                state = "reused"
            else:
                client = client_config(group, topology,
                                       self.options.broker_url)
                if client == previous_clients.get(client["client"]):
                    client = previous_clients[client["client"]]
                    state = "reused"
                else:
                    state = "regenerated"
            result.client_configs.append(client)
            result.provenance[f"client:{client['client']}"] = state
            client_tasks.append(("opcua-client", client["client"], client,
                                 None, state))
            storage = previous_storage.get(f"historian-{group.index:02d}")
            if member_reuse and storage is not None:
                state = "reused"
            else:
                storage = storage_config(group, topology,
                                         self.options.broker_url,
                                         self.options.database_url)
                if storage == previous_storage.get(storage["historian"]):
                    storage = previous_storage[storage["historian"]]
                    state = "reused"
                else:
                    state = "regenerated"
            result.storage_configs.append(storage)
            result.provenance[f"storage:{storage['historian']}"] = state
            storage_tasks.append(("historian", storage["historian"],
                                  storage, None, state))
        result.step1_seconds = time.perf_counter() - step1_started

        step2_started = time.perf_counter()
        reused_count = 0
        for kind, name, config, port, state in (render_tasks
                                                + client_tasks
                                                + storage_tasks):
            filename = f"{name}.yaml"
            previous_text = previous.manifests.get(filename)
            if state == "reused" and previous_text is not None:
                result.manifests[filename] = previous_text
                result.provenance[f"manifest:{filename}"] = "reused"
                reused_count += 1
                continue
            text, _cached = self.pipeline._render(kind, name, config,
                                                  port=port)
            if text == previous_text:
                # regenerated config happened to render identically
                result.manifests[filename] = previous_text
                result.provenance[f"manifest:{filename}"] = "reused"
                reused_count += 1
            else:
                result.manifests[filename] = text
                result.provenance[f"manifest:{filename}"] = "regenerated"
        result.step2_seconds = time.perf_counter() - step2_started
        _REUSED.inc(reused_count)
        _REGENERATED.inc(len(result.manifests) - reused_count)

        result.generation_seconds = time.perf_counter() - started
        self._retain(result)
        return result
