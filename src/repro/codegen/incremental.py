"""Incremental regeneration.

Given a previous generation result and an updated model, regenerate only
the configuration files affected by the change: the touched machines'
configs, their workcells' server configs, and any client/storage group
whose membership or contents changed. Untouched manifests are reused
verbatim — what a deployment pipeline needs to avoid restarting every
pod on every model edit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa95.levels import FactoryTopology, MachineInfo
from ..isa95.topology import extract_topology
from ..obs import METRICS, Summarizable, span
from ..sysml.diff import ModelDiff, diff_models
from ..sysml.elements import Model
from .pipeline import GenerationPipeline, GenerationResult

_REUSED = METRICS.counter("incremental.manifests_reused")
_REGENERATED = METRICS.counter("incremental.manifests_regenerated")


@dataclass
class IncrementalResult(Summarizable):
    """Outcome of an incremental regeneration."""

    result: GenerationResult
    diff: ModelDiff
    changed_machines: list[str] = field(default_factory=list)
    regenerated_manifests: list[str] = field(default_factory=list)
    reused_manifests: list[str] = field(default_factory=list)

    @property
    def fully_reused(self) -> bool:
        return not self.regenerated_manifests

    def summary(self) -> dict[str, object]:
        return {
            "model_changes": len(self.diff),
            "changed_machines": list(self.changed_machines),
            "regenerated": len(self.regenerated_manifests),
            "reused": len(self.reused_manifests),
        }


def _machine_signature(machine: MachineInfo) -> tuple:
    driver = machine.driver
    return (
        machine.name,
        machine.workcell,
        tuple((v.name, v.data_type, v.category) for v in machine.variables),
        tuple((s.name,
               tuple((a.name, a.data_type) for a in s.inputs),
               tuple((a.name, a.data_type) for a in s.outputs))
              for s in machine.services),
        (driver.protocol, tuple(sorted(
            (k, str(v)) for k, v in driver.parameters.items())))
        if driver else None,
    )


def changed_machine_names(old_topology: FactoryTopology,
                          new_topology: FactoryTopology) -> list[str]:
    """Machines whose extracted content differs between two topologies."""
    old_signatures = {m.name: _machine_signature(m)
                      for m in old_topology.machines}
    new_signatures = {m.name: _machine_signature(m)
                      for m in new_topology.machines}
    changed = set()
    for name in old_signatures.keys() | new_signatures.keys():
        if old_signatures.get(name) != new_signatures.get(name):
            changed.add(name)
    return sorted(changed)


def regenerate(previous: GenerationResult, old_model: Model,
               new_model: Model,
               pipeline: GenerationPipeline | None = None
               ) -> IncrementalResult:
    """Regenerate configuration for *new_model*, reusing what it can.

    The returned :class:`GenerationResult` is complete (fresh topology,
    fresh groups); what "incremental" buys is the classification of
    manifests into regenerated vs reused, with reused manifest text
    taken byte-identical from *previous* so unchanged components do not
    redeploy.
    """
    pipeline = pipeline or GenerationPipeline()
    with span("incremental") as inc:
        diff = diff_models(old_model, new_model)
        new_topology = extract_topology(new_model)
        changed = changed_machine_names(previous.topology, new_topology)
        fresh = pipeline.run_on_topology(new_topology)

        changed_set = set(changed)
        changed_workcells = {m.workcell for m in new_topology.machines
                             if m.name in changed_set}
        changed_workcells |= {m.workcell
                              for m in previous.topology.machines
                              if m.name in changed_set}
        # groups whose membership or member contents changed
        changed_groups: set[str] = set()
        previous_membership = {tuple(c["machines"] and
                                     [m["machine"]
                                      for m in c["machines"]]):
                               c["client"]
                               for c in previous.client_configs}
        for config in fresh.client_configs:
            members = tuple(m["machine"] for m in config["machines"])
            if previous_membership.get(members) != config["client"] or \
                    changed_set.intersection(members):
                changed_groups.add(config["client"])

        regenerated: list[str] = []
        reused: list[str] = []
        merged_manifests: dict[str, str] = {}
        for filename, text in fresh.manifests.items():
            previous_text = previous.manifests.get(filename)
            if previous_text == text:
                merged_manifests[filename] = previous_text
                reused.append(filename)
            else:
                merged_manifests[filename] = text
                regenerated.append(filename)
        fresh.manifests = merged_manifests
        fresh.invalidate_size_cache()
        _REUSED.inc(len(reused))
        _REGENERATED.inc(len(regenerated))
        inc.set("changed_machines", len(changed))
        inc.set("regenerated", len(regenerated))
        inc.set("reused", len(reused))
    return IncrementalResult(
        result=fresh,
        diff=diff,
        changed_machines=changed,
        regenerated_manifests=sorted(regenerated),
        reused_manifests=sorted(reused),
    )
