"""The canonical pipeline configuration object.

:class:`PipelineOptions` replaces the keyword-argument sprawl that used
to live on :class:`~repro.codegen.pipeline.GenerationPipeline` and
:func:`~repro.codegen.pipeline.generate_configuration`. It is frozen
(safe to share between pipelines and threads), round-trips through
``to_dict``/``from_dict``, and carries the optional
:class:`~repro.obs.Tracer` that turns on pipeline telemetry.

The old per-call keyword arguments keep working through a shim that
emits :class:`DeprecationWarning`; see :func:`options_from_legacy_kwargs`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace

from ..cache import DEFAULT_CACHE_MAX_BYTES
from ..obs import Tracer
from .grouping import DEFAULT_CLIENT_CAPACITY


@dataclass(frozen=True)
class PipelineOptions:
    """Everything configurable about one generation pipeline run."""

    capacity: int = DEFAULT_CLIENT_CAPACITY
    #: Client bin-packing algorithm (``repro.codegen.grouping``):
    #: ``"first-fit"`` (default, byte-compatible) or ``"best-fit"``
    #: (never more clients than first-fit).
    grouping: str = "first-fit"
    namespace: str = "factory"
    broker_url: str = "mqtt://broker:1883"
    database_url: str = "ts://factorydb:8086"
    validate: bool = True
    #: Worker-pool width for the fan-out phases (per-machine configs,
    #: per-manifest renders); ``1`` keeps every phase serial, ``0``
    #: means one worker per CPU. Output is byte-identical either way.
    jobs: int = 1
    #: Artifact-cache directory; ``None`` disables caching.
    cache_dir: str | None = None
    #: LRU size bound of the artifact cache.
    cache_max_bytes: int = DEFAULT_CACHE_MAX_BYTES
    #: Allow incremental recomputation: when the model carries a node
    #: index / dependency graph (:class:`repro.sysml.ModelSession`),
    #: step-1 artifacts are keyed per node and the
    #: :class:`~repro.codegen.incremental.IncrementalEngine` may reuse
    #: artifacts across edits. Output bytes are identical either way.
    incremental: bool = True
    #: Tracer collecting the run's :class:`~repro.obs.PipelineTrace`;
    #: ``None`` leaves telemetry off (or inherits an ambient tracer).
    tracer: Tracer | None = field(default=None, compare=False)

    def replace(self, **changes) -> "PipelineOptions":
        """A copy with *changes* applied (frozen-dataclass update)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, object]:
        """Serializable form; the (unserializable) tracer is omitted."""
        return {
            "capacity": self.capacity,
            "grouping": self.grouping,
            "namespace": self.namespace,
            "broker_url": self.broker_url,
            "database_url": self.database_url,
            "validate": self.validate,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "cache_max_bytes": self.cache_max_bytes,
            "incremental": self.incremental,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object], *,
                  tracer: Tracer | None = None) -> "PipelineOptions":
        known = {f.name for f in fields(cls)} - {"tracer"}
        unknown = set(data) - known
        if unknown:
            raise TypeError(
                f"unknown pipeline option(s): {', '.join(sorted(unknown))}")
        return cls(tracer=tracer, **data)  # type: ignore[arg-type]


_LEGACY_KEYS = ("capacity", "namespace", "broker_url", "database_url",
                "validate", "tracer")


def options_from_legacy_kwargs(options: PipelineOptions | None,
                               kwargs: dict[str, object], *,
                               api: str) -> PipelineOptions:
    """Resolve the ``options=`` parameter against deprecated kwargs.

    Passing bare keyword arguments (the pre-``PipelineOptions`` API)
    still works but warns; mixing both styles is an error.
    """
    if not kwargs:
        return options if options is not None else PipelineOptions()
    unknown = set(kwargs) - set(_LEGACY_KEYS)
    if unknown:
        raise TypeError(
            f"{api}() got unexpected keyword argument(s): "
            f"{', '.join(sorted(unknown))}")
    if options is not None:
        raise TypeError(
            f"{api}() takes either 'options' or legacy keyword "
            f"arguments, not both")
    warnings.warn(
        f"passing {', '.join(sorted(kwargs))} to {api}() directly is "
        f"deprecated; pass options=PipelineOptions(...) instead",
        DeprecationWarning, stacklevel=3)
    return PipelineOptions(**kwargs)  # type: ignore[arg-type]
