"""Factory handbook generation.

The paper notes the generated configuration "would have been manually
written by engineers". The same holds for the plant documentation: this
module renders a Markdown operator handbook straight from the extracted
topology and the generation result — machine inventories, connection
parameters, topic layout, and the deployment map — so documentation can
never drift from the model either.
"""

from __future__ import annotations

from ..isa95.levels import FactoryTopology, MachineInfo
from .machine_config import workcell_endpoint
from .pipeline import GenerationResult


def machine_section(machine: MachineInfo) -> str:
    """Markdown section for one machine."""
    lines = [f"### {machine.name} ({machine.type_name})", ""]
    driver = machine.driver
    if driver is not None:
        lines.append(f"*Driver:* `{driver.protocol}` "
                     f"({'standardized' if driver.is_generic else 'proprietary'})")
        if driver.parameters:
            lines.append("")
            lines.append("| parameter | value |")
            lines.append("|---|---|")
            for name, value in sorted(driver.parameters.items()):
                lines.append(f"| `{name}` | `{value}` |")
    lines.append("")
    lines.append(f"*Variables ({len(machine.variables)}):*")
    lines.append("")
    lines.append("| variable | type | category | unit |")
    lines.append("|---|---|---|---|")
    for variable in machine.variables:
        lines.append(f"| `{variable.name}` | {variable.data_type} | "
                     f"{variable.category or '-'} | "
                     f"{variable.unit or '-'} |")
    lines.append("")
    lines.append(f"*Services ({len(machine.services)}):*")
    lines.append("")
    lines.append("| service | inputs | outputs |")
    lines.append("|---|---|---|")
    for service in machine.services:
        inputs = ", ".join(f"{a.name}: {a.data_type}"
                           for a in service.inputs) or "-"
        outputs = ", ".join(f"{a.name}: {a.data_type}"
                            for a in service.outputs) or "-"
        lines.append(f"| `{service.name}` | {inputs} | {outputs} |")
    lines.append("")
    return "\n".join(lines)


def topology_overview(topology: FactoryTopology) -> str:
    summary = topology.summary()
    lines = [
        "## Plant overview", "",
        f"- **Enterprise:** {topology.enterprise}",
        f"- **Site:** {topology.site}",
        f"- **Area:** {topology.area}",
        f"- **Production lines:** "
        f"{', '.join(topology.production_lines) or '-'}",
        f"- **Workcells:** {summary['workcells']}  "
        f"**Machines:** {summary['machines']}  "
        f"**Variables:** {summary['variables']}  "
        f"**Services:** {summary['services']}",
        "",
    ]
    return "\n".join(lines)


def deployment_section(result: GenerationResult) -> str:
    lines = ["## Deployed software stack", "",
             "| component | kind | covers |", "|---|---|---|"]
    for workcell_name, config in sorted(result.server_configs.items()):
        machines = ", ".join(m["machine"] for m in config["machines"])
        lines.append(f"| `{config['server']}` | OPC UA server | "
                     f"{machines} ({workcell_endpoint(workcell_name)}) |")
    for config in result.client_configs:
        machines = ", ".join(m["machine"] for m in config["machines"])
        oversized = " *(dedicated)*" if config["oversized"] else ""
        lines.append(f"| `{config['client']}` | OPC UA client | "
                     f"{machines}{oversized} |")
    for config in result.storage_configs:
        machines = ", ".join(config["machines"])
        lines.append(f"| `{config['historian']}` | historian | "
                     f"{machines} |")
    lines.append("")
    return "\n".join(lines)


def topics_section(result: GenerationResult) -> str:
    lines = ["## Broker topic layout", "",
             "Data topics (retained, one per variable):", "```"]
    for config in result.client_configs:
        for machine in config["machines"]:
            lines.append(f"{machine['data_topic']}/<variable>")
    lines.append("```")
    lines.append("")
    lines.append("Service topics (request/reply):")
    lines.append("```")
    for config in result.client_configs:
        for machine in config["machines"]:
            lines.append(f"{machine['service_topic']}/<service>")
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def generate_handbook(result: GenerationResult,
                      *, title: str = "Factory handbook") -> str:
    """The complete Markdown handbook for one generated configuration."""
    topology = result.topology
    parts = [f"# {title}", "",
             "*Generated from the SysML v2 model — do not edit by hand; "
             "regenerate instead.*", "",
             topology_overview(topology),
             deployment_section(result),
             topics_section(result)]
    for workcell in topology.workcells:
        if not workcell.machines:
            continue
        parts.append(f"## Workcell {workcell.name} "
                     f"(line {workcell.production_line})")
        parts.append("")
        for machine in workcell.machines:
            parts.append(machine_section(machine))
    return "\n".join(parts)
