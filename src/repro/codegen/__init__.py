"""Step 1+2 of the paper's pipeline: model -> JSON -> Kubernetes YAML.

Three backends consume the extracted ISA-95 topology:

* ``json``  — the per-client intermediate configuration files
  (:func:`machine_config` and friends, step 1 of the paper);
* ``yaml``  — the rendered Kubernetes manifests (step 2);
* ``pddl``  — the operations-planning domain/problem emission of
  :mod:`repro.planning` (kept in its own package — it pulls in the
  planner and the simulators — but registered here so the backend
  axis is visible in one place).
"""

from .client_config import client_config, topic_root
from .docs_gen import generate_handbook
from .incremental import (IncrementalEngine, IncrementalResult,
                          changed_machine_names, regenerate)
from .grouping import (ClientGroup, DEFAULT_CLIENT_CAPACITY,
                       GROUPING_ALGORITHMS, GroupingError, group_machines,
                       grouping_stats, lower_bound_clients)
from .machine_config import (WORKCELL_SERVER_PORT, machine_config,
                             workcell_endpoint, workcell_server_config)
from .options import PipelineOptions
from .pipeline import (COMPONENT_IMAGES, GenerationPipeline,
                       GenerationResult, generate_configuration)
from .storage_config import storage_config

#: The backend axis of the north star: every name here is one way the
#: extracted topology leaves the system. ``json``/``yaml`` live in
#: this package; ``pddl`` is :func:`repro.planning.plan_operations`.
CODEGEN_BACKENDS = ("json", "yaml", "pddl")

__all__ = [
    "CODEGEN_BACKENDS",
    "COMPONENT_IMAGES", "ClientGroup", "DEFAULT_CLIENT_CAPACITY",
    "GROUPING_ALGORITHMS",
    "IncrementalEngine", "IncrementalResult", "changed_machine_names",
    "generate_handbook",
    "regenerate", "PipelineOptions",
    "GenerationPipeline", "GenerationResult", "GroupingError",
    "WORKCELL_SERVER_PORT", "client_config", "generate_configuration",
    "group_machines", "grouping_stats", "lower_bound_clients",
    "machine_config", "storage_config", "topic_root", "workcell_endpoint",
    "workcell_server_config",
]
