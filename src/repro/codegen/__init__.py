"""Step 1+2 of the paper's pipeline: model -> JSON -> Kubernetes YAML."""

from .client_config import client_config, topic_root
from .docs_gen import generate_handbook
from .incremental import (IncrementalEngine, IncrementalResult,
                          changed_machine_names, regenerate)
from .grouping import (ClientGroup, DEFAULT_CLIENT_CAPACITY,
                       GROUPING_ALGORITHMS, GroupingError, group_machines,
                       grouping_stats, lower_bound_clients)
from .machine_config import (WORKCELL_SERVER_PORT, machine_config,
                             workcell_endpoint, workcell_server_config)
from .options import PipelineOptions
from .pipeline import (COMPONENT_IMAGES, GenerationPipeline,
                       GenerationResult, generate_configuration)
from .storage_config import storage_config

__all__ = [
    "COMPONENT_IMAGES", "ClientGroup", "DEFAULT_CLIENT_CAPACITY",
    "GROUPING_ALGORITHMS",
    "IncrementalEngine", "IncrementalResult", "changed_machine_names",
    "generate_handbook",
    "regenerate", "PipelineOptions",
    "GenerationPipeline", "GenerationResult", "GroupingError",
    "WORKCELL_SERVER_PORT", "client_config", "generate_configuration",
    "group_machines", "grouping_stats", "lower_bound_clients",
    "machine_config", "storage_config", "topic_root", "workcell_endpoint",
    "workcell_server_config",
]
