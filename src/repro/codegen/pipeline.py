"""The two-step generation pipeline (Section IV of the paper).

Step 1: SysML v2 model -> ISA-95 topology -> intermediate JSON files
        (one per machine; one OPC UA server config per workcell; one
        client config + one storage config per machine group).
Step 2: intermediate JSON -> Kubernetes YAML via templates.

:func:`generate_configuration` runs both steps, measures the generation
time, and reports the same quantities as the last row of Table I
(generation time, #OPC UA servers, #clients, configuration size).

The canonical entry point is ``generate_configuration(model,
options=PipelineOptions(...))``; the old keyword arguments keep working
through a :class:`DeprecationWarning` shim. When the options carry a
:class:`~repro.obs.Tracer` (or one is ambiently active), every phase is
recorded as a span — ``generate`` > ``topology`` / ``validate`` /
``step1`` (per machine, grouping) / ``step2`` (per rendered template) —
and the resulting :class:`~repro.obs.PipelineTrace` is attached to the
:class:`GenerationResult`.

Two execution accelerators hang off :class:`PipelineOptions`:

* ``jobs`` fans the independent units (per-machine configs in step 1,
  per-manifest renders in step 2) out over a worker pool via
  :mod:`repro.parallel` — results keep input order, so parallel output
  is byte-for-byte identical to serial;
* ``cache_dir`` enables the :mod:`repro.cache` artifact cache: the
  extracted topology and the whole result set are keyed on the model's
  source fingerprint, and each machine config / manifest is keyed on
  its own inputs, so warm runs replay artifacts instead of recomputing
  (hits/misses surface as ``cache.*`` counters in ``repro trace``).

**Reentrancy.** A :class:`GenerationPipeline` holds no per-run mutable
state — every run builds a fresh :class:`GenerationResult`, and the
shared :class:`~repro.cache.ArtifactCache` is thread-safe — so one
instance may serve concurrent ``run_on_model`` calls from many threads
(the :mod:`repro.service` layer does exactly this). The one exception
is a :class:`~repro.obs.Tracer` in the options: a tracer's span stack
belongs to a single run, so concurrent runs must not share one (the
service strips it; give each traced run its own tracer).
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..cache import ArtifactCache
from ..fingerprint import (RESULT_SALT, STEP1_NODE_SALT, STEP1_SALT,
                           STEP2_SALT, TOPOLOGY_SALT, fingerprint)
from ..isa95.levels import FactoryTopology, MachineInfo
from ..isa95.topology import extract_topology
from ..isa95.validation import validate_topology
from ..obs import PipelineTrace, Summarizable, activation, span
from ..parallel import map_ordered
from ..sysml.depgraph import node_dependency_fingerprints
from ..sysml.elements import Model
from ..sysml.errors import ValidationError
from ..templates.engine import k8s_name
from ..templates.library import get_template, template_source
from .client_config import client_config
from .grouping import ClientGroup, group_machines
from .machine_config import machine_config, workcell_server_config
from .options import PipelineOptions, options_from_legacy_kwargs
from .storage_config import storage_config

#: Container images of the deployed software stack components.
COMPONENT_IMAGES = {
    "opcua-server": "factory/opcua-server:1.4.2",
    "opcua-client": "factory/opcua-client:1.4.2",
    "historian": "factory/historian:1.2.0",
}

# Per-layer cache salts live in :mod:`repro.fingerprint` (see
# DESIGN.md, "Artifact cache"); bump one there whenever the
# corresponding generator's output format changes.


def _render_environment() -> dict[str, object]:
    """Everything besides configs that shapes manifest bytes — part of
    the whole-result cache key, so editing a template or bumping an
    image invalidates replayed runs."""
    from ..templates.library import TEMPLATE_SOURCES
    return {"images": COMPONENT_IMAGES,
            "templates": dict(TEMPLATE_SOURCES)}


@dataclass
class GenerationResult(Summarizable):
    """Everything the pipeline produced, plus metrics."""

    topology: FactoryTopology
    machine_configs: dict[str, dict] = field(default_factory=dict)
    server_configs: dict[str, dict] = field(default_factory=dict)
    client_configs: list[dict] = field(default_factory=list)
    storage_configs: list[dict] = field(default_factory=list)
    groups: list[ClientGroup] = field(default_factory=list)
    manifests: dict[str, str] = field(default_factory=dict)
    generation_seconds: float = 0.0
    step1_seconds: float = 0.0
    step2_seconds: float = 0.0
    #: Per-artifact provenance of this run: artifact id
    #: (``machine:NAME``, ``server:WORKCELL``, ``client:NAME``,
    #: ``storage:NAME``, ``manifest:FILE``) -> ``"reused"`` (replayed
    #: byte-identical from cache / previous result) or
    #: ``"regenerated"`` (computed this run).
    provenance: dict[str, str] = field(default_factory=dict, repr=False,
                                       compare=False)
    #: Per-phase telemetry of this run (None when tracing was off).
    trace: PipelineTrace | None = field(default=None, repr=False,
                                        compare=False)
    _size_cache: int | None = field(default=None, repr=False,
                                    compare=False)

    # -- Table I, last row -------------------------------------------------

    @property
    def opcua_server_count(self) -> int:
        return len(self.server_configs)

    @property
    def opcua_client_count(self) -> int:
        return len(self.client_configs)

    @property
    def config_size_bytes(self) -> int:
        # memoized: Table I checks and summary() hit this repeatedly,
        # and each computation re-serializes every config
        if self._size_cache is None:
            total = sum(len(json.dumps(c, indent=2)) for c in
                        self._all_json_configs())
            total += sum(len(text) for text in self.manifests.values())
            self._size_cache = total
        return self._size_cache

    @property
    def config_size_kb(self) -> float:
        return self.config_size_bytes / 1024.0

    def invalidate_size_cache(self) -> None:
        """Call after mutating configs/manifests in place."""
        self._size_cache = None

    def _all_json_configs(self) -> list[dict]:
        return (list(self.machine_configs.values())
                + list(self.server_configs.values())
                + self.client_configs + self.storage_configs)

    def artifact_ids(self) -> list[str]:
        """Provenance ids of every artifact this result carries."""
        ids = [f"machine:{name}" for name in self.machine_configs]
        ids += [f"server:{name}" for name in self.server_configs]
        ids += [f"client:{c['client']}" for c in self.client_configs]
        ids += [f"storage:{c['historian']}" for c in self.storage_configs]
        ids += [f"manifest:{name}" for name in self.manifests]
        return ids

    def summary(self) -> dict[str, object]:
        states = list(self.provenance.values())
        return {
            "generation_time_s": round(self.generation_seconds, 3),
            "opcua_servers": self.opcua_server_count,
            "opcua_clients": self.opcua_client_count,
            "config_size_kb": round(self.config_size_kb, 1),
            "machines": len(self.machine_configs),
            "manifest_files": len(self.manifests),
            "artifacts_reused": states.count("reused"),
            "artifacts_regenerated": states.count("regenerated"),
        }

    # -- file output ----------------------------------------------------------

    def write_to(self, directory: str | Path) -> list[Path]:
        """Materialize every JSON and YAML file; returns written paths."""
        base = Path(directory)
        written: list[Path] = []
        json_dir = base / "intermediate"
        yaml_dir = base / "manifests"
        json_dir.mkdir(parents=True, exist_ok=True)
        yaml_dir.mkdir(parents=True, exist_ok=True)
        for name, config in self.machine_configs.items():
            # sanitize: raw model names may carry characters that are
            # unsafe or inconsistent with the server/client file naming
            written.append(_write_json(
                json_dir / f"machine-{k8s_name(name)}.json", config))
        for name, config in self.server_configs.items():
            written.append(_write_json(
                json_dir / f"server-{k8s_name(name)}.json", config))
        for config in self.client_configs:
            written.append(_write_json(
                json_dir / f"{config['client']}.json", config))
        for config in self.storage_configs:
            written.append(_write_json(
                json_dir / f"{config['historian']}.json", config))
        for filename, text in self.manifests.items():
            path = yaml_dir / filename
            path.write_text(text)
            written.append(path)
        return written


def _write_json(path: Path, config: dict) -> Path:
    path.write_text(json.dumps(config, indent=2) + "\n")
    return path


class GenerationPipeline:
    """Configurable pipeline instance.

    Construct with a :class:`PipelineOptions`; the old per-keyword form
    (``GenerationPipeline(capacity=..., namespace=...)``) still works
    but emits a :class:`DeprecationWarning`.
    """

    def __init__(self, options: PipelineOptions | None = None, **legacy):
        self.options = options_from_legacy_kwargs(
            options, legacy, api="GenerationPipeline")
        self.cache: ArtifactCache | None = None
        if self.options.cache_dir is not None:
            self.cache = ArtifactCache(self.options.cache_dir,
                                       self.options.cache_max_bytes)

    # -- legacy attribute surface -----------------------------------------

    @property
    def capacity(self) -> int:
        return self.options.capacity

    @property
    def namespace(self) -> str:
        return self.options.namespace

    @property
    def broker_url(self) -> str:
        return self.options.broker_url

    @property
    def database_url(self) -> str:
        return self.options.database_url

    @property
    def validate(self) -> bool:
        return self.options.validate

    # -- entry points ---------------------------------------------------------

    def run_on_model(self, model: Model) -> GenerationResult:
        with activation(self.options.tracer) as tracer:
            started = time.perf_counter()
            with span("generate") as g:
                result = self._generate_from_model(model, started, g)
            if tracer.enabled:
                result.trace = tracer.trace()
        return result

    def _generate_from_model(self, model: Model, started: float,
                             generate_span) -> GenerationResult:
        source_fp = getattr(model, "content_fingerprint", None)
        topology = self._extract_topology(model, source_fp)
        node_keys = self._node_fingerprints(model, topology)
        if self.cache is None or source_fp is None:
            return self._run(topology, extraction_started=started,
                             node_keys=node_keys)
        # Whole-result layer: when the sources and every output-shaping
        # option are unchanged, reuse the complete artifact set in one
        # read instead of probing the per-unit layers.
        key = fingerprint(source_fp, self._semantic_options(),
                          _render_environment(), salt=RESULT_SALT)
        bundle = self.cache.get_object(key)
        if bundle is not None:
            self._validate(topology)
            result = GenerationResult(topology=topology, **bundle)
            result.provenance = {artifact: "reused"
                                 for artifact in result.artifact_ids()}
            result.generation_seconds = time.perf_counter() - started
            generate_span.set("result_cache", "hit")
            return result
        result = self._run(topology, extraction_started=started,
                           node_keys=node_keys)
        self.cache.put_object(key, {
            "machine_configs": result.machine_configs,
            "server_configs": result.server_configs,
            "client_configs": result.client_configs,
            "storage_configs": result.storage_configs,
            "groups": result.groups,
            "manifests": result.manifests,
        })
        return result

    def _extract_topology(self, model: Model,
                          source_fp: str | None) -> FactoryTopology:
        if self.cache is None or source_fp is None:
            return extract_topology(model)
        key = fingerprint(source_fp, salt=TOPOLOGY_SALT)
        cached = self.cache.get_object(key)
        if isinstance(cached, FactoryTopology):
            with span("topology", cached=True):
                pass
            return cached
        topology = extract_topology(model)
        self.cache.put_object(key, topology)
        return topology

    def _semantic_options(self) -> dict[str, object]:
        """The options that shape output bytes — *not* jobs or cache
        settings, so serial/parallel runs share cache entries."""
        return {
            "capacity": self.options.capacity,
            "grouping": self.options.grouping,
            "namespace": self.options.namespace,
            "broker_url": self.options.broker_url,
            "database_url": self.options.database_url,
        }

    def _node_fingerprints(self, model: Model, topology: FactoryTopology
                           ) -> dict[str, tuple[str, str]] | None:
        """Per-machine ``(node_fp, deps_fp)`` pairs, available when the
        model carries a dependency graph (loaded through
        :class:`repro.sysml.ModelSession` or
        ``load_model(record_deps=True)``) — they key step-1 artifacts
        per node instead of per whole spec."""
        if not self.options.incremental or self.cache is None:
            return None
        graph = getattr(model, "dep_graph", None)
        index = getattr(model, "node_index", None)
        if graph is None or index is None:
            return None
        keys: dict[str, tuple[str, str]] = {}
        for machine in topology.machines:
            if not machine.node_path:
                continue
            paths = [machine.node_path]
            if machine.driver is not None and machine.driver.node_path:
                paths.append(machine.driver.node_path)
            parts = node_dependency_fingerprints(model, graph, index,
                                                 *paths)
            if parts is not None:
                keys[machine.name] = parts
        return keys or None

    def run_on_topology(self, topology: FactoryTopology
                        ) -> GenerationResult:
        with activation(self.options.tracer) as tracer:
            with span("generate"):
                result = self._run(topology,
                                   extraction_started=time.perf_counter())
            if tracer.enabled:
                result.trace = tracer.trace()
        return result

    def _validate(self, topology: FactoryTopology) -> None:
        if not self.options.validate:
            return
        report = validate_topology(topology)
        if not report.ok:
            raise ValidationError(
                "topology validation failed: "
                + "; ".join(str(d) for d in report.errors))

    def _run(self, topology: FactoryTopology, extraction_started: float,
             node_keys: dict[str, tuple[str, str]] | None = None
             ) -> GenerationResult:
        self._validate(topology)
        result = GenerationResult(topology=topology)
        step1_started = time.perf_counter()
        with span("step1") as s:
            self._step1(topology, result, node_keys)
            s.set("machines", len(result.machine_configs))
            s.set("servers", len(result.server_configs))
            s.set("clients", len(result.client_configs))
        result.step1_seconds = time.perf_counter() - step1_started
        step2_started = time.perf_counter()
        with span("step2") as s:
            self._step2(result)
            s.set("manifests", len(result.manifests))
            s.set("bytes", sum(len(t) for t in result.manifests.values()))
        result.step2_seconds = time.perf_counter() - step2_started
        result.generation_seconds = time.perf_counter() - extraction_started
        return result

    # -- step 1: intermediate JSON ------------------------------------------------

    def _step1(self, topology: FactoryTopology, result: GenerationResult,
               node_keys: dict[str, tuple[str, str]] | None = None
               ) -> None:
        def build(machine: MachineInfo) -> tuple[dict, bool]:
            with span(f"machine:{machine.name}",
                      points=machine.point_count):
                return self._machine_config_cached(machine, topology,
                                                   node_keys)

        built = map_ordered(
            build, topology.machines, jobs=self.options.jobs,
            span_label=lambda machine, _i: f"machine:{machine.name}",
            pool_span="step1-pool")
        for machine, (config, reused) in zip(topology.machines, built):
            result.machine_configs[machine.name] = config
            result.provenance[f"machine:{machine.name}"] = \
                "reused" if reused else "regenerated"
        with span("servers") as s:
            for workcell in topology.workcells:
                if not workcell.machines:
                    continue
                configs = [result.machine_configs[m.name]
                           for m in workcell.machines]
                result.server_configs[workcell.name] = \
                    workcell_server_config(workcell.name, configs)
                result.provenance[f"server:{workcell.name}"] = \
                    "regenerated"
            s.set("servers", len(result.server_configs))
        result.groups = group_machines(topology.machines,
                                       self.options.capacity,
                                       algorithm=self.options.grouping)
        with span("clients") as s:
            for group in result.groups:
                client = client_config(group, topology,
                                       self.options.broker_url)
                storage = storage_config(group, topology,
                                         self.options.broker_url,
                                         self.options.database_url)
                result.client_configs.append(client)
                result.storage_configs.append(storage)
                result.provenance[f"client:{client['client']}"] = \
                    "regenerated"
                result.provenance[f"storage:{storage['historian']}"] = \
                    "regenerated"
            s.set("groups", len(result.groups))

    def _hierarchy_of(self, machine: MachineInfo,
                      topology: FactoryTopology) -> dict[str, str]:
        line = next((wc.production_line for wc in topology.workcells
                     if wc.name == machine.workcell), "")
        return {"enterprise": topology.enterprise, "site": topology.site,
                "area": topology.area, "production_line": line}

    def _legacy_machine_key(self, machine: MachineInfo,
                            hierarchy: dict[str, str]) -> str:
        # the pre-node-key payload: the machine's full spec minus the
        # node paths (which exist only for the incremental engine), so
        # entries written by earlier releases keep matching
        payload = asdict(machine)
        payload.pop("node_path", None)
        if payload.get("driver"):
            payload["driver"].pop("node_path", None)
        return fingerprint({"machine": payload, "hierarchy": hierarchy},
                           salt=STEP1_SALT)

    def _machine_config_cached(
            self, machine: MachineInfo, topology: FactoryTopology,
            node_keys: dict[str, tuple[str, str]] | None = None
    ) -> tuple[dict, bool]:
        """The machine's intermediate JSON plus whether it was replayed.

        Preferred key: the machine node's ``(node_fp, deps_fp)`` pair
        plus the hierarchy context that flows into the JSON — stable
        under edits elsewhere in the model. The legacy whole-spec key
        is still consulted (and written) one release cycle; a hit there
        migrates the entry to the node key.
        """
        if self.cache is None:
            return machine_config(machine, topology), False
        hierarchy = self._hierarchy_of(machine, topology)
        node_key = None
        if node_keys and machine.name in node_keys:
            node_fp, deps_fp = node_keys[machine.name]
            node_key = fingerprint(
                {"node": node_fp, "deps": deps_fp,
                 "workcell": machine.workcell, "hierarchy": hierarchy},
                salt=STEP1_NODE_SALT)
            cached = self.cache.get_json(node_key)
            if isinstance(cached, dict):
                return cached, True
        legacy_key = self._legacy_machine_key(machine, hierarchy)
        cached = self.cache.get_json(legacy_key)
        if isinstance(cached, dict):
            if node_key is not None:
                warnings.warn(
                    "machine-config cache hit under the legacy "
                    "whole-spec key; migrating the entry to the "
                    "node-fingerprint key (legacy keys stop being "
                    "consulted next release)",
                    DeprecationWarning, stacklevel=2)
                self.cache.put_json(node_key, cached)
            return cached, True
        config = machine_config(machine, topology)
        if node_key is not None:
            self.cache.put_json(node_key, config)
        self.cache.put_json(legacy_key, config)
        return config, False

    # -- step 2: Kubernetes YAML -----------------------------------------------------

    def _step2(self, result: GenerationResult) -> None:
        tasks: list[tuple[str, str, dict, int | None]] = []
        for config in result.server_configs.values():
            tasks.append(("opcua-server", config["server"], config,
                          config["port"]))
        for config in result.client_configs:
            tasks.append(("opcua-client", config["client"], config, None))
        for config in result.storage_configs:
            tasks.append(("historian", config["historian"], config, None))
        rendered = map_ordered(
            self._render_task, tasks, jobs=self.options.jobs,
            span_label=lambda task, _i: f"render:{k8s_name(task[1])}",
            pool_span="step2-pool")
        for (_, name, _, _), (text, reused) in zip(tasks, rendered):
            result.manifests[f"{name}.yaml"] = text
            result.provenance[f"manifest:{name}.yaml"] = \
                "reused" if reused else "regenerated"

    def _render_task(self, task: tuple[str, str, dict, int | None]
                     ) -> tuple[str, bool]:
        kind, name, config, port = task
        return self._render(kind, name, config, port=port)

    def _render(self, kind: str, name: str, config: dict,
                *, port: int | None = None) -> tuple[str, bool]:
        key = None
        if self.cache is not None:
            key = fingerprint(
                {"kind": kind, "name": name, "port": port or 0,
                 "config": config, "image": COMPONENT_IMAGES[kind],
                 "template": template_source(kind),
                 **self._semantic_options()},
                salt=STEP2_SALT)
            cached = self.cache.get_text(key)
            if cached is not None:
                with span(f"render:{k8s_name(name)}", template=kind,
                          cached=True):
                    pass
                return cached, True
        context = {
            "namespace": self.options.namespace,
            "broker_url": self.options.broker_url,
            "database_url": self.options.database_url,
            "component": {
                "name": name,
                "kind": kind,
                "image": COMPONENT_IMAGES[kind],
                "replicas": 1,
                "port": port or 0,
                "cpu_request": "100m",
                "memory_request": "128Mi",
                "config_json": config,
            },
        }
        with span(f"render:{k8s_name(name)}") as s:
            text = get_template(kind).render(context)
            s.set("template", kind)
            s.set("bytes", len(text))
        if key is not None:
            self.cache.put_text(key, text)
        return text, False


def generate_configuration(model: Model,
                           options: PipelineOptions | None = None,
                           **legacy) -> GenerationResult:
    """Run the full two-step pipeline on a resolved SysML model.

    Canonical form: ``generate_configuration(model, options=...)``.
    Legacy keyword arguments (``capacity=``, ``namespace=``, ...) are
    still accepted but emit a :class:`DeprecationWarning`.
    """
    resolved = options_from_legacy_kwargs(options, legacy,
                                          api="generate_configuration")
    return GenerationPipeline(resolved).run_on_model(model)
