"""The two-step generation pipeline (Section IV of the paper).

Step 1: SysML v2 model -> ISA-95 topology -> intermediate JSON files
        (one per machine; one OPC UA server config per workcell; one
        client config + one storage config per machine group).
Step 2: intermediate JSON -> Kubernetes YAML via templates.

:func:`generate_configuration` runs both steps, measures the generation
time, and reports the same quantities as the last row of Table I
(generation time, #OPC UA servers, #clients, configuration size).

The canonical entry point is ``generate_configuration(model,
options=PipelineOptions(...))``; the old keyword arguments keep working
through a :class:`DeprecationWarning` shim. When the options carry a
:class:`~repro.obs.Tracer` (or one is ambiently active), every phase is
recorded as a span — ``generate`` > ``topology`` / ``validate`` /
``step1`` (per machine, grouping) / ``step2`` (per rendered template) —
and the resulting :class:`~repro.obs.PipelineTrace` is attached to the
:class:`GenerationResult`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..isa95.levels import FactoryTopology
from ..isa95.topology import extract_topology
from ..isa95.validation import validate_topology
from ..obs import PipelineTrace, Summarizable, activation, span
from ..sysml.elements import Model
from ..sysml.errors import ValidationError
from ..templates.engine import k8s_name
from ..templates.library import get_template
from .client_config import client_config
from .grouping import ClientGroup, group_machines
from .machine_config import machine_config, workcell_server_config
from .options import PipelineOptions, options_from_legacy_kwargs
from .storage_config import storage_config

#: Container images of the deployed software stack components.
COMPONENT_IMAGES = {
    "opcua-server": "factory/opcua-server:1.4.2",
    "opcua-client": "factory/opcua-client:1.4.2",
    "historian": "factory/historian:1.2.0",
}


@dataclass
class GenerationResult(Summarizable):
    """Everything the pipeline produced, plus metrics."""

    topology: FactoryTopology
    machine_configs: dict[str, dict] = field(default_factory=dict)
    server_configs: dict[str, dict] = field(default_factory=dict)
    client_configs: list[dict] = field(default_factory=list)
    storage_configs: list[dict] = field(default_factory=list)
    groups: list[ClientGroup] = field(default_factory=list)
    manifests: dict[str, str] = field(default_factory=dict)
    generation_seconds: float = 0.0
    step1_seconds: float = 0.0
    step2_seconds: float = 0.0
    #: Per-phase telemetry of this run (None when tracing was off).
    trace: PipelineTrace | None = field(default=None, repr=False,
                                        compare=False)
    _size_cache: int | None = field(default=None, repr=False,
                                    compare=False)

    # -- Table I, last row -------------------------------------------------

    @property
    def opcua_server_count(self) -> int:
        return len(self.server_configs)

    @property
    def opcua_client_count(self) -> int:
        return len(self.client_configs)

    @property
    def config_size_bytes(self) -> int:
        # memoized: Table I checks and summary() hit this repeatedly,
        # and each computation re-serializes every config
        if self._size_cache is None:
            total = sum(len(json.dumps(c, indent=2)) for c in
                        self._all_json_configs())
            total += sum(len(text) for text in self.manifests.values())
            self._size_cache = total
        return self._size_cache

    @property
    def config_size_kb(self) -> float:
        return self.config_size_bytes / 1024.0

    def invalidate_size_cache(self) -> None:
        """Call after mutating configs/manifests in place."""
        self._size_cache = None

    def _all_json_configs(self) -> list[dict]:
        return (list(self.machine_configs.values())
                + list(self.server_configs.values())
                + self.client_configs + self.storage_configs)

    def summary(self) -> dict[str, object]:
        return {
            "generation_time_s": round(self.generation_seconds, 3),
            "opcua_servers": self.opcua_server_count,
            "opcua_clients": self.opcua_client_count,
            "config_size_kb": round(self.config_size_kb, 1),
            "machines": len(self.machine_configs),
            "manifest_files": len(self.manifests),
        }

    # -- file output ----------------------------------------------------------

    def write_to(self, directory: str | Path) -> list[Path]:
        """Materialize every JSON and YAML file; returns written paths."""
        base = Path(directory)
        written: list[Path] = []
        json_dir = base / "intermediate"
        yaml_dir = base / "manifests"
        json_dir.mkdir(parents=True, exist_ok=True)
        yaml_dir.mkdir(parents=True, exist_ok=True)
        for name, config in self.machine_configs.items():
            written.append(_write_json(json_dir / f"machine-{name}.json",
                                       config))
        for name, config in self.server_configs.items():
            written.append(_write_json(
                json_dir / f"server-{k8s_name(name)}.json", config))
        for config in self.client_configs:
            written.append(_write_json(
                json_dir / f"{config['client']}.json", config))
        for config in self.storage_configs:
            written.append(_write_json(
                json_dir / f"{config['historian']}.json", config))
        for filename, text in self.manifests.items():
            path = yaml_dir / filename
            path.write_text(text)
            written.append(path)
        return written


def _write_json(path: Path, config: dict) -> Path:
    path.write_text(json.dumps(config, indent=2) + "\n")
    return path


class GenerationPipeline:
    """Configurable pipeline instance.

    Construct with a :class:`PipelineOptions`; the old per-keyword form
    (``GenerationPipeline(capacity=..., namespace=...)``) still works
    but emits a :class:`DeprecationWarning`.
    """

    def __init__(self, options: PipelineOptions | None = None, **legacy):
        self.options = options_from_legacy_kwargs(
            options, legacy, api="GenerationPipeline")

    # -- legacy attribute surface -----------------------------------------

    @property
    def capacity(self) -> int:
        return self.options.capacity

    @property
    def namespace(self) -> str:
        return self.options.namespace

    @property
    def broker_url(self) -> str:
        return self.options.broker_url

    @property
    def database_url(self) -> str:
        return self.options.database_url

    @property
    def validate(self) -> bool:
        return self.options.validate

    # -- entry points ---------------------------------------------------------

    def run_on_model(self, model: Model) -> GenerationResult:
        with activation(self.options.tracer) as tracer:
            started = time.perf_counter()
            with span("generate"):
                topology = extract_topology(model)
                result = self._run(topology, extraction_started=started)
            if tracer.enabled:
                result.trace = tracer.trace()
        return result

    def run_on_topology(self, topology: FactoryTopology
                        ) -> GenerationResult:
        with activation(self.options.tracer) as tracer:
            with span("generate"):
                result = self._run(topology,
                                   extraction_started=time.perf_counter())
            if tracer.enabled:
                result.trace = tracer.trace()
        return result

    def _run(self, topology: FactoryTopology,
             extraction_started: float) -> GenerationResult:
        if self.options.validate:
            report = validate_topology(topology)
            if not report.ok:
                raise ValidationError(
                    "topology validation failed: "
                    + "; ".join(str(d) for d in report.errors))
        result = GenerationResult(topology=topology)
        step1_started = time.perf_counter()
        with span("step1") as s:
            self._step1(topology, result)
            s.set("machines", len(result.machine_configs))
            s.set("servers", len(result.server_configs))
            s.set("clients", len(result.client_configs))
        result.step1_seconds = time.perf_counter() - step1_started
        step2_started = time.perf_counter()
        with span("step2") as s:
            self._step2(result)
            s.set("manifests", len(result.manifests))
            s.set("bytes", sum(len(t) for t in result.manifests.values()))
        result.step2_seconds = time.perf_counter() - step2_started
        result.generation_seconds = time.perf_counter() - extraction_started
        return result

    # -- step 1: intermediate JSON ------------------------------------------------

    def _step1(self, topology: FactoryTopology,
               result: GenerationResult) -> None:
        for machine in topology.machines:
            with span(f"machine:{machine.name}") as s:
                config = machine_config(machine, topology)
                result.machine_configs[machine.name] = config
                s.set("points", machine.point_count)
        with span("servers") as s:
            for workcell in topology.workcells:
                if not workcell.machines:
                    continue
                configs = [result.machine_configs[m.name]
                           for m in workcell.machines]
                result.server_configs[workcell.name] = \
                    workcell_server_config(workcell.name, configs)
            s.set("servers", len(result.server_configs))
        result.groups = group_machines(topology.machines,
                                       self.options.capacity)
        with span("clients") as s:
            for group in result.groups:
                result.client_configs.append(
                    client_config(group, topology,
                                  self.options.broker_url))
                result.storage_configs.append(
                    storage_config(group, topology,
                                   self.options.broker_url,
                                   self.options.database_url))
            s.set("groups", len(result.groups))

    # -- step 2: Kubernetes YAML -----------------------------------------------------

    def _step2(self, result: GenerationResult) -> None:
        for workcell_name, config in result.server_configs.items():
            name = config["server"]
            result.manifests[f"{name}.yaml"] = self._render(
                "opcua-server", name, config, port=config["port"])
        for config in result.client_configs:
            name = config["client"]
            result.manifests[f"{name}.yaml"] = self._render(
                "opcua-client", name, config)
        for config in result.storage_configs:
            name = config["historian"]
            result.manifests[f"{name}.yaml"] = self._render(
                "historian", name, config)

    def _render(self, kind: str, name: str, config: dict,
                *, port: int | None = None) -> str:
        context = {
            "namespace": self.options.namespace,
            "broker_url": self.options.broker_url,
            "database_url": self.options.database_url,
            "component": {
                "name": name,
                "kind": kind,
                "image": COMPONENT_IMAGES[kind],
                "replicas": 1,
                "port": port or 0,
                "cpu_request": "100m",
                "memory_request": "128Mi",
                "config_json": config,
            },
        }
        with span(f"render:{k8s_name(name)}") as s:
            text = get_template(kind).render(context)
            s.set("template", kind)
            s.set("bytes", len(text))
        return text


def generate_configuration(model: Model,
                           options: PipelineOptions | None = None,
                           **legacy) -> GenerationResult:
    """Run the full two-step pipeline on a resolved SysML model.

    Canonical form: ``generate_configuration(model, options=...)``.
    Legacy keyword arguments (``capacity=``, ``namespace=``, ...) are
    still accepted but emit a :class:`DeprecationWarning`.
    """
    resolved = options_from_legacy_kwargs(options, legacy,
                                          api="generate_configuration")
    return GenerationPipeline(resolved).run_on_model(model)
