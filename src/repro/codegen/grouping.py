"""OPC UA client grouping (the paper's resource optimization).

"The number of OPC UA clients connecting the machinery to the
architecture is minimized by connecting multiple machines to the same
client. This is done by grouping multiple machines by considering the
maximum number of variables and methods supported by each OPC UA client
module."

Implemented as bin packing over the machines' point counts (variables +
methods): first-fit-decreasing by default (byte-compatible with every
earlier release), best-fit-decreasing opt-in via
``PipelineOptions(grouping="best-fit")`` — never more clients than
first-fit, and ``O(log groups)`` per placement at mega-factory machine
counts. Machines larger than the capacity get a dedicated (oversized)
client, matching how the ICE lab deploys the conveyor line. The paper
does not disclose the capacity constant; ``DEFAULT_CLIENT_CAPACITY =
120`` reproduces the published result of 4 clients for the ICE-lab
inventory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa95.levels import MachineInfo

#: Max variables+methods per OPC UA client module (calibrated, see above).
DEFAULT_CLIENT_CAPACITY = 120


class GroupingError(ValueError):
    pass


@dataclass
class ClientGroup:
    """One OPC UA client module and the machines assigned to it."""

    index: int
    capacity: int
    machines: list[MachineInfo] = field(default_factory=list)
    oversized: bool = False

    @property
    def name(self) -> str:
        return f"opcua-client-{self.index:02d}"

    @property
    def points(self) -> int:
        return sum(m.point_count for m in self.machines)

    @property
    def utilization(self) -> float:
        return self.points / self.capacity if self.capacity else 0.0

    @property
    def machine_names(self) -> list[str]:
        return [m.name for m in self.machines]


#: Supported packing algorithms for :func:`group_machines`.
GROUPING_ALGORITHMS = ("first-fit", "best-fit")


def _pack_first_fit(ordered: list[MachineInfo],
                    capacity: int) -> tuple[list[ClientGroup], int]:
    """First-fit-decreasing: each machine goes to the earliest-created
    open group with room (the historical default; byte-compatible with
    every pre-option release)."""
    fit_checks = 0
    groups: list[ClientGroup] = []
    for machine in ordered:
        if machine.point_count > capacity:
            group = ClientGroup(index=0, capacity=capacity,
                                oversized=True)
            group.machines.append(machine)
            groups.append(group)
            continue
        placed = False
        for group in groups:
            if group.oversized:
                continue
            fit_checks += 1
            if group.points + machine.point_count <= capacity:
                group.machines.append(machine)
                placed = True
                break
        if not placed:
            group = ClientGroup(index=0, capacity=capacity)
            group.machines.append(machine)
            groups.append(group)
    return groups, fit_checks


def _pack_best_fit(ordered: list[MachineInfo],
                   capacity: int) -> tuple[list[ClientGroup], int]:
    """Best-fit-decreasing: each machine goes to the open group with the
    *smallest* residual capacity that still fits it.

    Deterministic tie-breaks: equal residuals go to the earliest-created
    group. The open groups live in a bisect-sorted ``(residual,
    creation_order)`` list, so each placement is ``O(log groups)``
    instead of first-fit's linear scan — the part that matters at
    mega-factory machine counts.
    """
    import bisect
    fit_checks = 0
    groups: list[ClientGroup] = []
    open_keys: list[tuple[int, int]] = []  # sorted (residual, order)
    for machine in ordered:
        size = machine.point_count
        if size > capacity:
            group = ClientGroup(index=0, capacity=capacity,
                                oversized=True)
            group.machines.append(machine)
            groups.append(group)
            continue
        fit_checks += 1
        # smallest residual >= size; ties resolve to the lowest
        # creation order because the keys sort lexicographically
        at = bisect.bisect_left(open_keys, (size, -1))
        if at < len(open_keys):
            residual, order = open_keys.pop(at)
            group = groups[order]
            group.machines.append(machine)
            bisect.insort(open_keys, (residual - size, order))
        else:
            group = ClientGroup(index=0, capacity=capacity)
            group.machines.append(machine)
            bisect.insort(open_keys, (capacity - size, len(groups)))
            groups.append(group)
    return groups, fit_checks


def group_machines(machines: list[MachineInfo],
                   capacity: int = DEFAULT_CLIENT_CAPACITY,
                   *, algorithm: str = "first-fit") -> list[ClientGroup]:
    """Bin-pack machines onto client modules.

    *algorithm* selects the packing: ``"first-fit"`` (the default,
    byte-compatible first-fit-decreasing) or ``"best-fit"``
    (best-fit-decreasing, guaranteed to never use more clients than
    first-fit: when its packing does not already hit
    :func:`lower_bound_clients`, the first-fit packing is computed too
    and the smaller of the two wins, first-fit breaking ties losing).

    Deterministic either way: ties in point count break on machine
    name, ties in residual capacity break on group creation order.
    Machines exceeding *capacity* each get their own oversized client.
    """
    if capacity <= 0:
        raise GroupingError(f"capacity must be positive, got {capacity}")
    if algorithm not in GROUPING_ALGORITHMS:
        raise GroupingError(
            f"unknown grouping algorithm {algorithm!r} "
            f"(expected one of {', '.join(GROUPING_ALGORITHMS)})")
    from ..obs import span as _span
    with _span("grouping") as s:
        ordered = sorted(machines, key=lambda m: (-m.point_count, m.name))
        if algorithm == "best-fit":
            groups, fit_checks = _pack_best_fit(ordered, capacity)
            if len(groups) > lower_bound_clients(machines, capacity):
                fallback, extra = _pack_first_fit(ordered, capacity)
                fit_checks += extra
                if len(fallback) < len(groups):
                    groups = fallback
        else:
            groups, fit_checks = _pack_first_fit(ordered, capacity)
        for index, group in enumerate(groups, start=1):
            group.index = index
        if s.enabled:
            s.set("machines", len(machines))
            s.set("capacity", capacity)
            s.set("algorithm", algorithm)
            s.set("groups", len(groups))
            s.set("oversized",
                  sum(1 for g in groups if g.oversized))
            s.set("fit_checks", fit_checks)
    return groups


def grouping_stats(groups: list[ClientGroup]) -> dict[str, object]:
    """Summary statistics used by the ablation bench."""
    if not groups:
        return {"clients": 0, "mean_utilization": 0.0,
                "oversized_clients": 0, "total_points": 0}
    regular = [g for g in groups if not g.oversized]
    return {
        "clients": len(groups),
        "oversized_clients": sum(1 for g in groups if g.oversized),
        "total_points": sum(g.points for g in groups),
        "mean_utilization": (sum(g.utilization for g in regular)
                             / len(regular)) if regular else 0.0,
        "max_points": max(g.points for g in groups),
        "min_points": min(g.points for g in groups),
    }


def lower_bound_clients(machines: list[MachineInfo], capacity: int) -> int:
    """Information-theoretic lower bound on the number of clients."""
    if capacity <= 0:
        raise GroupingError(f"capacity must be positive, got {capacity}")
    total = sum(m.point_count for m in machines)
    oversized = sum(1 for m in machines if m.point_count > capacity)
    oversized_points = sum(m.point_count for m in machines
                           if m.point_count > capacity)
    remaining = total - oversized_points
    import math
    return oversized + math.ceil(remaining / capacity)
