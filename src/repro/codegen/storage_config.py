"""Step 1c: per-group database-storage (historian) configuration JSON.

"For each group of machines, the tool generates two JSON files
containing the information to configure the OPC UA client and the
software component storing the data in the databases." — this module is
the second of those two files.
"""

from __future__ import annotations

from ..isa95.levels import FactoryTopology
from .client_config import topic_root
from .grouping import ClientGroup


def storage_config(group: ClientGroup, topology: FactoryTopology,
                   broker_url: str = "mqtt://broker:1883",
                   database_url: str = "ts://factorydb:8086") -> dict:
    """The intermediate JSON for one historian component."""
    root = topic_root(topology)
    return {
        "historian": f"historian-{group.index:02d}",
        "paired_client": group.name,
        "broker": {"url": broker_url,
                   "client_id": f"historian-{group.index:02d}"},
        "database": {
            "url": database_url,
            "measurement": "machine_data",
            "retention_days": 365,
        },
        "topic_root": root,
        "machines": [machine.name for machine in group.machines],
        "expected_series": sum(len(m.variables) for m in group.machines),
    }
