"""The OPC UA address space: nodes, references, browsing.

Three node classes are modeled (the ones the paper's configured stack
needs): Objects (folders/machines), Variables (machine data points), and
Methods (machine services). References are parent->child ("Organizes" /
"HasComponent"); browsing walks them by browse name.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

from .nodeids import NodeId, QualifiedName


class AddressSpaceError(RuntimeError):
    pass


@dataclass
class DataValue:
    """A value with OPC UA-style status and timestamps."""

    value: object
    status: str = "Good"
    source_timestamp: float = 0.0
    server_timestamp: float = 0.0


class Node:
    """Base address-space node."""

    node_class = "Unspecified"

    def __init__(self, node_id: NodeId, browse_name: QualifiedName,
                 display_name: str = ""):
        self.node_id = node_id
        self.browse_name = browse_name
        self.display_name = display_name or browse_name.name
        self.description = ""
        self.parent: Node | None = None
        self.children: list[Node] = []

    def add_child(self, child: "Node") -> "Node":
        child.parent = self
        self.children.append(child)
        return child

    def child_by_name(self, browse_name: str) -> "Node | None":
        wanted = QualifiedName.parse(browse_name)
        for child in self.children:
            if child.browse_name == wanted or \
                    child.browse_name.name == browse_name:
                return child
        return None

    def descendants(self) -> Iterator["Node"]:
        for child in self.children:
            yield child
            yield from child.descendants()

    @property
    def path(self) -> str:
        parts: list[str] = []
        node: Node | None = self
        while node is not None and node.parent is not None:
            parts.append(node.browse_name.name)
            node = node.parent
        return "/".join(reversed(parts))

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.node_id} "
                f"'{self.browse_name.name}'>")


class ObjectNode(Node):
    node_class = "Object"


class VariableNode(Node):
    node_class = "Variable"

    def __init__(self, node_id: NodeId, browse_name: QualifiedName,
                 data_type: str = "Double", initial_value: object = None,
                 writable: bool = True):
        super().__init__(node_id, browse_name)
        self.data_type = data_type
        self.writable = writable
        self._data_value = DataValue(initial_value)
        self._listeners: list[Callable[[VariableNode, DataValue], None]] = []

    @property
    def value(self) -> object:
        return self._data_value.value

    def read(self) -> DataValue:
        return self._data_value

    def write(self, value: object, *, status: str = "Good",
              timestamp: float | None = None) -> None:
        if not self.writable:
            raise AddressSpaceError(
                f"variable {self.node_id} is not writable")
        now = timestamp if timestamp is not None else time.monotonic()
        self._data_value = DataValue(value, status, now, now)
        for listener in list(self._listeners):
            listener(self, self._data_value)

    def on_change(self, listener: Callable[["VariableNode", DataValue], None]
                  ) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)


@dataclass
class Argument:
    """A method input/output argument declaration."""

    name: str
    data_type: str = "String"
    description: str = ""


class MethodNode(Node):
    node_class = "Method"

    def __init__(self, node_id: NodeId, browse_name: QualifiedName,
                 handler: Callable[..., tuple] | None = None,
                 input_arguments: list[Argument] | None = None,
                 output_arguments: list[Argument] | None = None):
        super().__init__(node_id, browse_name)
        self.handler = handler
        self.input_arguments = input_arguments or []
        self.output_arguments = output_arguments or []
        self.call_count = 0

    def call(self, *args) -> tuple:
        if self.handler is None:
            raise AddressSpaceError(
                f"method {self.node_id} has no bound handler")
        if len(args) != len(self.input_arguments):
            raise AddressSpaceError(
                f"method {self.node_id} expects "
                f"{len(self.input_arguments)} argument(s), got {len(args)}")
        self.call_count += 1
        result = self.handler(*args)
        if result is None:
            result = ()
        if not isinstance(result, tuple):
            result = (result,)
        if len(result) != len(self.output_arguments):
            raise AddressSpaceError(
                f"method {self.node_id} must return "
                f"{len(self.output_arguments)} value(s), got {len(result)}")
        return result


class AddressSpace:
    """Node storage with id and path indexes."""

    def __init__(self) -> None:
        from .nodeids import OBJECTS_FOLDER
        self._nodes: dict[NodeId, Node] = {}
        self.objects = ObjectNode(OBJECTS_FOLDER, QualifiedName(0, "Objects"))
        self._register(self.objects)

    def _register(self, node: Node) -> Node:
        if node.node_id in self._nodes:
            raise AddressSpaceError(f"duplicate NodeId {node.node_id}")
        self._nodes[node.node_id] = node
        return node

    def add(self, parent: Node | NodeId, node: Node) -> Node:
        parent_node = self.get(parent) if isinstance(parent, NodeId) else parent
        self._register(node)
        parent_node.add_child(node)
        return node

    def get(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise AddressSpaceError(f"unknown NodeId {node_id}") from None

    def find(self, node_id: NodeId) -> Node | None:
        return self._nodes.get(node_id)

    def browse_path(self, path: str, root: Node | None = None) -> Node:
        """Walk ``a/b/c`` browse names from *root* (default Objects)."""
        node = root or self.objects
        for name in path.split("/"):
            child = node.child_by_name(name)
            if child is None:
                raise AddressSpaceError(
                    f"browse path {path!r} broken at {name!r} "
                    f"(under '{node.browse_name.name}')")
            node = child
        return node

    def variables(self) -> list[VariableNode]:
        return [n for n in self._nodes.values()
                if isinstance(n, VariableNode)]

    def methods(self) -> list[MethodNode]:
        return [n for n in self._nodes.values() if isinstance(n, MethodNode)]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes
