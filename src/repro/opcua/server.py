"""The simulated OPC UA server.

Each machine (or workcell, in the generated deployment) runs one server
that exposes its variables and methods in a browsable address space.
The server hands out sessions; sessions perform read/write/call/browse
and own subscriptions, matching the service sets the configured software
stack uses (no security profiles — the paper's pipeline does not
configure them either).
"""

from __future__ import annotations

import itertools
from typing import Callable

from ..obs import METRICS
from .address_space import (AddressSpace, AddressSpaceError, Argument,
                            MethodNode, Node, ObjectNode, VariableNode)
from .network import UaNetwork, default_network
from .nodeids import NodeId, QualifiedName
from .subscription import DataChangeNotification, Subscription

_SESSIONS = METRICS.counter("opcua.sessions_created")
_READS = METRICS.counter("opcua.reads")
_WRITES = METRICS.counter("opcua.writes")
_CALLS = METRICS.counter("opcua.calls")
_SUBSCRIPTIONS = METRICS.counter("opcua.subscriptions_created")


class SessionError(RuntimeError):
    pass


class OpcUaServer:
    """An OPC UA server with a private address space."""

    def __init__(self, endpoint: str, *, application_name: str = "",
                 network: UaNetwork | None = None,
                 namespace_uris: list[str] | None = None):
        self.endpoint = endpoint
        self.application_name = application_name or endpoint
        self.network = network if network is not None else default_network
        self.space = AddressSpace()
        self.namespace_uris = ["http://opcfoundation.org/UA/"]
        self.namespace_uris.extend(namespace_uris or [])
        self.running = False
        self._sessions: dict[int, "Session"] = {}
        self._session_ids = itertools.count(1)
        self._node_counter = itertools.count(1000)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if not self.running:
            self.running = True
            self.network.register(self)

    def stop(self) -> None:
        if self.running:
            for session in list(self._sessions.values()):
                session.close()
            self.running = False
            self.network.unregister(self.endpoint)

    # -- namespace management -------------------------------------------------

    def register_namespace(self, uri: str) -> int:
        if uri in self.namespace_uris:
            return self.namespace_uris.index(uri)
        self.namespace_uris.append(uri)
        return len(self.namespace_uris) - 1

    # -- address-space construction ---------------------------------------------

    def next_node_id(self, namespace: int, name: str | None = None) -> NodeId:
        if name is not None:
            return NodeId(namespace, name)
        return NodeId(namespace, next(self._node_counter))

    def add_object(self, parent: Node, name: str, *,
                   namespace: int = 1) -> ObjectNode:
        node = ObjectNode(self.next_node_id(namespace, f"{parent.path}/{name}"
                                            if parent.path else name),
                          QualifiedName(namespace, name))
        return self.space.add(parent, node)  # type: ignore[return-value]

    def add_variable(self, parent: Node, name: str, *, data_type: str,
                     initial_value: object = None, namespace: int = 1,
                     writable: bool = True) -> VariableNode:
        identifier = f"{parent.path}/{name}" if parent.path else name
        node = VariableNode(self.next_node_id(namespace, identifier),
                            QualifiedName(namespace, name),
                            data_type=data_type,
                            initial_value=initial_value,
                            writable=writable)
        return self.space.add(parent, node)  # type: ignore[return-value]

    def add_method(self, parent: Node, name: str, *,
                   handler: Callable[..., tuple] | None = None,
                   input_arguments: list[Argument] | None = None,
                   output_arguments: list[Argument] | None = None,
                   namespace: int = 1) -> MethodNode:
        identifier = f"{parent.path}/{name}" if parent.path else name
        node = MethodNode(self.next_node_id(namespace, identifier),
                          QualifiedName(namespace, name),
                          handler=handler,
                          input_arguments=input_arguments,
                          output_arguments=output_arguments)
        return self.space.add(parent, node)  # type: ignore[return-value]

    # -- sessions ------------------------------------------------------------------

    def create_session(self, client_name: str = "client") -> "Session":
        if not self.running:
            raise SessionError(
                f"server {self.endpoint} is not running")
        session = Session(next(self._session_ids), self, client_name)
        self._sessions[session.session_id] = session
        _SESSIONS.inc()
        return session

    def _drop_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def stats(self) -> dict[str, int]:
        return {
            "nodes": len(self.space),
            "variables": len(self.space.variables()),
            "methods": len(self.space.methods()),
            "sessions": self.session_count,
        }


class Session:
    """A client session on a server (service-call surface)."""

    def __init__(self, session_id: int, server: OpcUaServer,
                 client_name: str):
        self.session_id = session_id
        self.server = server
        self.client_name = client_name
        self.open = True
        self._subscriptions: dict[int, Subscription] = {}
        self._subscription_ids = itertools.count(1)

    # -- service set -----------------------------------------------------------

    def browse(self, node_id: NodeId | None = None) -> list[Node]:
        self._ensure_open()
        node = (self.server.space.get(node_id) if node_id is not None
                else self.server.space.objects)
        return list(node.children)

    def translate_browse_path(self, path: str) -> NodeId:
        self._ensure_open()
        return self.server.space.browse_path(path).node_id

    def read(self, node_id: NodeId):
        self._ensure_open()
        _READS.inc()
        node = self.server.space.get(node_id)
        if not isinstance(node, VariableNode):
            raise AddressSpaceError(f"{node_id} is not a variable")
        return node.read()

    def write(self, node_id: NodeId, value: object) -> None:
        self._ensure_open()
        _WRITES.inc()
        node = self.server.space.get(node_id)
        if not isinstance(node, VariableNode):
            raise AddressSpaceError(f"{node_id} is not a variable")
        node.write(value)

    def call(self, node_id: NodeId, *args) -> tuple:
        self._ensure_open()
        _CALLS.inc()
        node = self.server.space.get(node_id)
        if not isinstance(node, MethodNode):
            raise AddressSpaceError(f"{node_id} is not a method")
        return node.call(*args)

    def create_subscription(
            self,
            callback: Callable[[DataChangeNotification], None] | None = None
    ) -> Subscription:
        self._ensure_open()
        _SUBSCRIPTIONS.inc()
        subscription = Subscription(next(self._subscription_ids), callback)
        self._subscriptions[subscription.subscription_id] = subscription
        return subscription

    def monitor(self, subscription: Subscription, node_id: NodeId):
        self._ensure_open()
        node = self.server.space.get(node_id)
        if not isinstance(node, VariableNode):
            raise AddressSpaceError(f"{node_id} is not a variable")
        return subscription.monitor(node)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        if self.open:
            for subscription in self._subscriptions.values():
                subscription.close()
            self._subscriptions.clear()
            self.open = False
            self.server._drop_session(self.session_id)

    def _ensure_open(self) -> None:
        if not self.open:
            raise SessionError("session is closed")
        if not self.server.running:
            raise SessionError(
                f"server {self.server.endpoint} went down")
