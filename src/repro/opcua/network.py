"""The in-memory "network" connecting OPC UA clients to servers.

Servers register under their endpoint URL
(``opc.tcp://host:port/path``); clients connect by URL. A registry
instance stands in for a LAN segment; tests create isolated registries,
while the simulated factory shares one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .server import OpcUaServer


class NetworkError(ConnectionError):
    pass


class UaNetwork:
    """Registry of reachable OPC UA servers."""

    def __init__(self) -> None:
        self._servers: dict[str, "OpcUaServer"] = {}

    def register(self, server: "OpcUaServer") -> None:
        if server.endpoint in self._servers:
            raise NetworkError(
                f"endpoint already in use: {server.endpoint}")
        self._servers[server.endpoint] = server

    def unregister(self, endpoint: str) -> None:
        self._servers.pop(endpoint, None)

    def lookup(self, endpoint: str) -> "OpcUaServer":
        try:
            server = self._servers[endpoint]
        except KeyError:
            raise NetworkError(
                f"no OPC UA server listening on {endpoint}") from None
        if not server.running:
            raise NetworkError(f"server at {endpoint} is not running")
        return server

    def endpoints(self) -> list[str]:
        return sorted(self._servers)

    def __len__(self) -> int:
        return len(self._servers)


#: Default shared network used when none is passed explicitly.
default_network = UaNetwork()
