"""Simulated OPC UA substrate: address space, servers, clients, subscriptions."""

from .address_space import (AddressSpace, AddressSpaceError, Argument,
                            DataValue, MethodNode, Node, ObjectNode,
                            VariableNode)
from .client import OpcUaClient
from .network import NetworkError, UaNetwork, default_network
from .nodeids import (NodeId, NodeIdError, OBJECTS_FOLDER, QualifiedName,
                      SERVER_NODE, TYPES_FOLDER)
from .server import OpcUaServer, Session, SessionError
from .subscription import (DataChangeNotification, MonitoredItem,
                           Subscription)

__all__ = [
    "AddressSpace", "AddressSpaceError", "Argument", "DataChangeNotification",
    "DataValue", "MethodNode", "MonitoredItem", "NetworkError", "Node",
    "NodeId", "NodeIdError", "OBJECTS_FOLDER", "ObjectNode", "OpcUaClient",
    "OpcUaServer", "QualifiedName", "SERVER_NODE", "Session", "SessionError",
    "Subscription", "TYPES_FOLDER", "UaNetwork", "VariableNode",
    "default_network",
]
