"""OPC UA node identities.

A :class:`NodeId` pairs a namespace index with an identifier (numeric or
string), printed in the standard ``ns=<idx>;s=<id>`` / ``ns=<idx>;i=<id>``
notation. A :class:`QualifiedName` is the browse name used when walking
the address space.
"""

from __future__ import annotations

from dataclasses import dataclass


class NodeIdError(ValueError):
    pass


@dataclass(frozen=True, order=True)
class NodeId:
    namespace: int
    identifier: int | str

    def __post_init__(self):
        if self.namespace < 0:
            raise NodeIdError(f"negative namespace index: {self.namespace}")
        if isinstance(self.identifier, str) and not self.identifier:
            raise NodeIdError("empty string identifier")

    def __str__(self) -> str:
        marker = "i" if isinstance(self.identifier, int) else "s"
        return f"ns={self.namespace};{marker}={self.identifier}"

    @classmethod
    def parse(cls, text: str) -> "NodeId":
        """Parse ``ns=2;s=emco.actualX`` / ``ns=0;i=85`` notation."""
        try:
            ns_part, id_part = text.split(";", 1)
            if not ns_part.startswith("ns="):
                raise ValueError
            namespace = int(ns_part[3:])
            marker, _, identifier = id_part.partition("=")
            if marker == "i":
                return cls(namespace, int(identifier))
            if marker == "s":
                if not identifier:
                    raise ValueError
                return cls(namespace, identifier)
            raise ValueError
        except ValueError as exc:
            raise NodeIdError(f"malformed NodeId text {text!r}") from exc


@dataclass(frozen=True, order=True)
class QualifiedName:
    namespace: int
    name: str

    def __post_init__(self):
        if not self.name:
            raise NodeIdError("empty browse name")

    def __str__(self) -> str:
        return f"{self.namespace}:{self.name}"

    @classmethod
    def parse(cls, text: str) -> "QualifiedName":
        if ":" in text:
            ns, _, name = text.partition(":")
            try:
                return cls(int(ns), name)
            except ValueError:
                pass  # a plain name containing ':' — treat as ns 0
        return cls(0, text)


#: Well-known base nodes (namespace 0), subset of the OPC UA standard.
OBJECTS_FOLDER = NodeId(0, 85)
TYPES_FOLDER = NodeId(0, 86)
SERVER_NODE = NodeId(0, 2253)
