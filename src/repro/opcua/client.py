"""The simulated OPC UA client.

Connects to a server by endpoint URL over the in-memory network and
wraps a session. The generated "OPC UA client" software components of
the paper's stack use this class to subscribe to machine variables and
forward them to the message broker.
"""

from __future__ import annotations

from typing import Callable

from .address_space import Node, VariableNode
from .network import NetworkError, UaNetwork, default_network
from .nodeids import NodeId
from .server import OpcUaServer, Session
from .subscription import DataChangeNotification, Subscription


class OpcUaClient:
    """Client handle: connect -> read/write/call/subscribe -> disconnect."""

    def __init__(self, client_name: str = "client",
                 network: UaNetwork | None = None):
        self.client_name = client_name
        self.network = network if network is not None else default_network
        self._session: Session | None = None
        self._server: OpcUaServer | None = None

    # -- connection ------------------------------------------------------------

    def connect(self, endpoint: str) -> None:
        if self._session is not None:
            raise NetworkError(f"{self.client_name} is already connected")
        server = self.network.lookup(endpoint)
        self._session = server.create_session(self.client_name)
        self._server = server

    def disconnect(self) -> None:
        if self._session is not None:
            self._session.close()
            self._session = None
            self._server = None

    @property
    def connected(self) -> bool:
        return self._session is not None and self._session.open

    @property
    def session(self) -> Session:
        if self._session is None:
            raise NetworkError(f"{self.client_name} is not connected")
        return self._session

    # -- convenience service wrappers ---------------------------------------------

    def browse(self, node_id: NodeId | None = None) -> list[Node]:
        return self.session.browse(node_id)

    def node_id_of(self, browse_path: str) -> NodeId:
        return self.session.translate_browse_path(browse_path)

    def read(self, node: NodeId | str):
        return self.session.read(self._resolve(node)).value

    def read_data_value(self, node: NodeId | str):
        return self.session.read(self._resolve(node))

    def write(self, node: NodeId | str, value: object) -> None:
        self.session.write(self._resolve(node), value)

    def call(self, node: NodeId | str, *args) -> tuple:
        return self.session.call(self._resolve(node), *args)

    def subscribe(self, nodes: list[NodeId | str],
                  callback: Callable[[DataChangeNotification], None] | None = None
                  ) -> Subscription:
        subscription = self.session.create_subscription(callback)
        for node in nodes:
            self.session.monitor(subscription, self._resolve(node))
        return subscription

    def browse_variables(self) -> list[VariableNode]:
        """All variables reachable under the Objects folder."""
        assert self._server is not None
        return [n for n in self._server.space.objects.descendants()
                if isinstance(n, VariableNode)]

    def _resolve(self, node: NodeId | str) -> NodeId:
        if isinstance(node, NodeId):
            return node
        return self.session.translate_browse_path(node)

    def __enter__(self) -> "OpcUaClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.disconnect()

    def __repr__(self) -> str:
        state = "connected" if self.connected else "idle"
        return f"<OpcUaClient {self.client_name} ({state})>"
