"""OPC UA subscriptions and monitored items.

A client creates a subscription on a server and adds monitored items
(variables). Each variable write produces a data-change notification
that is either queued (for :meth:`Subscription.take_notifications`) or
pushed to a callback — the mechanism the generated OPC UA clients use
to forward machine data onto the message broker.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable

from .address_space import DataValue, VariableNode
from .nodeids import NodeId

_item_ids = itertools.count(1)


@dataclass(frozen=True)
class DataChangeNotification:
    subscription_id: int
    monitored_item_id: int
    node_id: NodeId
    value: object
    status: str
    timestamp: float


class MonitoredItem:
    """One monitored variable inside a subscription."""

    def __init__(self, subscription: "Subscription", node: VariableNode,
                 sampling_interval: float = 0.0):
        self.item_id = next(_item_ids)
        self.subscription = subscription
        self.node = node
        self.sampling_interval = sampling_interval
        self.notification_count = 0
        node.on_change(self._on_change)

    def _on_change(self, node: VariableNode, data_value: DataValue) -> None:
        self.notification_count += 1
        notification = DataChangeNotification(
            subscription_id=self.subscription.subscription_id,
            monitored_item_id=self.item_id,
            node_id=node.node_id,
            value=data_value.value,
            status=data_value.status,
            timestamp=data_value.source_timestamp,
        )
        self.subscription._dispatch(notification)

    def detach(self) -> None:
        self.node.remove_listener(self._on_change)


class Subscription:
    """A server-side subscription owned by one client session."""

    def __init__(self, subscription_id: int,
                 callback: Callable[[DataChangeNotification], None] | None = None,
                 *, max_queue: int = 10_000):
        self.subscription_id = subscription_id
        self.callback = callback
        self.items: dict[int, MonitoredItem] = {}
        self.queue: deque[DataChangeNotification] = deque(maxlen=max_queue)
        self.dropped = 0
        self.active = True

    def monitor(self, node: VariableNode,
                sampling_interval: float = 0.0) -> MonitoredItem:
        item = MonitoredItem(self, node, sampling_interval)
        self.items[item.item_id] = item
        return item

    def unmonitor(self, item_id: int) -> None:
        item = self.items.pop(item_id, None)
        if item is not None:
            item.detach()

    def _dispatch(self, notification: DataChangeNotification) -> None:
        if not self.active:
            return
        if self.callback is not None:
            self.callback(notification)
        else:
            if len(self.queue) == self.queue.maxlen:
                self.dropped += 1
            self.queue.append(notification)

    def take_notifications(self, max_count: int | None = None
                           ) -> list[DataChangeNotification]:
        taken: list[DataChangeNotification] = []
        while self.queue and (max_count is None or len(taken) < max_count):
            taken.append(self.queue.popleft())
        return taken

    def close(self) -> None:
        self.active = False
        for item in list(self.items.values()):
            item.detach()
        self.items.clear()
