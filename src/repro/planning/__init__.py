"""``repro.planning`` — ISA-95 -> PDDL operations planning.

The third codegen backend (beside the intermediate JSON and the
Kubernetes YAML, see :data:`repro.codegen.CODEGEN_BACKENDS`): it turns
the extracted factory topology into an AI-planning problem and solves
it, the direction the related work (Wally et al., arXiv:1911.05481;
Nabizada et al., arXiv:2506.06714) takes from the same ISA-95/SysML
substrate.

Layering (each module only imports downward):

* :mod:`~repro.planning.task`    — injective symbol tables, the shared
  :class:`FactoryDomain`, per-workload STRIPS grounding;
* :mod:`~repro.planning.pddl`    — deterministic domain/problem/plan
  text rendering;
* :mod:`~repro.planning.planner` — from-scratch best-first forward
  search (``greedy``/``uniform``) with a seeded **total** tie-break
  order — no wall time, no unseeded random;
* :mod:`~repro.planning.validate`— plan replay against the behavioural
  :class:`repro.machines.MachineSimulator` instances;
* :mod:`~repro.planning.backend` — :func:`plan_operations`: cache,
  tracing span, ``map_ordered`` fan-out, the whole bundle.

``repro plan`` is the CLI surface; the ``plan`` conformance oracle
(:mod:`repro.testkit.oracles`) holds the backend to byte-identical
emission across repeat runs and ``--jobs`` 1-vs-N, simulator-validated
plans, and cost equivalence across planner seeds.
"""

from .backend import (PlannedProblem, PlanningOptions, PlanningResult,
                      plan_operations, topology_planning_key)
from .pddl import emit_domain, emit_problem, render_plan
from .planner import (DEFAULT_MAX_EXPANSIONS, STRATEGIES, SearchResult,
                      heuristic, solve)
from .task import (FactoryDomain, GroundAction, PlanningError,
                   PlanningTask, SymbolTable, build_task)
from .validate import (PlanValidation, build_simulators, validate_plan)

__all__ = [
    "DEFAULT_MAX_EXPANSIONS", "FactoryDomain", "GroundAction",
    "PlannedProblem", "PlanningError", "PlanningOptions",
    "PlanningResult", "PlanningTask", "PlanValidation", "STRATEGIES",
    "SearchResult", "SymbolTable", "build_simulators", "build_task",
    "emit_domain", "emit_problem", "heuristic", "plan_operations",
    "render_plan", "solve", "topology_planning_key", "validate_plan",
]
