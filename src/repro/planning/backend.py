"""The operations-planning backend: topology -> PDDL -> plans.

This is the third codegen backend beside the intermediate JSON and the
Kubernetes YAML: where those answer *"how do we configure the
factory?"*, this one answers *"how does the configured factory work
off an order book?"* — a PDDL domain derived from the machine service
inventories, one problem file per seeded workload, a deterministic
plan for each, and a simulator-backed validation verdict.

Determinism contract (the ``plan`` conformance oracle enforces it):
for one topology + one :class:`PlanningOptions`, the emitted files and
plans are **byte-identical** across repeat runs, ``--jobs`` 1-vs-N and
interpreter restarts. Fan-out goes through
:func:`repro.parallel.map_ordered` (input-order results), the planner
seeds its own tie-breaks, and nothing reads the clock.

Results route through the content-addressed cache keyed on the model's
``content_fingerprint`` (or a structural topology key when no model is
at hand) plus the semantic planning options, salted with
:data:`repro.fingerprint.PLAN_SALT` — a warm ``repro plan`` serves the
whole bundle without searching.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from ..fingerprint import PLAN_SALT, fingerprint
from ..isa95.levels import FactoryTopology
from ..obs import METRICS, span
from ..parallel import map_ordered
from ..sim.workload import Workload, generate_workload
from .pddl import emit_domain, emit_problem, render_plan
from .planner import DEFAULT_MAX_EXPANSIONS, SearchResult, solve
from .task import FactoryDomain, PlanningError, PlanningTask, build_task
from .validate import PlanValidation, build_simulators, validate_plan

_PROBLEMS = METRICS.counter("plan.problems")
_EXPANDED = METRICS.counter("plan.nodes_expanded")
_CACHE_HITS = METRICS.counter("plan.cache_hits")
_INVALID = METRICS.counter("plan.validation_failures")


@dataclass(frozen=True)
class PlanningOptions:
    """Everything that shapes one planning run.

    ``jobs``/``mode`` are *mechanical* (pool width/flavor) and excluded
    from the cache key; every other field is semantic.
    """

    seed: int = 0
    problems: int = 1
    orders: int | None = None       # jobs per workload (None = default)
    strategy: str = "greedy"        # or "uniform"
    planner_seed: int | None = None  # tie-break seed (None = seed)
    validate: bool = True
    max_expansions: int = DEFAULT_MAX_EXPANSIONS
    jobs: int = 1
    mode: str = "thread"

    def replace(self, **changes) -> "PlanningOptions":
        return dataclasses.replace(self, **changes)

    @property
    def effective_planner_seed(self) -> int:
        return self.seed if self.planner_seed is None else self.planner_seed

    def semantic_key(self) -> dict[str, object]:
        return {"seed": self.seed, "problems": self.problems,
                "orders": self.orders, "strategy": self.strategy,
                "planner_seed": self.effective_planner_seed,
                "validate": self.validate,
                "max_expansions": self.max_expansions}


@dataclass
class PlannedProblem:
    """One problem file plus its plan and validation verdict."""

    name: str
    problem_text: str
    plan_text: str
    actions: tuple[str, ...]
    cost: int
    expanded: int
    generated: int
    parts: int
    steps: int
    dropped_steps: int
    workload_fingerprint: str
    validation: PlanValidation | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "problem_text": self.problem_text,
            "plan_text": self.plan_text,
            "actions": list(self.actions),
            "cost": self.cost,
            "expanded": self.expanded,
            "generated": self.generated,
            "parts": self.parts,
            "steps": self.steps,
            "dropped_steps": self.dropped_steps,
            "workload_fingerprint": self.workload_fingerprint,
            "validation": (self.validation.to_dict()
                           if self.validation else None),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlannedProblem":
        validation = data.get("validation")
        return cls(
            name=data["name"], problem_text=data["problem_text"],
            plan_text=data["plan_text"],
            actions=tuple(data["actions"]), cost=int(data["cost"]),
            expanded=int(data["expanded"]),
            generated=int(data["generated"]), parts=int(data["parts"]),
            steps=int(data["steps"]),
            dropped_steps=int(data["dropped_steps"]),
            workload_fingerprint=data["workload_fingerprint"],
            validation=(PlanValidation.from_dict(validation)
                        if validation else None))


@dataclass
class PlanningResult:
    """The full bundle of one planning run."""

    domain_text: str
    problems: list[PlannedProblem] = field(default_factory=list)
    options: PlanningOptions = field(default_factory=PlanningOptions)
    provenance: str = "computed"  # or "cached"

    @property
    def all_valid(self) -> bool:
        return all(problem.validation is None or problem.validation.ok
                   for problem in self.problems)

    def files(self) -> dict[str, str]:
        """Filename -> text, the byte-identity surface of the oracle."""
        emitted = {"domain.pddl": self.domain_text}
        for problem in self.problems:
            emitted[f"{problem.name}.pddl"] = problem.problem_text
            emitted[f"{problem.name}.plan"] = problem.plan_text
        return emitted

    @property
    def digest(self) -> str:
        return fingerprint(self.files(),
                           [problem.to_dict() for problem in self.problems],
                           salt=PLAN_SALT)

    def write_to(self, directory: str) -> list[str]:
        os.makedirs(directory, exist_ok=True)
        written = []
        for filename, text in sorted(self.files().items()):
            path = os.path.join(directory, filename)
            with open(path, "w") as handle:
                handle.write(text)
            written.append(path)
        return written

    def summary(self) -> dict[str, object]:
        return {
            "problems": len(self.problems),
            "strategy": self.options.strategy,
            "plan_costs": [problem.cost for problem in self.problems],
            "nodes_expanded": sum(problem.expanded
                                  for problem in self.problems),
            "validated": self.all_valid if self.options.validate else None,
            "provenance": self.provenance,
        }

    def to_dict(self) -> dict[str, object]:
        return {"domain_text": self.domain_text,
                "problems": [problem.to_dict()
                             for problem in self.problems]}


def topology_planning_key(topology: FactoryTopology) -> str:
    """Structural hash of everything the planner consumes."""
    return fingerprint(
        [[workcell.name,
          [[machine.name,
            [[service.name, len(service.inputs), len(service.outputs)]
             for service in machine.services],
            len(machine.variables)]
           for machine in workcell.machines]]
         for workcell in topology.workcells],
        salt=PLAN_SALT)


def _problem_name(index: int) -> str:
    return f"problem-{index:03d}"


def _solve_one(item: tuple[int, Workload, FactoryDomain,
                           PlanningOptions]) -> PlannedProblem:
    # module-level (not a closure) so ``mode="process"`` pools can
    # pickle it; everything it needs rides in the task payload
    index, workload, domain, options = item
    name = _problem_name(index)
    task = build_task(domain, workload)
    problem_text = emit_problem(task, name=name)
    result: SearchResult = solve(
        task, strategy=options.strategy,
        seed=options.effective_planner_seed,
        max_expansions=options.max_expansions)
    validation = None
    if options.validate:
        validation = validate_plan(
            task, result.actions,
            build_simulators(domain.topology))
    return PlannedProblem(
        name=name, problem_text=problem_text,
        plan_text=render_plan(result.actions, cost=result.cost),
        actions=tuple(action.name for action in result.actions),
        cost=result.cost, expanded=result.expanded,
        generated=result.generated, parts=len(task.parts),
        steps=sum(len(route.steps) for route in task.parts),
        dropped_steps=task.dropped_steps,
        workload_fingerprint=workload.fingerprint_key(),
        validation=validation)


def plan_operations(topology: FactoryTopology,
                    options: PlanningOptions | None = None, *,
                    model_fingerprint: str | None = None,
                    cache=None) -> PlanningResult:
    """Run the full backend: emit, plan, validate — cached end to end."""
    options = options or PlanningOptions()
    if not topology.machines:
        raise PlanningError("topology has no machines to plan for")
    with span("planning", seed=options.seed, problems=options.problems,
              strategy=options.strategy) as planning_span:
        content_key = model_fingerprint or topology_planning_key(topology)
        cache_key = fingerprint(content_key, options.semantic_key(),
                                salt=PLAN_SALT)
        if cache is not None:
            cached = cache.get_object(cache_key)
            if isinstance(cached, dict) and "domain_text" in cached:
                _CACHE_HITS.inc()
                planning_span.set("provenance", "cached")
                return PlanningResult(
                    domain_text=cached["domain_text"],
                    problems=[PlannedProblem.from_dict(problem)
                              for problem in cached["problems"]],
                    options=options, provenance="cached")

        with span("plan.emit"):
            domain = FactoryDomain(topology)
            domain_text = emit_domain(domain)
            workloads = [
                generate_workload(
                    topology, seed=options.seed, jobs=options.orders,
                    stream=f"plan-{index}", name_prefix=f"order{index}")
                for index in range(options.problems)]

        problems = map_ordered(
            _solve_one,
            [(index, workload, domain, options)
             for index, workload in enumerate(workloads)],
            jobs=options.jobs, mode=options.mode,
            span_label=lambda item, _: f"plan:{_problem_name(item[0])}",
            pool_span="plan.pool")
        result = PlanningResult(domain_text=domain_text, problems=problems,
                                options=options)
        _PROBLEMS.inc(len(problems))
        _EXPANDED.inc(sum(problem.expanded for problem in problems))
        _INVALID.inc(sum(1 for problem in problems
                         if problem.validation is not None
                         and not problem.validation.ok))
        planning_span.set("plan_costs",
                          [problem.cost for problem in problems])
        if cache is not None:
            cache.put_object(cache_key, result.to_dict())
    return result
