"""Grounded planning tasks from the extracted ISA-95 topology.

The mapping follows the two PAPERS.md planning entries (Wally et al.,
arXiv:1911.05481; Nabizada et al., arXiv:2506.06714): the ISA-95
equipment hierarchy becomes the *static* structure of a STRIPS task
and the machine service inventories become its action vocabulary.

* **machines** are typed objects stationed at their workcell;
* **locations** are the workcells, chained in production-line order
  (``linked`` both ways between neighbours — parts flow along the
  line, forwards or backwards);
* **parts** are the jobs of a :class:`repro.sim.workload.Workload` —
  one part per job, entering the line at the first workcell;
* **steps** are each job's route entries; a step *wants* exactly one
  service, and any machine *providing* that service (per the service
  inventory) can perform it.

Every service in the inventory grounds into a ``start-<service>`` /
``complete-<service>`` action pair: starting occupies the machine
(deletes ``idle``) and the part (deletes ``free``), completing
releases both and advances the part's ``current`` step along its
``next`` chain. The split is what makes "a machine never executes two
steps at once" a *plan-visible* invariant instead of a modeling
convention — exactly the SOM constraint the scheduler layer enforces
operationally.

Symbols are sanitized into PDDL-safe names by an **injective** mangle
(the conformance corpus draws hostile machine names with spaces,
quotes and non-ASCII letters): collisions after cleaning get a
deterministic ``-2``/``-3`` suffix in first-seen (topology) order, so
one topology always produces one symbol table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa95.levels import FactoryTopology
from ..sim.workload import Workload


class PlanningError(ValueError):
    """The topology/workload cannot be grounded, or no plan exists."""


# -- symbol sanitization -----------------------------------------------------

def _clean(raw: str) -> str:
    """Lowercased PDDL-identifier candidate (may be empty)."""
    out: list[str] = []
    for ch in raw.lower():
        if ch.isascii() and (ch.isalnum()):
            out.append(ch)
        elif ch in "-_ .":
            out.append("-")
        # anything else (quotes, unicode, control chars) is dropped
    text = "-".join(part for part in "".join(out).split("-") if part)
    return text


class SymbolTable:
    """Injective raw-name -> PDDL-symbol mapping, first-seen order."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._by_raw: dict[str, str] = {}
        self._taken: set[str] = set()

    def add(self, raw: str) -> str:
        if raw in self._by_raw:
            return self._by_raw[raw]
        base = _clean(raw) or self.prefix
        if not base[0].isalpha():
            base = f"{self.prefix}-{base}"
        symbol, suffix = base, 1
        while symbol in self._taken:
            suffix += 1
            symbol = f"{base}-{suffix}"
        self._taken.add(symbol)
        self._by_raw[raw] = symbol
        return symbol

    def __getitem__(self, raw: str) -> str:
        return self._by_raw[raw]

    def __contains__(self, raw: str) -> bool:
        return raw in self._by_raw

    def items(self):
        return self._by_raw.items()


# -- the shared (per-topology) domain structure ------------------------------

@dataclass(frozen=True)
class ServiceActionSchema:
    """One service of the inventory, as an action-pair schema."""

    raw_name: str
    symbol: str
    providers: tuple[str, ...]  # raw machine names, topology order


class FactoryDomain:
    """Static structure every problem over one topology shares.

    Built once per topology; :func:`build_task` grounds per-workload
    tasks against it, and :mod:`repro.planning.pddl` renders it as the
    ``(define (domain ...))`` file.
    """

    def __init__(self, topology: FactoryTopology, *,
                 name: str = "factory-ops"):
        self.name = name
        self.topology = topology
        self.machine_symbols = SymbolTable("m")
        self.location_symbols = SymbolTable("loc")
        self.service_symbols = SymbolTable("svc")
        #: raw machine name -> location position on the line
        self.machine_position: dict[str, int] = {}
        self.locations: list[str] = []  # raw workcell names, line order
        inventory = topology.service_inventory()
        for position, workcell in enumerate(topology.workcells):
            self.location_symbols.add(workcell.name)
            self.locations.append(workcell.name)
            for machine in workcell.machines:
                self.machine_symbols.add(machine.name)
                self.machine_position[machine.name] = position
        self.schemas: dict[str, ServiceActionSchema] = {}
        for raw_name, providers in inventory.items():
            self.schemas[raw_name] = ServiceActionSchema(
                raw_name=raw_name,
                symbol=self.service_symbols.add(raw_name),
                providers=tuple(providers))

    @property
    def machines(self) -> list[str]:
        """Raw machine names in topology order."""
        return [m.name for m in self.topology.machines]


# -- grounded task -----------------------------------------------------------

@dataclass(frozen=True)
class GroundAction:
    """One grounded action: sets of dynamic atom ids."""

    name: str
    kind: str  # "start" | "complete" | "move"
    pre: frozenset[int]
    add: frozenset[int]
    delete: frozenset[int]
    machine: str = ""  # raw machine name (start/complete)
    service: str = ""  # raw service name (start/complete)
    part: str = ""     # raw job name
    step_index: int = -1

    def applicable(self, state: frozenset[int]) -> bool:
        return self.pre <= state

    def apply(self, state: frozenset[int]) -> frozenset[int]:
        return (state - self.delete) | self.add


@dataclass(frozen=True)
class PartRoute:
    """One part's grounded route (for the heuristic and the emitter)."""

    raw_name: str
    symbol: str
    #: per step: (step symbol, raw service, provider location positions)
    steps: tuple[tuple[str, str, tuple[int, ...]], ...]
    terminal_symbol: str
    #: ``remaining[i][l]`` = exact minimal action count (moves + start +
    #: complete pairs) for this part alone to finish steps ``i..`` when
    #: standing free at location ``l`` — the per-part relaxation the
    #: planner's heuristic sums (admissible: contention only adds cost,
    #: and every action belongs to exactly one part).
    remaining: tuple[tuple[int, ...], ...] = ()


@dataclass
class PlanningTask:
    """A grounded STRIPS task plus the decode tables the planner needs."""

    domain: FactoryDomain
    parts: list[PartRoute]
    atom_names: list[str] = field(default_factory=list)
    init: frozenset[int] = frozenset()
    goal: frozenset[int] = frozenset()
    actions: list[GroundAction] = field(default_factory=list)
    #: atom id -> (part index, step position); terminal = len(steps)
    current_info: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: atom id -> (part index, location position)
    at_info: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: atom id -> (part index, step position, machine location position)
    processing_info: dict[int, tuple[int, int, int]] = \
        field(default_factory=dict)
    #: workload steps dropped because no machine provides their service
    dropped_steps: int = 0
    dropped_jobs: int = 0

    def atom(self, text: str) -> int:
        raise NotImplementedError  # filled in by build_task's interner

    def goal_reached(self, state: frozenset[int]) -> bool:
        return self.goal <= state


def build_task(domain: FactoryDomain, workload: Workload) -> PlanningTask:
    """Ground one workload into a task over *domain*.

    Steps whose machine models no services (the workload generator's
    generic ``process`` handling) have no action schema and are
    dropped; jobs left with no steps are dropped whole. Both counts
    are reported on the task so callers can surface the truncation.
    """
    topology = domain.topology
    task = PlanningTask(domain=domain, parts=[])
    interner: dict[str, int] = {}

    def atom(text: str) -> int:
        ident = interner.get(text)
        if ident is None:
            ident = len(task.atom_names)
            interner[text] = ident
            task.atom_names.append(text)
        return ident

    task.atom = atom  # type: ignore[method-assign]
    if not topology.workcells:
        raise PlanningError("topology has no workcells to plan over")
    part_symbols = SymbolTable("p")
    step_symbols = SymbolTable("s")
    init: set[int] = set()
    goal: set[int] = set()
    actions: list[GroundAction] = []

    machine_services = {machine.name: {s.name for s in machine.services}
                        for machine in topology.machines}
    for machine_raw, symbol in domain.machine_symbols.items():
        init.add(atom(f"idle {symbol}"))

    # parts and their step chains
    for job in workload.jobs:
        kept = [step for step in job.steps
                if step.service in machine_services.get(step.machine, ())]
        task.dropped_steps += len(job.steps) - len(kept)
        if not kept:
            task.dropped_jobs += 1
            continue
        part_sym = part_symbols.add(job.name)
        steps: list[tuple[str, str, tuple[int, ...]]] = []
        step_syms: list[str] = []
        for number, step in enumerate(kept, start=1):
            step_sym = step_symbols.add(f"{job.name}#{number}")
            schema = domain.schemas[step.service]
            positions = tuple(sorted({domain.machine_position[provider]
                                      for provider in schema.providers}))
            steps.append((step_sym, step.service, positions))
            step_syms.append(step_sym)
        terminal = step_symbols.add(f"{job.name}#done")
        route = PartRoute(raw_name=job.name, symbol=part_sym,
                          steps=tuple(steps), terminal_symbol=terminal,
                          remaining=_route_table(
                              steps, len(domain.locations)))
        task.parts.append(route)

        entry_loc = domain.location_symbols[domain.locations[0]]
        init.add(atom(f"part-at {part_sym} {entry_loc}"))
        init.add(atom(f"free {part_sym}"))
        init.add(atom(f"current {part_sym} {step_syms[0]}"))
        goal.add(atom(f"current {part_sym} {terminal}"))

        chain = step_syms + [terminal]
        for position, (step_sym, service_raw, _) in enumerate(steps):
            schema = domain.schemas[service_raw]
            next_sym = chain[position + 1]
            for provider in schema.providers:
                machine_sym = domain.machine_symbols[provider]
                loc_pos = domain.machine_position[provider]
                loc_sym = domain.location_symbols[
                    domain.locations[loc_pos]]
                processing = atom(
                    f"processing {machine_sym} {part_sym} {step_sym}")
                current = atom(f"current {part_sym} {step_sym}")
                actions.append(GroundAction(
                    name=(f"start-{schema.symbol} {machine_sym} "
                          f"{part_sym} {step_sym} {loc_sym}"),
                    kind="start",
                    pre=frozenset({
                        atom(f"part-at {part_sym} {loc_sym}"),
                        current,
                        atom(f"idle {machine_sym}"),
                        atom(f"free {part_sym}"),
                    }),
                    add=frozenset({processing}),
                    delete=frozenset({atom(f"idle {machine_sym}"),
                                      atom(f"free {part_sym}")}),
                    machine=provider, service=service_raw,
                    part=job.name, step_index=position))
                actions.append(GroundAction(
                    name=(f"complete-{schema.symbol} {machine_sym} "
                          f"{part_sym} {step_sym} {next_sym}"),
                    kind="complete",
                    pre=frozenset({processing, current}),
                    add=frozenset({atom(f"idle {machine_sym}"),
                                   atom(f"free {part_sym}"),
                                   atom(f"current {part_sym} {next_sym}")}),
                    delete=frozenset({processing, current}),
                    machine=provider, service=service_raw,
                    part=job.name, step_index=position))

        # moves along the line, both directions between neighbours
        for left, right in zip(domain.locations, domain.locations[1:]):
            for source, target in ((left, right), (right, left)):
                source_sym = domain.location_symbols[source]
                target_sym = domain.location_symbols[target]
                actions.append(GroundAction(
                    name=f"move {part_sym} {source_sym} {target_sym}",
                    kind="move",
                    pre=frozenset({
                        atom(f"part-at {part_sym} {source_sym}"),
                        atom(f"free {part_sym}"),
                    }),
                    add=frozenset({
                        atom(f"part-at {part_sym} {target_sym}")}),
                    delete=frozenset({
                        atom(f"part-at {part_sym} {source_sym}")}),
                    part=job.name))

    # decode tables for the heuristic
    for part_index, route in enumerate(task.parts):
        chain = [sym for sym, _, _ in route.steps] + [route.terminal_symbol]
        for position, step_sym in enumerate(chain):
            ident = atom(f"current {route.symbol} {step_sym}")
            task.current_info[ident] = (part_index, position)
        for loc_pos, loc_raw in enumerate(domain.locations):
            loc_sym = domain.location_symbols[loc_raw]
            ident = atom(f"part-at {route.symbol} {loc_sym}")
            task.at_info[ident] = (part_index, loc_pos)
        for position, (step_sym, service_raw, _) in enumerate(route.steps):
            schema = domain.schemas[service_raw]
            for provider in schema.providers:
                machine_sym = domain.machine_symbols[provider]
                ident = atom(f"processing {machine_sym} {route.symbol} "
                             f"{step_sym}")
                task.processing_info[ident] = (
                    part_index, position, domain.machine_position[provider])

    task.init = frozenset(init)
    task.goal = frozenset(goal)
    task.actions = sorted(actions, key=lambda action: action.name)
    return task


def _route_table(steps: list[tuple[str, str, tuple[int, ...]]],
                 n_locations: int) -> tuple[tuple[int, ...], ...]:
    """``remaining[i][l]`` for one part (see :class:`PartRoute`).

    Backwards dynamic programming over (step index, location): doing
    step *i* from location *l* costs the moves to some provider, the
    start/complete pair, and the optimal rest from that provider's
    location — minimized over providers.
    """
    rows: list[tuple[int, ...]] = [tuple([0] * n_locations)]
    for _, _, providers in reversed(steps):
        after = rows[0]
        rows.insert(0, tuple(
            min(abs(location - provider) + 2 + after[provider]
                for provider in providers)
            for location in range(n_locations)))
    return tuple(rows)
