"""Plan validation by execution against the behavioural simulators.

A plan is not trusted because the search said so: every plan is
replayed step by step — preconditions checked against the evolving
state, effects applied — and every ``complete`` action actually
*invokes* the modeled service on the part's machine through
:class:`repro.machines.MachineSimulator` (argument defaults per the
service's modeled arity, exactly like the deployment smoke test).
That closes the loop the ROADMAP asks for: the planner's output is
checked against the same behavioural layer the configured factory
runs on, not against the planner's own model of itself.

Violations are collected as deterministic strings (the conformance
harness digests failure text); an empty ``problems`` list plus a
reached goal is the definition of a valid plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa95.levels import FactoryTopology
from ..machines import MachineSimulator, SimulationError, \
    spec_from_machine_info
from .task import GroundAction, PlanningTask

_ARGUMENT_DEFAULTS = {"Boolean": False, "Integer": 0, "Natural": 0,
                      "Real": 0.0, "Double": 0.0}


@dataclass
class PlanValidation:
    """Outcome of one simulator-backed replay."""

    steps: int = 0
    service_calls: int = 0
    moves: int = 0
    problems: list[str] = field(default_factory=list)
    goal_reached: bool = False

    @property
    def ok(self) -> bool:
        return self.goal_reached and not self.problems

    def to_dict(self) -> dict[str, object]:
        return {"ok": self.ok, "steps": self.steps,
                "service_calls": self.service_calls, "moves": self.moves,
                "goal_reached": self.goal_reached,
                "problems": list(self.problems)}

    @classmethod
    def from_dict(cls, data: dict) -> "PlanValidation":
        return cls(steps=int(data["steps"]),
                   service_calls=int(data["service_calls"]),
                   moves=int(data["moves"]),
                   problems=list(data["problems"]),
                   goal_reached=bool(data["goal_reached"]))


def build_simulators(topology: FactoryTopology,
                     *, seed: int | None = None
                     ) -> dict[str, MachineSimulator]:
    """One simulator per machine, keyed by raw machine name."""
    return {machine.name: MachineSimulator(
                spec_from_machine_info(machine), seed=seed)
            for machine in topology.machines}


def _default_arguments(simulator: MachineSimulator, service: str) -> list:
    spec = simulator.service(service)
    return [_ARGUMENT_DEFAULTS.get(arg.data_type, "plan")
            for arg in spec.inputs]


def validate_plan(task: PlanningTask, actions: tuple[GroundAction, ...],
                  simulators: dict[str, MachineSimulator]
                  ) -> PlanValidation:
    """Replay *actions* from ``task.init``; invoke services on
    *simulators* at every ``complete``."""
    outcome = PlanValidation()
    state = set(task.init)
    busy: dict[str, str] = {}  # raw machine name -> part it serves
    for number, action in enumerate(actions, start=1):
        outcome.steps += 1
        missing = sorted(task.atom_names[ident]
                         for ident in action.pre - state)
        if missing:
            outcome.problems.append(
                f"step {number} ({action.name}): precondition(s) not "
                f"satisfied: {', '.join(missing)}")
            # keep replaying — later violations are often the real story
        if action.kind == "start":
            holder = busy.get(action.machine)
            if holder is not None:
                outcome.problems.append(
                    f"step {number} ({action.name}): machine "
                    f"{action.machine!r} is already executing a step "
                    f"for part {holder!r}")
            else:
                busy[action.machine] = action.part
        elif action.kind == "complete":
            if busy.get(action.machine) != action.part:
                outcome.problems.append(
                    f"step {number} ({action.name}): machine "
                    f"{action.machine!r} is not executing a step for "
                    f"part {action.part!r}")
            busy.pop(action.machine, None)
            simulator = simulators.get(action.machine)
            if simulator is None:
                outcome.problems.append(
                    f"step {number} ({action.name}): no simulator for "
                    f"machine {action.machine!r}")
            else:
                try:
                    simulator.call(action.service, *_default_arguments(
                        simulator, action.service))
                    outcome.service_calls += 1
                except (SimulationError, KeyError) as error:
                    outcome.problems.append(
                        f"step {number} ({action.name}): simulator "
                        f"rejected {action.service!r} on "
                        f"{action.machine!r}: {error}")
        else:
            outcome.moves += 1
        state -= action.delete
        state |= action.add
    outcome.goal_reached = task.goal <= state
    if not outcome.goal_reached:
        unmet = sorted(task.atom_names[ident]
                       for ident in task.goal - state)
        outcome.problems.append(
            f"plan ends with unmet goal(s): {', '.join(unmet)}")
    return outcome
