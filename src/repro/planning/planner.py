"""From-scratch deterministic forward search over grounded tasks.

Two strategies share one best-first loop:

* ``uniform`` — uniform-cost search (f = g, unit action costs):
  cost-optimal, used where plan *cost* must be seed-independent;
* ``greedy``  — greedy best-first on the heuristic (f = h): the
  default. The heuristic below is monotonically improvable on tasks
  ground by :func:`repro.planning.task.build_task` (there is always an
  action that lowers it: complete a running step, start a ready one,
  or move a part one hop toward the nearest provider), so greedy
  expansions stay near-linear in plan length — it scales to
  mega-factory workloads where Dijkstra's frontier explodes.

**Determinism contract** (same as :mod:`repro.sim`): no wall time, no
unseeded randomness. The open list is a heap ordered by ``(f,
tie, ordinal)`` where *tie* is a SHA-256 over the planner seed, the
successor state's sorted atoms and the producing action — a **total,
seeded order**, so equal-f ties break identically on every run,
process and pool width, and *differently* across planner seeds
(which is what the ``plan`` oracle's cross-seed equivalence check
exercises). Successors are generated in sorted action-name order, so
even the insertion ordinal is reproducible.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass

from .task import GroundAction, PlanningError, PlanningTask

STRATEGIES = ("greedy", "uniform")

#: Loud-failure ceiling: a search that expands this much is wedged
#: (the corpus tasks solve in hundreds of expansions), and failing
#: deterministically beats hanging a CI job.
DEFAULT_MAX_EXPANSIONS = 200_000


@dataclass(frozen=True)
class SearchResult:
    """A plan plus the (deterministic) search effort that found it."""

    actions: tuple[GroundAction, ...]
    cost: int
    expanded: int
    generated: int
    strategy: str
    seed: int


def heuristic(task: PlanningTask, state: frozenset[int]) -> int:
    """Sum of exact per-part independent remaining costs.

    Each part contributes its ``PartRoute.remaining`` table value (the
    optimal action count for the part alone) — admissible because
    every grounded action advances exactly one part and contention can
    only add actions. Crucially it admits **monotone descent**: from
    any non-goal state some action lowers it by exactly 1 (a running
    step can always complete; an idle-world part can always follow its
    own optimal policy), so greedy best-first expands ~plan-length
    states instead of wandering plateaus.
    """
    current: dict[int, int] = {}
    location: dict[int, int] = {}
    running: dict[int, tuple[int, int]] = {}  # part -> (step, machine loc)
    for ident in state:
        info = task.current_info.get(ident)
        if info is not None:
            current[info[0]] = info[1]
            continue
        info = task.at_info.get(ident)
        if info is not None:
            location[info[0]] = info[1]
            continue
        info = task.processing_info.get(ident)
        if info is not None:
            running[info[0]] = (info[1], info[2])
    total = 0
    for part_index, route in enumerate(task.parts):
        position = current.get(part_index, len(route.steps))
        if position >= len(route.steps):
            continue
        active = running.get(part_index)
        if active is not None:
            step_position, machine_location = active
            total += 1 + route.remaining[step_position + 1][machine_location]
        else:
            here = location.get(part_index, 0)
            total += route.remaining[position][here]
    return total


def _tie_break(seed: int, state: frozenset[int], action_name: str) -> int:
    digest = hashlib.sha256(
        f"{seed}|{action_name}|{','.join(map(str, sorted(state)))}"
        .encode()).digest()
    return int.from_bytes(digest[:8], "big")


def solve(task: PlanningTask, *, strategy: str = "greedy", seed: int = 0,
          max_expansions: int = DEFAULT_MAX_EXPANSIONS) -> SearchResult:
    """Best-first forward search from ``task.init`` to ``task.goal``."""
    if strategy not in STRATEGIES:
        raise PlanningError(f"unknown strategy {strategy!r}; "
                            f"known: {', '.join(STRATEGIES)}")
    start = task.init
    if task.goal_reached(start):
        return SearchResult(actions=(), cost=0, expanded=0, generated=0,
                            strategy=strategy, seed=seed)
    counter = 0
    tie = _tie_break(seed, start, "<init>")
    frontier: list[tuple[int, int, int, frozenset[int]]] = [
        (0 if strategy == "uniform" else heuristic(task, start),
         tie, counter, start)]
    best_g: dict[frozenset[int], int] = {start: 0}
    parent: dict[frozenset[int], tuple[frozenset[int], GroundAction]] = {}
    expanded = 0
    generated = 0
    closed: set[frozenset[int]] = set()
    while frontier:
        _, _, _, state = heapq.heappop(frontier)
        if state in closed:
            continue
        closed.add(state)
        if task.goal_reached(state):
            actions: list[GroundAction] = []
            cursor = state
            while cursor in parent:
                cursor, action = parent[cursor]
                actions.append(action)
            actions.reverse()
            return SearchResult(actions=tuple(actions), cost=len(actions),
                                expanded=expanded, generated=generated,
                                strategy=strategy, seed=seed)
        expanded += 1
        if expanded > max_expansions:
            raise PlanningError(
                f"search expanded more than {max_expansions} states "
                f"without reaching the goal ({strategy}, seed {seed})")
        g = best_g[state]
        for action in task.actions:
            if not action.applicable(state):
                continue
            successor = action.apply(state)
            if successor in closed:
                continue
            g_next = g + 1
            known = best_g.get(successor)
            if known is not None and known <= g_next:
                continue
            best_g[successor] = g_next
            parent[successor] = (state, action)
            generated += 1
            counter += 1
            f = (g_next if strategy == "uniform"
                 else heuristic(task, successor))
            heapq.heappush(frontier, (
                f, _tie_break(seed, successor, action.name),
                counter, successor))
    raise PlanningError(
        f"no plan exists for this task ({strategy}, seed {seed}, "
        f"{expanded} states expanded)")
