"""repro — reproduction of *Exploiting SysML v2 Modeling for Automatic
Smart Factories Configuration* (Libro et al., DATE 2025).

Subpackages
-----------
``repro.sysml``     SysML v2 textual front end + semantic model.
``repro.isa95``     ISA-95 (IEC 62264) hierarchy layer and topology extraction.
``repro.som``       Service-Oriented Manufacturing layer.
``repro.opcua``     Simulated OPC UA substrate (servers, clients, subscriptions).
``repro.broker``    In-memory message broker (topic pub/sub).
``repro.storage``   Time-series store + historian component.
``repro.machines``  Machine catalog and behavioural simulators.
``repro.drivers``   Driver runtimes (OPC UA generic + proprietary).
``repro.codegen``   Step 1 of the paper's pipeline: model -> intermediate JSON.
``repro.service``   Concurrent configuration-serving layer (``repro serve``).
``repro.templates`` Minimal template engine for step 2.
``repro.yamlgen``   YAML emitter/parser (from scratch) for K8s manifests.
``repro.k8s``       Simulated Kubernetes cluster consuming the manifests.
``repro.icelab``    The guiding example: the full ICE Laboratory model.
``repro.pipeline``  End-to-end methodology of Fig. 1 + Table I reporting.
``repro.baseline``  SysML v1-style baseline methodology ([5]) for comparison.
``repro.diagrams``  Figure 1/2 regeneration (DOT + ASCII renderings).
"""

__version__ = "1.0.0"
