"""SysML v1-style baseline methodology ([5]) and the v1-vs-v2 comparison."""

from .compare import (FAULT_SCENARIOS, ComparisonReport, FaultOutcome,
                      FaultScenario, compare_methodologies,
                      run_fault_scenario)
from .generator import V1GenerationResult, generate_v1_configuration
from .model import (V1Block, V1FlowPort, V1Model, V1Operation, V1Property,
                    build_v1_model)

__all__ = [
    "ComparisonReport", "FAULT_SCENARIOS", "FaultOutcome", "FaultScenario",
    "V1Block", "V1FlowPort", "V1GenerationResult", "V1Model", "V1Operation",
    "V1Property", "build_v1_model", "compare_methodologies",
    "generate_v1_configuration", "run_fault_scenario",
]
