"""Configuration generation from the v1 baseline model.

Functionally equivalent to step 1 of the v2 pipeline (it emits the same
JSON shapes), so the two flows can be compared fairly. The interesting
difference is *what it cannot check*: the v1 model carries strings where
v2 carries resolved references, so the fault-injection comparison
(:mod:`repro.baseline.compare`) shows configuration errors that only
surface at deployment time under v1 but are model errors under v2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .model import V1Model


@dataclass
class V1GenerationResult:
    machine_configs: dict[str, dict] = field(default_factory=dict)
    server_configs: dict[str, dict] = field(default_factory=dict)
    generation_seconds: float = 0.0

    @property
    def opcua_server_count(self) -> int:
        return len(self.server_configs)


def generate_v1_configuration(model: V1Model) -> V1GenerationResult:
    """Walk the block repository by stereotype and emit machine configs."""
    started = time.perf_counter()
    result = V1GenerationResult()
    driver_blocks = {b.name: b for b in model.by_stereotype("driver")}
    for machine in model.by_stereotype("machine"):
        driver = None
        for child_name in machine.children:
            driver = driver_blocks.get(child_name)
            if driver is not None:
                break
        config = {
            "machine": machine.name,
            "driver": {
                "name": driver.name if driver else "",
                # stringly-typed: whatever properties exist are copied,
                # misspellings and all
                "parameters": {p.name: p.value
                               for p in (driver.properties if driver
                                         else [])},
            },
            "variables": [{"name": p.name, "data_type": p.type_name}
                          for p in machine.properties],
            "methods": [{"name": o.name,
                         "inputs": [{"name": a.name,
                                     "data_type": a.type_name}
                                    for a in o.parameters],
                         "outputs": [{"name": r.name,
                                      "data_type": r.type_name}
                                     for r in o.returns]}
                        for o in machine.operations],
        }
        result.machine_configs[machine.name] = config
    for workcell in model.by_stereotype("workcell"):
        result.server_configs[workcell.name] = {
            "server": f"{workcell.name}-opcua-server",
            "machines": [result.machine_configs[name]
                         for name in workcell.children
                         if name in result.machine_configs],
        }
    result.generation_seconds = time.perf_counter() - started
    return result
