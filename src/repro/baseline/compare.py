"""Quantitative v1-vs-v2 comparison (benchmark B1).

Two angles, matching the paper's motivation for moving to SysML v2:

1. **Model economy** — the v1 flow duplicates structure per machine
   (no definition/usage reuse); we count elements both ways for the
   same machine inventory.
2. **Rigor** — a battery of seeded modeling faults is pushed through
   both flows; v2 catches them at model time (resolution or validation
   errors), v1 generates a broken configuration without complaint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.catalog import MachineSpec
from ..sysml.errors import SysMLError
from ..sysml.resolver import load_model
from ..sysml.validation import validate_model
from .generator import generate_v1_configuration
from .model import V1Block, V1FlowPort, V1Property, build_v1_model

#: Shared mini-library used by every fault scenario.
_FAULT_PREAMBLE = """
package ISA95 {
    abstract part def Driver {
        part def DriverParameters;
    }
    abstract part def MachineDriver :> Driver;
}
package Lib {
    import ISA95::*;
    part def MyDriver :> MachineDriver {
        part def MyParameters :> Driver::DriverParameters {
            attribute ip : String;
            attribute ip_port : Integer;
        }
        port def MyVar { in attribute value : Real; }
    }
    port def OtherVar { in attribute value : Real; }
    part def MyMachine {
        attribute speed : Real;
        port data : ~Lib::MyDriver::MyVar;
    }
}
"""


@dataclass
class FaultScenario:
    """One seeded modeling mistake, expressed for both flows."""

    name: str
    description: str
    v2_source: str  # appended to the preamble

    def inject_v1(self, model) -> None:
        """Apply the equivalent mistake to a v1 model (never detected)."""
        # v1 has no construct that could reject any of these; the
        # concrete mutation mirrors the v2 fault as closely as possible.
        block = V1Block(name=f"faulty_{self.name}", stereotype="machine")
        block.properties.append(V1Property("oops", "String", "mistyped"))
        block.ports.append(V1FlowPort("dangling", "out", "Real"))
        model.add(block)


FAULT_SCENARIOS = [
    FaultScenario(
        "typo-parameter-redefinition",
        "driver parameter name mistyped in the instance "
        "(ip_adress vs ip)",
        """
        part d : Lib::MyDriver {
            part p : MyParameters {
                :>> ip_adress = '10.0.0.1';
            }
        }
        """),
    FaultScenario(
        "abstract-instantiation",
        "the abstract Driver is instantiated directly",
        """
        part d : ISA95::Driver;
        """),
    FaultScenario(
        "conjugation-mismatch",
        "a connection joins two ports with the same conjugation",
        """
        part system {
            part m1 : Lib::MyMachine;
            part m2 : Lib::MyMachine;
            connect m1.data to m2.data;
        }
        """),
    FaultScenario(
        "port-type-mismatch",
        "a connection joins ports of unrelated port definitions",
        """
        part def Peer { port vars : Lib::MyDriver::MyVar; }
        part def Stranger { port vars : Lib::OtherVar; }
        part system {
            part a : Peer;
            part b : Stranger;
            connect a.vars to b.vars;
        }
        """),
    FaultScenario(
        "dangling-connection",
        "a connection end names a feature that does not exist",
        """
        part system {
            part m : Lib::MyMachine;
            connect m.data to m.nonexistent;
        }
        """),
    FaultScenario(
        "non-conforming-redefinition",
        "a variable is redefined with an incompatible type",
        """
        part m : Lib::MyMachine {
            attribute speed :>> speed : String;
        }
        """),
    FaultScenario(
        "duplicate-member",
        "two same-named variables in one part (v1 silently overwrites)",
        """
        part def Dup {
            attribute x : Real;
            attribute x : String;
        }
        """),
]


@dataclass
class FaultOutcome:
    scenario: str
    caught_by_v2: bool
    caught_by_v1: bool
    v2_diagnostic: str = ""


@dataclass
class ComparisonReport:
    v1_elements: int
    v2_elements: int
    v2_definitions: int
    v2_reused_definitions: int
    fault_outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def v2_catch_rate(self) -> float:
        if not self.fault_outcomes:
            return 0.0
        return (sum(1 for o in self.fault_outcomes if o.caught_by_v2)
                / len(self.fault_outcomes))

    @property
    def v1_catch_rate(self) -> float:
        if not self.fault_outcomes:
            return 0.0
        return (sum(1 for o in self.fault_outcomes if o.caught_by_v1)
                / len(self.fault_outcomes))

    def render(self) -> str:
        lines = [
            f"v1 model elements: {self.v1_elements}",
            f"v2 model elements: {self.v2_elements} "
            f"({self.v2_definitions} definitions, "
            f"{self.v2_reused_definitions} reused)",
            "",
            f"{'fault scenario':<34} {'v2':>6} {'v1':>6}",
        ]
        for outcome in self.fault_outcomes:
            lines.append(
                f"{outcome.scenario:<34} "
                f"{'caught' if outcome.caught_by_v2 else 'MISSED':>6} "
                f"{'caught' if outcome.caught_by_v1 else 'MISSED':>6}")
        lines.append(f"catch rate: v2 {self.v2_catch_rate:.0%} vs "
                     f"v1 {self.v1_catch_rate:.0%}")
        return "\n".join(lines)


def run_fault_scenario(scenario: FaultScenario) -> FaultOutcome:
    """Push one fault through both flows."""
    caught_v2 = False
    diagnostic = ""
    try:
        model = load_model(_FAULT_PREAMBLE + scenario.v2_source)
        report = validate_model(model)
        if report.errors or report.warnings:
            caught_v2 = True
            diagnostic = str((report.errors + report.warnings)[0])
    except SysMLError as exc:
        caught_v2 = True
        diagnostic = str(exc)

    caught_v1 = False
    try:
        v1_model = build_v1_model([])
        scenario.inject_v1(v1_model)
        generate_v1_configuration(v1_model)
    except Exception as exc:  # pragma: no cover - v1 never raises
        caught_v1 = True
        diagnostic += f" / v1: {exc}"
    return FaultOutcome(scenario.name, caught_v2, caught_v1, diagnostic)


def compare_methodologies(specs: list[MachineSpec]) -> ComparisonReport:
    """Full B1 comparison for a machine inventory."""
    from ..icelab.model_gen import load_icelab_model
    from ..sysml.elements import Definition

    v1_model = build_v1_model(specs)
    v2_model = load_icelab_model(specs)
    user_elements = 0
    definitions = 0
    definition_names: dict[str, int] = {}
    for element in v2_model.owned_elements:
        if getattr(element, "is_library", False):
            continue
        user_elements += 1
        for descendant in element.descendants():
            user_elements += 1
            if isinstance(descendant, Definition):
                definitions += 1
                definition_names[descendant.name] = \
                    definition_names.get(descendant.name, 0) + 1
    # reuse: machine types instantiated more than once (e.g. RB-Kairos)
    type_use: dict[str, int] = {}
    for spec in specs:
        type_use[spec.type_name] = type_use.get(spec.type_name, 0) + 1
    reused = sum(count - 1 for count in type_use.values() if count > 1)
    report = ComparisonReport(
        v1_elements=v1_model.element_count,
        v2_elements=user_elements,
        v2_definitions=definitions,
        v2_reused_definitions=reused,
    )
    for scenario in FAULT_SCENARIOS:
        report.fault_outcomes.append(run_fault_scenario(scenario))
    return report
