"""SysML v1-style baseline model representation (the methodology of [5]).

The paper positions SysML v2 against the previous, v1-based flow of
Gaiardelli et al. The essential differences this baseline captures:

* **UML profile, not KerML**: a v1 model is a flat set of stereotyped
  *blocks* with stringly-typed properties — there is no definition/usage
  separation, so every machine instance re-states its whole structure
  (no reuse through specialization).
* **No language-level rigor**: nothing prevents instantiating an
  "abstract" block, conjugation does not exist (flow ports carry a
  direction string), and redefinition is by name convention only — a
  typo silently produces a new property instead of an error.

The v1 generator (:mod:`repro.baseline.generator`) still produces the
same intermediate JSON, which is exactly the paper's point: v1 *can*
drive the pipeline, but the model is bigger, duplicated, and unchecked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.catalog import MachineSpec


@dataclass
class V1Property:
    name: str
    type_name: str
    value: object | None = None


@dataclass
class V1FlowPort:
    name: str
    direction: str  # "in" | "out" — a plain string, never checked
    type_name: str


@dataclass
class V1Operation:
    name: str
    parameters: list[V1Property] = field(default_factory=list)
    returns: list[V1Property] = field(default_factory=list)


@dataclass
class V1Block:
    """A stereotyped block («machine», «driver», «workcell», ...)."""

    name: str
    stereotype: str
    is_abstract: bool = False  # advisory only; never enforced
    properties: list[V1Property] = field(default_factory=list)
    ports: list[V1FlowPort] = field(default_factory=list)
    operations: list[V1Operation] = field(default_factory=list)
    children: list[str] = field(default_factory=list)  # by name

    @property
    def element_count(self) -> int:
        return (1 + len(self.properties) + len(self.ports)
                + len(self.operations)
                + sum(len(o.parameters) + len(o.returns)
                      for o in self.operations))


@dataclass
class V1Model:
    """A flat block repository, as a v1 tool would serialize it."""

    blocks: dict[str, V1Block] = field(default_factory=dict)

    def add(self, block: V1Block) -> V1Block:
        # v1 tools happily overwrite duplicates; we mimic that silently
        self.blocks[block.name] = block
        return block

    def by_stereotype(self, stereotype: str) -> list[V1Block]:
        return [b for b in self.blocks.values()
                if b.stereotype == stereotype]

    @property
    def element_count(self) -> int:
        return sum(b.element_count for b in self.blocks.values())


def build_v1_model(specs: list[MachineSpec]) -> V1Model:
    """Model the factory the v1 way: full duplication per machine."""
    model = V1Model()
    workcells: dict[str, list[str]] = {}
    for spec in specs:
        machine_block = V1Block(name=spec.name, stereotype="machine")
        # v1 restates every variable as a property AND a flow port on the
        # machine, plus the mirrored port on the driver block
        for variable in spec.variables:
            machine_block.properties.append(
                V1Property(variable.name, variable.data_type))
            machine_block.ports.append(
                V1FlowPort(f"{variable.name}_out", "out",
                           variable.data_type))
        for service in spec.services:
            machine_block.operations.append(V1Operation(
                name=service.name,
                parameters=[V1Property(a.name, a.data_type)
                            for a in service.inputs],
                returns=[V1Property(a.name, a.data_type)
                         for a in service.outputs]))
            machine_block.ports.append(
                V1FlowPort(f"{service.name}_call", "in", "Operation"))
        driver_block = V1Block(name=f"{spec.name}_driver",
                               stereotype="driver")
        for name, value in spec.driver.parameters.items():
            driver_block.properties.append(
                V1Property(name, type(value).__name__, value))
        for variable in spec.variables:
            driver_block.ports.append(
                V1FlowPort(f"{variable.name}_in", "in",
                           variable.data_type))
        for service in spec.services:
            driver_block.ports.append(
                V1FlowPort(f"{service.name}_serve", "out", "Operation"))
        driver_block.properties.append(
            V1Property("protocol", "String", spec.driver.protocol))
        machine_block.children.append(driver_block.name)
        model.add(machine_block)
        model.add(driver_block)
        workcells.setdefault(spec.workcell, []).append(spec.name)
    for workcell_name, machine_names in workcells.items():
        model.add(V1Block(name=workcell_name, stereotype="workcell",
                          children=list(machine_names)))
    return model
