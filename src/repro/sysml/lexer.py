"""Streaming lexer for the SysML v2 textual notation subset.

The lexer converts source text into a stream of
:class:`~repro.sysml.tokens.Token`. It handles:

* identifiers (including unrestricted names quoted with single quotes in
  SysML v2: ``'name with spaces'`` — exposed as IDENT tokens),
* string literals (double quotes),
* integer and real literals,
* line comments ``//``, block comments ``/* */``, and documentation
  bodies (``doc /* ... */`` — the block following ``doc`` is preserved as
  a DOC_COMMENT token),
* the multi-character operators ``:>``, ``:>>`` and ``::``.

Two properties matter at mega-factory scale (ICE-Lab×100 is ~3 million
tokens):

* **Streaming.** :func:`iter_tokens` yields tokens as they are scanned
  instead of materializing the whole ``list[Token]`` per file, so the
  parser's working set stays at its (bounded) lookahead window no
  matter how large one package source grows. :func:`tokenize` remains
  as the list-building convenience wrapper.
* **Throughput.** Scanning is driven by one compiled master regex — a
  single C-level match per token — instead of per-character ``_peek``
  calls, and identifier values are ``sys.intern``-ed so downstream name
  tables compare pointers before bytes. Tokens themselves are
  slot-based (:class:`~repro.sysml.tokens.Token`).

The original character-at-a-time scanner survives as
:mod:`repro.sysml.lexer_reference`; differential tests assert both
lexers agree token-for-token (kinds, values, locations and raised
errors), and the A4 scaling bench reports this lexer's tokens/sec
speedup over it.
"""

from __future__ import annotations

import re
from sys import intern as _intern
from typing import Iterator

from .errors import LexerError, SourceLocation
from .tokens import Token, TokenKind

_PUNCT = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.EQUALS,
    "*": TokenKind.STAR,
    "~": TokenKind.TILDE,
    "-": TokenKind.MINUS,
    ":": TokenKind.COLON,
    ":>": TokenKind.SPECIALIZES,
    ":>>": TokenKind.REDEFINES,
    "::": TokenKind.DOUBLE_COLON,
}

#: One alternation per lexical class; longest-match operators first
#: within their class (``:>>`` before ``:>`` before ``::`` before
#: ``:``). Identifier starts are ``\w`` minus digits, which matches the
#: reference lexer's ``isalpha() or '_'`` rule for every practical
#: character (a guard below rejects the exotic ``isalnum``-but-not-
#: ``isalpha`` starters, e.g. ``'²'``, exactly as the reference does).
#: String escapes may cover *any* character including a newline
#: (``\\[\s\S]``); an unescaped newline ends the match and reports an
#: unterminated literal.
_MASTER = re.compile(
    r"""
      (?P<WS>[ \t\r\n]+)
    | (?P<IDENT>[^\W\d]\w*)
    | (?P<PUNCT>:>>|:>|::|[{}\[\]();,.=*~:-])
    | (?P<NUMBER>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
    | (?P<SQ>'(?:[^'\\\n]|\\[\s\S])*')
    | (?P<DQ>"(?:[^"\\\n]|\\[\s\S])*")
    | (?P<LINE>//[^\n]*)
    | (?P<BLOCK>/\*)
    """,
    re.VERBOSE,
)

_ESCAPES = {"n": "\n", "t": "\t"}
_ESCAPE_RE = re.compile(r"\\([\s\S])")


def _unescape(body: str) -> str:
    if "\\" not in body:
        return body
    return _ESCAPE_RE.sub(
        lambda m: _ESCAPES.get(m.group(1), m.group(1)), body)


class Lexer:
    """Tokenizes a single source text (streaming)."""

    def __init__(self, text: str, filename: str = "<model>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        #: Absolute position of the current line's first character;
        #: columns are derived as ``pos - line_start + 1``, which gives
        #: the same "every non-newline character is one column wide"
        #: arithmetic as the reference lexer.
        self.line_start = 0

    # -- scanning ----------------------------------------------------------

    def stream(self) -> Iterator[Token]:
        """Yield tokens one at a time; the final token is always EOF."""
        text = self.text
        filename = self.filename
        length = len(text)
        match = _MASTER.match
        pos = self.pos
        line = self.line
        line_start = self.line_start
        prev_is_doc = False
        while pos < length:
            m = match(text, pos)
            if m is None:
                self._sync(pos, line, line_start)
                self._fail(pos)
            group = m.lastgroup
            end = m.end()
            if group == "WS":
                newlines = text.count("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rindex("\n", pos, end) + 1
                pos = end
                continue
            location = SourceLocation(filename, line, pos - line_start + 1)
            if group == "IDENT":
                value = m.group()
                first = value[0]
                if first != "_" and not first.isalpha():
                    self._sync(pos, line, line_start)
                    raise LexerError(
                        f"unexpected character {first!r}", location)
                token = Token(TokenKind.IDENT, _intern(value), location)
                prev_is_doc = value == "doc"
                pos = end
                yield token
                continue
            if group == "PUNCT":
                value = m.group()
                prev_is_doc = False
                pos = end
                yield Token(_PUNCT[value], value, location)
                continue
            if group == "NUMBER":
                value = m.group()
                if "." in value and end < length and text[end] in "eE":
                    # the reference scanner commits to a real literal
                    # once it has seen a fraction, so a dangling
                    # exponent marker is an error there (while '2e'
                    # harmlessly lexes as INTEGER IDENT)
                    self._sync(pos, line, line_start)
                    raise LexerError(
                        "malformed exponent in real literal", location)
                kind = (TokenKind.REAL
                        if "." in value or "e" in value or "E" in value
                        else TokenKind.INTEGER)
                prev_is_doc = False
                pos = end
                yield Token(kind, value, location)
                continue
            if group == "SQ" or group == "DQ":
                raw = m.group()
                body = _unescape(raw[1:-1])
                newlines = raw.count("\n")
                if newlines:  # escaped newlines inside the literal
                    line += newlines
                    line_start = pos + raw.rindex("\n") + 1
                prev_is_doc = False
                pos = end
                yield Token(TokenKind.STRING, body, location)
                continue
            if group == "LINE":
                pos = end
                continue
            # BLOCK: group == "BLOCK" — find the terminator directly
            close = text.find("*/", end)
            if close < 0:
                self._sync(pos, line, line_start)
                raise LexerError("unterminated block comment", location)
            body = text[end:close]
            newlines = body.count("\n")
            if newlines:
                line += newlines
                line_start = end + body.rindex("\n") + 1
            if prev_is_doc:
                prev_is_doc = False
                pos = close + 2
                yield Token(TokenKind.DOC_COMMENT, body.strip(), location)
                continue
            pos = close + 2
        self._sync(pos, line, line_start)
        yield Token(TokenKind.EOF, "",
                    SourceLocation(filename, line, pos - line_start + 1))

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list (EOF-terminated)."""
        return list(self.stream())

    # -- error reporting ---------------------------------------------------

    def _sync(self, pos: int, line: int, line_start: int) -> None:
        self.pos = pos
        self.line = line
        self.line_start = line_start

    def _fail(self, pos: int) -> None:
        """Classify the character the master regex refused to match."""
        location = SourceLocation(self.filename, self.line,
                                  pos - self.line_start + 1)
        ch = self.text[pos]
        if ch in "'\"":
            # a quote that did not scan as a complete literal: either
            # the closing quote is missing or a raw newline intervened
            raise LexerError("unterminated string literal", location)
        raise LexerError(f"unexpected character {ch!r}", location)


def iter_tokens(text: str, filename: str = "<model>") -> Iterator[Token]:
    """Stream the tokens of *text*; the final token is always EOF."""
    return Lexer(text, filename).stream()


def tokenize(text: str, filename: str = "<model>") -> list[Token]:
    """Convenience wrapper: lex *text* and return the token list."""
    return Lexer(text, filename).tokens()
