"""Model differencing.

The paper's closing claim is that generation keeps the deployed
configuration consistent with the model. Consistency over time needs
*change detection*: this module diffs two resolved models element by
element (matched by qualified name) and reports additions, removals and
modifications — the input to incremental regeneration
(:mod:`repro.codegen.incremental`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast_nodes import FeatureRefExpr, Literal
from .elements import (BindingConnector, Connector, Definition, Element,
                       Import, Model, Usage)


@dataclass(frozen=True)
class Change:
    """One difference between two models."""

    kind: str  # "added" | "removed" | "modified"
    path: str  # qualified name of the element
    element_type: str
    detail: str = ""

    def __str__(self) -> str:
        detail = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}: {self.element_type} {self.path}{detail}"


@dataclass
class ModelDiff:
    added: list[Change] = field(default_factory=list)
    removed: list[Change] = field(default_factory=list)
    modified: list[Change] = field(default_factory=list)

    @property
    def changes(self) -> list[Change]:
        return self.added + self.removed + self.modified

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.modified)

    def touching(self, path_prefix: str) -> list[Change]:
        """Changes whose path lies under *path_prefix*."""
        return [c for c in self.changes
                if c.path == path_prefix
                or c.path.startswith(path_prefix + "::")]

    def __len__(self) -> int:
        return len(self.changes)

    def render(self) -> str:
        if self.is_empty:
            return "(no changes)"
        return "\n".join(str(c) for c in self.changes)


def _signature(element: Element) -> dict:
    """The comparable fields of one element (children excluded)."""
    signature: dict = {"type": type(element).__name__}
    if isinstance(element, Definition):
        signature["abstract"] = element.is_abstract
        signature["specializes"] = tuple(
            str(n) for n in element.specialization_names)
    elif isinstance(element, Usage):
        signature["kind"] = element.kind
        signature["abstract"] = element.is_abstract
        signature["ref"] = element.is_reference
        signature["direction"] = element.direction
        signature["typed"] = (str(element.type_name)
                              if element.type_name else None)
        signature["conjugated"] = element.conjugated
        signature["redefines"] = tuple(
            str(n) for n in element.redefinition_names)
        signature["value"] = _value_signature(element.value)
        if element.multiplicity is not None:
            signature["multiplicity"] = (element.multiplicity.lower,
                                         element.multiplicity.upper)
    elif isinstance(element, BindingConnector):
        signature["bind"] = (str(element.left_chain),
                             str(element.right_chain))
    elif isinstance(element, Connector):
        signature["connect"] = (element.connector_kind,
                                str(element.source_chain),
                                str(element.target_chain))
    elif isinstance(element, Import):
        signature["import"] = (str(element.target_name), element.wildcard,
                               element.recursive)
    return signature


def _value_signature(value) -> object:
    if isinstance(value, Literal):
        return ("literal", value.value)
    if isinstance(value, FeatureRefExpr):
        return ("ref", str(value.chain))
    return None


def _index(model: Model, *, include_library: bool = False
           ) -> dict[str, Element]:
    """qualified name -> element, for every named element."""
    table: dict[str, Element] = {}

    def visit(element: Element) -> None:
        if element.name:
            table.setdefault(element.qualified_name, element)
        for child in element.owned_elements:
            visit(child)

    for root in model.owned_elements:
        if not include_library and getattr(root, "is_library", False):
            continue
        visit(root)
    return table


def diff_models(old: Model, new: Model,
                *, include_library: bool = False) -> ModelDiff:
    """Structural diff of two resolved models."""
    old_index = _index(old, include_library=include_library)
    new_index = _index(new, include_library=include_library)
    diff = ModelDiff()
    for path in sorted(new_index.keys() - old_index.keys()):
        diff.added.append(Change("added", path,
                                 type(new_index[path]).__name__))
    for path in sorted(old_index.keys() - new_index.keys()):
        diff.removed.append(Change("removed", path,
                                   type(old_index[path]).__name__))
    for path in sorted(old_index.keys() & new_index.keys()):
        old_signature = _signature(old_index[path])
        new_signature = _signature(new_index[path])
        if old_signature != new_signature:
            changed_fields = sorted(
                key for key in set(old_signature) | set(new_signature)
                if old_signature.get(key) != new_signature.get(key))
            diff.modified.append(Change(
                "modified", path, type(new_index[path]).__name__,
                detail=", ".join(
                    f"{key}: {old_signature.get(key)!r} -> "
                    f"{new_signature.get(key)!r}"
                    for key in changed_fields)))
    # anonymous connectors/binds: compare as multisets per owner
    _diff_anonymous(old, new, diff,
                    include_library=include_library)
    return diff


def _diff_anonymous(old: Model, new: Model, diff: ModelDiff,
                    *, include_library: bool) -> None:
    def collect(model: Model) -> dict[tuple, int]:
        bag: dict[tuple, int] = {}
        for root in model.owned_elements:
            if not include_library and getattr(root, "is_library", False):
                continue
            for element in [root, *root.descendants()]:
                if element.name:
                    continue
                if isinstance(element, (BindingConnector, Connector)):
                    owner = (element.owner.qualified_name
                             if element.owner else "")
                    key = (owner, tuple(sorted(
                        _signature(element).items())))
                    bag[key] = bag.get(key, 0) + 1
        return bag

    old_bag = collect(old)
    new_bag = collect(new)
    for key in sorted(set(old_bag) | set(new_bag), key=str):
        owner, signature = key
        delta = new_bag.get(key, 0) - old_bag.get(key, 0)
        label = dict(signature).get("bind") or dict(signature).get("connect")
        if delta > 0:
            diff.added.append(Change("added", owner, "Connector",
                                     detail=f"{label} x{delta}"))
        elif delta < 0:
            diff.removed.append(Change("removed", owner, "Connector",
                                       detail=f"{label} x{-delta}"))
