"""Model navigation and metric queries.

These are the measurements behind Table I: per-scope counts of part
definitions, part/attribute/port instances, and generic "find usages
typed by X" navigation used by the ISA-95 topology extractor.
"""

from __future__ import annotations

from dataclasses import dataclass

from .elements import (Definition, Element, Model,
                       PortDefinition, Type, Usage)
from .instances import InstanceNode, elaborate


@dataclass(frozen=True)
class ElementCounts:
    """Element statistics for one scope (a machine, a workcell, ...)."""

    part_definitions: int = 0
    part_instances: int = 0
    attribute_instances: int = 0
    port_instances: int = 0
    action_instances: int = 0
    binding_connectors: int = 0
    connectors: int = 0

    def __add__(self, other: "ElementCounts") -> "ElementCounts":
        return ElementCounts(
            self.part_definitions + other.part_definitions,
            self.part_instances + other.part_instances,
            self.attribute_instances + other.attribute_instances,
            self.port_instances + other.port_instances,
            self.action_instances + other.action_instances,
            self.binding_connectors + other.binding_connectors,
            self.connectors + other.connectors,
        )


def definitions_in(scope: Element, kind: str | None = None) -> list[Definition]:
    """All definitions declared under *scope* (transitively)."""
    found = [e for e in scope.descendants() if isinstance(e, Definition)]
    if kind is not None:
        found = [d for d in found if d.kind == kind]
    return found


def usages_in(scope: Element, kind: str | None = None) -> list[Usage]:
    """All usages declared under *scope* (transitively)."""
    found = [e for e in scope.descendants() if isinstance(e, Usage)]
    if kind is not None:
        found = [u for u in found if u.kind == kind]
    return found


def usages_typed_by(model: Model, definition: Type,
                    *, transitive: bool = True) -> list[Usage]:
    """Usages whose (effective) type is *definition* or a specialization."""
    result: list[Usage] = []
    for element in model.all_elements():
        if not isinstance(element, Usage):
            continue
        typ = element.effective_type()
        if typ is None:
            continue
        if typ is definition or (transitive and typ.conforms_to(definition)):
            result.append(element)
    return result


def specializations_of(model: Model, definition: Definition) -> list[Definition]:
    """Definitions that (transitively) specialize *definition*."""
    return [e for e in model.all_elements()
            if isinstance(e, Definition) and e is not definition
            and e.conforms_to(definition)]


def count_definition_closure(usage: Usage) -> int:
    """Number of distinct definitions involved in modeling *usage*.

    This is the paper's "Part Def." column: the definitions the usage's
    type closure declares or references (the machine def, its nested
    data/service defs, port defs, and everything they specialize outside
    the shared ISA-95 base library).
    """
    closure: set[int] = set()

    def visit_type(typ: Type | None) -> None:
        if typ is None or id(typ) in closure:
            return
        if isinstance(typ, Definition):
            closure.add(id(typ))
            for nested in typ.descendants():
                if isinstance(nested, Definition):
                    closure.add(id(nested))
                elif isinstance(nested, Usage):
                    visit_type(nested.effective_type())
        for general in typ.specializations:
            if isinstance(general, Definition):
                visit_type(general)

    visit_type(usage.effective_type())
    for nested in usage.descendants():
        if isinstance(nested, Usage):
            visit_type(nested.effective_type())
    return len(closure)


def instance_counts(usage: Usage) -> ElementCounts:
    """Elaborate *usage* and count the instance categories of Table I."""
    tree = elaborate(usage)
    return instance_counts_of_tree(tree)


def instance_counts_of_tree(tree: InstanceNode) -> ElementCounts:
    parts = attributes = ports = actions = binds = connectors = 0
    for node in tree.walk():
        if node.kind == "part":
            parts += 1
        elif node.kind == "attribute":
            attributes += 1
        elif node.kind == "port":
            ports += 1
        elif node.kind == "action":
            actions += 1
        elif node.kind == "bind":
            binds += 1
        elif node.kind in ("connection", "interface"):
            connectors += 1
    return ElementCounts(
        part_definitions=0,
        part_instances=parts,
        attribute_instances=attributes,
        port_instances=ports,
        action_instances=actions,
        binding_connectors=binds,
        connectors=connectors,
    )


def scope_counts(model: Model, usage: Usage) -> ElementCounts:
    """Full Table-I style counts for a machine/driver usage pair scope."""
    counts = instance_counts(usage)
    return ElementCounts(
        part_definitions=count_definition_closure(usage),
        part_instances=counts.part_instances,
        attribute_instances=counts.attribute_instances,
        port_instances=counts.port_instances,
        action_instances=counts.action_instances,
        binding_connectors=counts.binding_connectors,
        connectors=counts.connectors,
    )


def find_port_definitions(model: Model, scope: Element | None = None) -> list[PortDefinition]:
    root = scope or model
    return [e for e in root.descendants() if isinstance(e, PortDefinition)]


def model_summary(model: Model) -> dict[str, int]:
    """Whole-model element census, keyed by element class name."""
    summary: dict[str, int] = {}
    for element in model.all_elements():
        key = type(element).__name__
        summary[key] = summary.get(key, 0) + 1
    return summary
