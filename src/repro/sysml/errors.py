"""Diagnostics for the SysML v2 front end.

Every error raised while lexing, parsing, resolving, or validating a
model carries a :class:`SourceLocation` so tooling (and test output) can
point at the offending line of the textual notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.summary import Summarizable


@dataclass(frozen=True)
class SourceLocation:
    """A position inside a textual-notation source file."""

    filename: str = "<model>"
    line: int = 1
    column: int = 1

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class SysMLError(Exception):
    """Base class for all SysML front-end errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class LexerError(SysMLError):
    """Raised when the lexer meets a character it cannot tokenize."""


class ParseError(SysMLError):
    """Raised when the token stream does not match the grammar."""


class ResolutionError(SysMLError):
    """Raised when a qualified name or feature chain cannot be resolved."""


class ValidationError(SysMLError):
    """Raised (or collected) when a well-formedness rule is violated."""


@dataclass
class Diagnostic:
    """A single validation finding.

    Validation does not stop at the first problem: the validator collects
    :class:`Diagnostic` records so a model author sees every issue at once.
    """

    severity: str  # "error" | "warning"
    rule: str  # short rule identifier, e.g. "abstract-instantiation"
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    element: str = ""  # qualified name of the offending element, if any

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def __str__(self) -> str:
        where = f" [{self.element}]" if self.element else ""
        return f"{self.severity}: {self.rule}: {self.message}{where} ({self.location})"


class DiagnosticReport(Summarizable):
    """Accumulates diagnostics produced by a validation pass."""

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []

    def error(self, rule: str, message: str, *, location: SourceLocation | None = None,
              element: str = "") -> None:
        self.diagnostics.append(
            Diagnostic("error", rule, message, location or SourceLocation(), element))

    def warning(self, rule: str, message: str, *, location: SourceLocation | None = None,
                element: str = "") -> None:
        self.diagnostics.append(
            Diagnostic("warning", rule, message, location or SourceLocation(), element))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        return not self.errors

    def extend(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def summary(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [
                {"severity": d.severity, "rule": d.rule,
                 "message": d.message, "element": d.element,
                 "location": str(d.location)}
                for d in self.diagnostics
            ],
        }

    def raise_if_errors(self) -> None:
        """Raise a :class:`ValidationError` summarizing all errors, if any."""
        if self.errors:
            summary = "; ".join(str(d) for d in self.errors[:10])
            more = len(self.errors) - 10
            if more > 0:
                summary += f"; (+{more} more)"
            raise ValidationError(summary, self.errors[0].location)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __str__(self) -> str:
        return "\n".join(str(d) for d in self.diagnostics) or "(no diagnostics)"
