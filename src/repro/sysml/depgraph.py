"""Fine-grained model fingerprints and the resolution dependency graph.

The incremental engine needs two facts about every part of a model:

* **what is here** — :func:`deep_fingerprint`, a Merkle hash over the
  purely *syntactic* content of a subtree (names, kinds, typings,
  values, connector chains — never resolved pointers, never source
  locations, so comment-only edits hash equal);
* **who resolved through what** — a :class:`DepGraph` recorded while
  the resolver runs, with two edge kinds:

  - *target* edges point from a consumer to the subtree anchor its
    reference finally resolved to; they go stale when the producer's
    deep fingerprint changes (any content edit);
  - *scope* edges point from a consumer to every namespace its lookup
    *consulted* on the way (owner-chain walk, imports, supertype
    tables); they go stale only when that namespace's
    :func:`scope_fingerprint` changes — its declaration head, member
    name/kind table, imports or aliases — so a value edit deep inside
    a consulted scope dirties nobody.

Anchors are the granularity of invalidation: the model root's direct
children plus every *named* package or part usage. Everything else
(attributes, connectors, anonymous members) belongs to its nearest
anchor. :class:`NodeKey` names an anchor by class + path, stably across
loads of the same sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..fingerprint import DEPS_SALT, NODE_SALT, fingerprint
from .elements import (Alias, Assignment, BindingConnector, Connector,
                       Definition, Element, Import, Model, Namespace,
                       Package, PartUsage, PerformAction, RedefinitionUsage,
                       Type, Usage)
from .ast_nodes import FeatureRefExpr, Literal

# Cached-attribute names (stored in element __dict__, invalidated by the
# merge along changed ancestor chains).
_DEEP_ATTR = "_repro_deep_fp"
_SCOPE_ATTR = "_repro_scope_fp"
_KEY_ATTR = "_repro_node_key"
_ANCHOR_ATTR = "_repro_anchor_key"


@dataclass(frozen=True)
class NodeKey:
    """Stable identity of one model node: element class + model path."""

    kind: str
    path: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.path or '<root>'}"

    def is_under(self, path: str) -> bool:
        """Whether this key's path lies within *path* (inclusive)."""
        return self.path == path or self.path.startswith(path + "::")


#: The model root as a scope (its member table is the top-level names).
ROOT_KEY = NodeKey("Model", "")


def _segment(element: Element) -> str:
    """One path segment — syntactic, so it is identical before and
    after resolution (``:>> ip = ...`` contributes ``ip`` even while
    its resolver-assigned name is still unset)."""
    name = element.name
    if name is None and isinstance(element, RedefinitionUsage) \
            and element.redefinition_names:
        name = element.redefinition_names[0].parts[-1]
    if name:
        return name
    return f"#{element.local_ordinal}"


def node_path(element: Element) -> str:
    """``Pkg::Part::child`` path of an element from the model root."""
    parts: list[str] = []
    node: Element | None = element
    while node is not None and not isinstance(node, Model):
        parts.append(_segment(node))
        node = node.owner
    return "::".join(reversed(parts))


def is_anchor(element: Element) -> bool:
    """Anchors: root children plus named packages, definitions and
    part usages — the granularity at which dirtiness is tracked."""
    if isinstance(element, Model):
        return False
    if isinstance(element.owner, Model):
        return True
    return isinstance(element, (Package, Definition, PartUsage)) \
        and bool(element.name)


def node_key(element: Element) -> NodeKey:
    """The (cached) :class:`NodeKey` of one element."""
    if isinstance(element, Model):
        return ROOT_KEY
    cached = element.__dict__.get(_KEY_ATTR)
    if cached is None:
        cached = NodeKey(type(element).__name__, node_path(element))
        element.__dict__[_KEY_ATTR] = cached
    return cached


def anchor_key(element: Element) -> NodeKey:
    """The key of the nearest enclosing anchor (or the root)."""
    cached = element.__dict__.get(_ANCHOR_ATTR)
    if cached is not None:
        return cached
    node: Element | None = element
    while node is not None and not isinstance(node, Model):
        if is_anchor(node):
            key = node_key(node)
            break
        node = node.owner
    else:
        key = ROOT_KEY
    element.__dict__[_ANCHOR_ATTR] = key
    return key


# -- syntactic signatures ----------------------------------------------------

def _value_signature(value: object) -> object:
    if isinstance(value, Literal):
        return ("lit", type(value.value).__name__, value.value)
    if isinstance(value, FeatureRefExpr):
        return ("ref", str(value.chain))
    if value is None:
        return None
    return ("expr", type(value).__name__, str(value))


def _name_of(element: Element) -> str | None:
    """Syntactic name (normalizing the ``:>>`` shorthand, whose real
    name is assigned by the resolver)."""
    if isinstance(element, RedefinitionUsage) and element.redefinition_names:
        return element.redefinition_names[0].parts[-1]
    return element.name


def own_signature(element: Element) -> tuple:
    """Every syntactic fact about one element, children excluded.

    Deliberately omits resolved pointers (``typ``, ``specializations``,
    ``redefines``, connector ends) and source locations: the signature
    must be identical before and after resolution, and comment-only
    edits — which only shift locations — must hash equal.
    """
    signature: list[object] = [type(element).__name__, _name_of(element),
                               element.documentation]
    if isinstance(element, Package):
        signature.append(("library", element.is_library))
    if isinstance(element, Import):
        signature.append(("import", str(element.target_name),
                          element.wildcard, element.recursive))
    if isinstance(element, Alias):
        signature.append(("alias", str(element.target_name)))
    if isinstance(element, Type):
        signature.append(("type", element.is_abstract,
                          tuple(str(n)
                                for n in element.specialization_names)))
    if isinstance(element, Usage):
        multiplicity = element.multiplicity
        signature.append((
            "usage", element.kind, element.direction, element.is_reference,
            str(element.type_name) if element.type_name else None,
            element.conjugated,
            tuple(str(n) for n in element.redefinition_names),
            _value_signature(element.value),
            (multiplicity.lower, multiplicity.upper)
            if multiplicity is not None else None,
        ))
    if isinstance(element, BindingConnector):
        signature.append(("bind", str(element.left_chain),
                          str(element.right_chain)))
    if isinstance(element, Connector):
        signature.append(("connect", element.connector_kind,
                          str(element.type_name)
                          if element.type_name else None,
                          str(element.source_chain),
                          str(element.target_chain)))
    if isinstance(element, PerformAction):
        signature.append(("perform", str(element.target_chain)))
    if isinstance(element, Assignment):
        signature.append(("assign", element.direction,
                          _value_signature(element.value)))
    return tuple(signature)


def deep_fingerprint(element: Element) -> str:
    """Merkle hash of one subtree's full syntactic content (cached)."""
    cached = element.__dict__.get(_DEEP_ATTR)
    if cached is not None:
        return cached
    fp = fingerprint(own_signature(element),
                     [deep_fingerprint(child)
                      for child in element.owned_elements],
                     salt=NODE_SALT)
    element.__dict__[_DEEP_ATTR] = fp
    return fp


def _scope_head(element: Element) -> tuple:
    """The declaration facts that shape lookups *through* a namespace:
    its supertype clause and typing (inherited members), plus the
    member name/kind table, imports and aliases — but never member
    *content*, so value edits inside members leave it unchanged."""
    head: list[object] = [type(element).__name__, _name_of(element)]
    if isinstance(element, Package):
        head.append(element.is_library)
    if isinstance(element, Type):
        head.append(tuple(str(n) for n in element.specialization_names))
    if isinstance(element, Usage):
        head.append((str(element.type_name) if element.type_name else None,
                     element.conjugated,
                     tuple(str(n) for n in element.redefinition_names)))
    members = tuple(sorted(
        (_name_of(child) or "", type(child).__name__)
        for child in element.owned_elements if _name_of(child)))
    imports = tuple((str(child.target_name), child.wildcard, child.recursive)
                    for child in element.owned_elements
                    if isinstance(child, Import))
    aliases = tuple(sorted(
        (child.name or "", str(child.target_name))
        for child in element.owned_elements if isinstance(child, Alias)))
    return (tuple(head), members, imports, aliases)


def scope_fingerprint(element: Element) -> str:
    """Hash of one namespace *as a lookup scope* (cached)."""
    cached = element.__dict__.get(_SCOPE_ATTR)
    if cached is not None:
        return cached
    fp = fingerprint(_scope_head(element), salt=NODE_SALT + ":scope")
    element.__dict__[_SCOPE_ATTR] = fp
    return fp


def clear_fingerprints(element: Element, *, ancestors: bool = True) -> None:
    """Drop cached fingerprints of *element* (and its ancestor chain,
    whose Merkle hashes embed it)."""
    node: Element | None = element
    while node is not None:
        node.__dict__.pop(_DEEP_ATTR, None)
        node.__dict__.pop(_SCOPE_ATTR, None)
        if not ancestors:
            return
        node = node.owner


def find_by_path(model: Model, path: str) -> Element | None:
    """Resolve a :func:`node_path` back to its element (None if gone)."""
    if not path:
        return model
    scope: Element = model
    for part in path.split("::"):
        found = None
        for child in scope.owned_elements:
            if _segment(child) == part:
                found = child
                break
        if found is None:
            return None
        scope = found
    return scope


# -- the per-model index -----------------------------------------------------

class NodeIndex:
    """Snapshot of every anchor's deep hash and every namespace's scope
    hash, for one resolved model state."""

    def __init__(self) -> None:
        #: anchor key -> deep (Merkle) fingerprint
        self.deep: dict[NodeKey, str] = {}
        #: namespace key -> scope fingerprint (includes :data:`ROOT_KEY`)
        self.scope: dict[NodeKey, str] = {}

    @classmethod
    def of_model(cls, model: Model) -> "NodeIndex":
        index = cls()
        index.scope[ROOT_KEY] = scope_fingerprint(model)

        def visit(element: Element) -> None:
            if is_anchor(element):
                index.deep[node_key(element)] = deep_fingerprint(element)
            if isinstance(element, Namespace):
                index.scope[node_key(element)] = scope_fingerprint(element)
            for child in element.owned_elements:
                visit(child)

        for child in model.owned_elements:
            visit(child)
        return index

    def changed_since(self, previous: "NodeIndex"
                      ) -> tuple[set[NodeKey], set[NodeKey]]:
        """Keys whose deep / scope hash differs from *previous* —
        including keys present on only one side (added or removed)."""
        deep_changed = {key for key in self.deep.keys()
                        | previous.deep.keys()
                        if self.deep.get(key) != previous.deep.get(key)}
        scope_changed = {key for key in self.scope.keys()
                         | previous.scope.keys()
                         if self.scope.get(key) != previous.scope.get(key)}
        return deep_changed, scope_changed


# -- the dependency graph ----------------------------------------------------

class DepGraph:
    """Who-resolved-through-whom, recorded during name resolution.

    Consumers are anchor keys; producers are anchor keys (target edges)
    or namespace keys (scope edges). The graph is additive during a
    resolve pass; :meth:`drop_consumers` clears a consumer's edges
    right before it is re-resolved so stale edges never accumulate.
    """

    def __init__(self) -> None:
        self.target_deps: dict[NodeKey, set[NodeKey]] = {}
        self.scope_deps: dict[NodeKey, set[NodeKey]] = {}

    def record_target(self, consumer: NodeKey, producer: NodeKey) -> None:
        if producer != consumer:
            self.target_deps.setdefault(consumer, set()).add(producer)

    def record_scope(self, consumer: NodeKey, scope: NodeKey) -> None:
        if scope != consumer:
            self.scope_deps.setdefault(consumer, set()).add(scope)

    def drop_consumers(self, consumers: Iterable[NodeKey]) -> None:
        for consumer in consumers:
            self.target_deps.pop(consumer, None)
            self.scope_deps.pop(consumer, None)

    def consumers(self) -> set[NodeKey]:
        return set(self.target_deps) | set(self.scope_deps)

    def consumers_affected(self, deep_changed: set[NodeKey],
                           scope_changed: set[NodeKey]) -> set[NodeKey]:
        """Consumers with a target edge into *deep_changed* or a scope
        edge into *scope_changed*."""
        affected: set[NodeKey] = set()
        if deep_changed:
            for consumer, producers in self.target_deps.items():
                if producers & deep_changed:
                    affected.add(consumer)
        if scope_changed:
            for consumer, scopes in self.scope_deps.items():
                if scopes & scope_changed:
                    affected.add(consumer)
        return affected

    def producers_of(self, consumers: Iterable[NodeKey]) -> set[NodeKey]:
        """Every target producer any of *consumers* resolved to."""
        producers: set[NodeKey] = set()
        for consumer in consumers:
            producers |= self.target_deps.get(consumer, set())
        return producers

    def deps_fingerprint(self, consumers: Iterable[NodeKey],
                         index: NodeIndex) -> str:
        """Hash of everything *consumers* resolved to — the
        ``deps_fingerprint`` half of a per-node cache key. Built from
        target producers' deep hashes only: a scope change that alters
        a resolution outcome necessarily changes the recorded target
        set, and one that does not cannot change generated bytes."""
        producers = self.producers_of(consumers)
        pairs = sorted((str(key), index.deep.get(key, ""))
                       for key in producers)
        return fingerprint(pairs, salt=DEPS_SALT)

    def producer_closure(self, start: Iterable[NodeKey]) -> set[NodeKey]:
        """Transitive target producers reachable from *start*.

        A machine usage has a direct edge to its definition, which has
        its own edge to *its* supertype — following the chain captures
        the whole inheritance/value closure that shapes elaboration,
        including supertypes the consumer never referenced directly.
        """
        closure: set[NodeKey] = set()
        frontier = list(start)
        while frontier:
            key = frontier.pop()
            for producer in self.target_deps.get(key, ()):
                if producer not in closure:
                    closure.add(producer)
                    frontier.append(producer)
        return closure


class DepRecorder:
    """Resolver-facing recording facade: tracks the element currently
    being resolved and writes its lookups into a :class:`DepGraph`."""

    def __init__(self, graph: DepGraph):
        self.graph = graph
        self._consumer: NodeKey | None = None

    def set_consumer(self, element: Element | None) -> None:
        self._consumer = None if element is None else anchor_key(element)

    def consulted(self, scope_element: Element) -> None:
        """A lookup consulted *scope_element*'s member table (and, when
        it is a type, its inherited tables)."""
        consumer = self._consumer
        if consumer is None:
            return
        self.graph.record_scope(consumer, node_key(scope_element))
        if isinstance(scope_element, Type):
            for general in scope_element.all_supertypes():
                self.graph.record_scope(consumer, node_key(general))

    def consulted_subtree(self, scope_element: Element) -> None:
        """A lookup walked the whole subtree (recursive wildcard
        import): depend on its full content, not just its head."""
        if self._consumer is not None:
            self.graph.record_target(self._consumer,
                                     anchor_key(scope_element))

    def resolved(self, element: Element | None) -> None:
        """A reference resolved to *element*."""
        if self._consumer is not None and element is not None \
                and not isinstance(element, Model):
            self.graph.record_target(self._consumer, anchor_key(element))


# -- dirty-subtree utilities -------------------------------------------------

def subtree_anchor_keys(element: Element) -> set[NodeKey]:
    """Anchor keys of every element in *element*'s subtree (the seed
    set for :meth:`DepGraph.producer_closure` over one model node)."""
    keys = {anchor_key(element)}

    def visit(node: Element) -> None:
        if is_anchor(node):
            keys.add(node_key(node))
        for child in node.owned_elements:
            visit(child)

    visit(element)
    return keys


def node_dependency_fingerprints(model: Model, graph: DepGraph,
                                 index: NodeIndex,
                                 *paths: str) -> tuple[str, str] | None:
    """``(node_fp, deps_fp)`` of the node group rooted at *paths*.

    ``node_fp`` hashes the group's own syntactic content; ``deps_fp``
    hashes the deep fingerprints of every *external* producer its
    resolution closure reaches (definitions, supertypes, referenced
    values). Together they key per-node artifacts: the generated bytes
    can only change if one of the two fingerprints changes. Returns
    ``None`` when any path no longer resolves to an element.
    """
    roots: list[tuple[str, Element]] = []
    for path in paths:
        element = find_by_path(model, path) if path else None
        if element is None:
            return None
        roots.append((path, element))
    node_fp = fingerprint(
        [(path, deep_fingerprint(element)) for path, element in roots],
        salt=NODE_SALT)
    seeds: set[NodeKey] = set()
    for _, element in roots:
        seeds |= subtree_anchor_keys(element)
    external = {key for key in graph.producer_closure(seeds)
                if not any(key.is_under(path) for path, _ in roots)}
    pairs = sorted((str(key), index.deep.get(key, "")) for key in external)
    return node_fp, fingerprint(pairs, salt=DEPS_SALT)

def elements_anchored_in(model: Model, dirty: set[NodeKey]
                         ) -> list[Element]:
    """Pre-order list of every element whose nearest anchor is dirty.

    A clean anchor nested inside a dirty one keeps its subtree out of
    the list (its own resolution state is still valid)."""
    collected: list[Element] = []

    def visit(element: Element, inside_dirty: bool) -> None:
        if is_anchor(element):
            inside_dirty = node_key(element) in dirty
        if inside_dirty:
            collected.append(element)
        for child in element.owned_elements:
            visit(child, inside_dirty)

    for child in model.owned_elements:
        visit(child, False)
    return collected


def iter_with_anchor(model: Model) -> Iterator[tuple[Element, NodeKey]]:
    """Every element with its anchor key, in pre-order."""

    def visit(element: Element, anchor: NodeKey
              ) -> Iterator[tuple[Element, NodeKey]]:
        if is_anchor(element):
            anchor = node_key(element)
        yield element, anchor
        for child in element.owned_elements:
            yield from visit(child, anchor)

    for child in model.owned_elements:
        yield from visit(child, ROOT_KEY)
