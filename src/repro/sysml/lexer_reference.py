"""Reference lexer: the character-at-a-time executable specification.

This is the original hand-written scanner for the SysML v2 textual
notation subset, kept as an *executable spec* after the streaming
regex lexer in :mod:`repro.sysml.lexer` replaced it on the hot path:

* the differential tests in ``tests/sysml/test_lexer_stream.py`` assert
  that the streaming lexer agrees with this one token-for-token
  (kinds, values **and** source locations) on every corpus source, and
* the A4 scaling benchmark measures the streaming lexer's tokens/sec
  speedup against this baseline, so the win stays visible per PR.

It advances one character at a time with explicit line/column
bookkeeping — easy to audit against the grammar, and deliberately
naive about performance. Behavioural changes belong in *both* lexers;
the differential tests fail loudly if they drift apart.
"""

from __future__ import annotations

from .errors import LexerError, SourceLocation
from .tokens import Token, TokenKind

_PUNCT = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.EQUALS,
    "*": TokenKind.STAR,
    "~": TokenKind.TILDE,
    "-": TokenKind.MINUS,
}


def _is_digit(ch: str) -> bool:
    # ASCII digits only: Unicode numerics ('²', '๒', ...) are not part
    # of the lexical grammar and report as unexpected characters, in
    # both this and the streaming lexer.
    return "0" <= ch <= "9"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class ReferenceLexer:
    """Tokenizes a single source text, one character at a time."""

    def __init__(self, text: str, filename: str = "<model>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1
        self._prev_significant: Token | None = None

    # -- low-level helpers -------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    # -- scanning ----------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list (EOF-terminated)."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            if token is None:
                continue
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    def _next_token(self) -> Token | None:
        self._skip_whitespace()
        loc = self._loc()
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, "", loc)
        if ch == "/" and self._peek(1) == "/":
            self._skip_line_comment()
            return None
        if ch == "/" and self._peek(1) == "*":
            body = self._read_block_comment(loc)
            if self._prev_was_doc_keyword():
                token = Token(TokenKind.DOC_COMMENT, body, loc)
                self._prev_significant = token
                return token
            return None
        if ch == ":":
            return self._read_colon(loc)
        if ch in _PUNCT:
            self._advance()
            return self._emit(Token(_PUNCT[ch], ch, loc))
        if ch == '"':
            return self._emit(self._read_string(loc, '"'))
        if ch == "'":
            return self._emit(self._read_quoted_name(loc))
        if _is_digit(ch):
            return self._emit(self._read_number(loc))
        if _is_ident_start(ch):
            return self._emit(self._read_identifier(loc))
        raise LexerError(f"unexpected character {ch!r}", loc)

    def _emit(self, token: Token) -> Token:
        self._prev_significant = token
        return token

    def _prev_was_doc_keyword(self) -> bool:
        prev = self._prev_significant
        return prev is not None and prev.is_keyword("doc")

    def _skip_whitespace(self) -> None:
        while self._peek() and self._peek() in " \t\r\n":
            self._advance()

    def _skip_line_comment(self) -> None:
        while self._peek() and self._peek() != "\n":
            self._advance()

    def _read_block_comment(self, loc: SourceLocation) -> str:
        self._advance(2)  # consume /*
        start = self.pos
        while True:
            if not self._peek():
                raise LexerError("unterminated block comment", loc)
            if self._peek() == "*" and self._peek(1) == "/":
                body = self.text[start:self.pos]
                self._advance(2)
                return body.strip()
            self._advance()

    def _read_colon(self, loc: SourceLocation) -> Token:
        if self._peek(1) == ">" and self._peek(2) == ">":
            self._advance(3)
            return self._emit(Token(TokenKind.REDEFINES, ":>>", loc))
        if self._peek(1) == ">":
            self._advance(2)
            return self._emit(Token(TokenKind.SPECIALIZES, ":>", loc))
        if self._peek(1) == ":":
            self._advance(2)
            return self._emit(Token(TokenKind.DOUBLE_COLON, "::", loc))
        self._advance()
        return self._emit(Token(TokenKind.COLON, ":", loc))

    def _read_string(self, loc: SourceLocation, quote: str) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexerError("unterminated string literal", loc)
            if ch == "\\":
                self._advance()
                escaped = self._advance()
                parts.append({"n": "\n", "t": "\t"}.get(escaped, escaped))
                continue
            if ch == quote:
                self._advance()
                return Token(TokenKind.STRING, "".join(parts), loc)
            parts.append(self._advance())

    def _read_quoted_name(self, loc: SourceLocation) -> Token:
        # SysML v2 "unrestricted names" use single quotes; they behave as
        # identifiers. Strings in attribute values also commonly use single
        # quotes in the paper's listings, so the parser decides from context;
        # we lex them as STRING and let the parser accept STRING where a
        # name is expected only if it contains no spaces? Simpler and
        # sufficient here: expose single-quoted text as STRING.
        return self._read_string(loc, "'")

    def _read_number(self, loc: SourceLocation) -> Token:
        start = self.pos
        while _is_digit(self._peek()):
            self._advance()
        if self._peek() == "." and _is_digit(self._peek(1)):
            self._advance()
            while _is_digit(self._peek()):
                self._advance()
            if self._peek() and self._peek() in "eE":
                self._read_exponent(loc)
            return Token(TokenKind.REAL, self.text[start:self.pos], loc)
        if self._peek() and self._peek() in "eE" and (_is_digit(self._peek(1)) or
                                     (self._peek(1) in "+-" and _is_digit(self._peek(2)))):
            self._read_exponent(loc)
            return Token(TokenKind.REAL, self.text[start:self.pos], loc)
        return Token(TokenKind.INTEGER, self.text[start:self.pos], loc)

    def _read_exponent(self, loc: SourceLocation) -> None:
        self._advance()  # e / E
        if self._peek() in "+-":
            self._advance()
        if not _is_digit(self._peek()):
            raise LexerError("malformed exponent in real literal", loc)
        while _is_digit(self._peek()):
            self._advance()

    def _read_identifier(self, loc: SourceLocation) -> Token:
        start = self.pos
        while _is_ident_part(self._peek()):
            self._advance()
        return Token(TokenKind.IDENT, self.text[start:self.pos], loc)


def tokenize_reference(text: str, filename: str = "<model>") -> list[Token]:
    """Lex *text* with the reference scanner and return the token list."""
    return ReferenceLexer(text, filename).tokens()
