"""Builds the semantic element graph from parse trees."""

from __future__ import annotations

from . import ast_nodes as ast
from .elements import (Assignment, BindingConnector, Connector, Definition,
                       DEFINITION_CLASSES, Element, Import, Model,
                       Package, PerformAction, Usage, USAGE_CLASSES)
from .errors import SysMLError


class ModelBuilder:
    """Constructs a :class:`Model` from one or more ASTs.

    Several source texts can be folded into the same model (one per file,
    like the SysML v2 interchange tooling does): call :meth:`add` for each
    parsed :class:`~repro.sysml.ast_nodes.ModelNode`, then :meth:`build`.
    """

    def __init__(self) -> None:
        self.model = Model()

    def add(self, tree: ast.ModelNode) -> None:
        for member in tree.members:
            element = self._build_member(member)
            if element is not None:
                self.model.add_owned(element)

    def build(self) -> Model:
        return self.model

    # -- member construction -------------------------------------------------

    def _build_member(self, node: ast.MemberNode) -> Element | None:
        if isinstance(node, ast.DocNode):
            return None  # attached to owner by _attach_members
        if isinstance(node, ast.PackageNode):
            return self._build_package(node)
        if isinstance(node, ast.ImportNode):
            return Import(node.name, node.wildcard, node.recursive,
                          node.location)
        if isinstance(node, ast.DefinitionNode):
            return self._build_definition(node)
        if isinstance(node, ast.UsageNode):
            return self._build_usage(node)
        if isinstance(node, ast.BindNode):
            return BindingConnector(node.left, node.right, node.location)
        if isinstance(node, ast.ConnectNode):
            connector = Connector(node.kind, node.name, node.source,
                                  node.target, node.location)
            if node.type is not None:
                connector.type_name = node.type.name
            return connector
        if isinstance(node, ast.PerformNode):
            perform = PerformAction(node.target, node.location)
            self._attach_members(perform, node.members)
            return perform
        if isinstance(node, ast.AssignmentNode):
            return Assignment(node.direction, node.name, node.value,
                              node.location)
        if isinstance(node, ast.EndNode):
            end = USAGE_CLASSES["end"](node.name, location=node.location)
            if node.type is not None:
                end.type_name = node.type.name
                end.conjugated = node.type.conjugated
            return end
        if isinstance(node, ast.AliasNode):
            from .elements import Alias
            return Alias(node.name, node.target, node.location)
        if isinstance(node, ast.EnumDefinitionNode):
            return self._build_enum(node)
        raise SysMLError(f"unsupported AST node {type(node).__name__}")

    def _build_enum(self, node: ast.EnumDefinitionNode):
        from .elements import EnumerationDefinition, EnumerationLiteral
        definition = EnumerationDefinition(node.name,
                                           location=node.location)
        definition.specialization_names = list(node.specializes)
        definition.documentation = node.doc
        for literal_name in node.literals:
            definition.add_owned(EnumerationLiteral(literal_name))
        return definition

    def _build_package(self, node: ast.PackageNode) -> Package:
        package = Package(node.name, node.location)
        self._attach_members(package, node.members)
        return package

    def _build_definition(self, node: ast.DefinitionNode) -> Definition:
        cls = DEFINITION_CLASSES.get(node.kind)
        if cls is None:
            raise SysMLError(f"unknown definition kind {node.kind!r}",
                             node.location)
        definition = cls(node.name, is_abstract=node.is_abstract,
                         location=node.location)
        definition.specialization_names = list(node.specializes)
        definition.documentation = node.doc
        self._attach_members(definition, node.members)
        return definition

    def _build_usage(self, node: ast.UsageNode) -> Usage:
        cls = USAGE_CLASSES.get(node.kind)
        if cls is None:
            raise SysMLError(f"unknown usage kind {node.kind!r}", node.location)
        usage = cls(node.name, is_abstract=node.is_abstract,
                    location=node.location)
        usage.direction = node.direction
        usage.is_reference = node.is_ref
        usage.multiplicity = node.multiplicity
        if node.type is not None:
            usage.type_name = node.type.name
            usage.conjugated = node.type.conjugated
        usage.specialization_names = list(node.specializes)
        usage.redefinition_names = list(node.redefines)
        usage.value = node.value
        usage.documentation = node.doc
        self._attach_members(usage, node.members)
        return usage

    def _attach_members(self, owner: Element,
                        members: list[ast.MemberNode]) -> None:
        for member in members:
            if isinstance(member, ast.DocNode):
                if not owner.documentation:
                    owner.documentation = member.text
                continue
            element = self._build_member(member)
            if element is not None:
                owner.add_owned(element)


def build_model(*trees: ast.ModelNode) -> Model:
    """Build an (unresolved) model from parse trees."""
    builder = ModelBuilder()
    for tree in trees:
        builder.add(tree)
    return builder.build()
