"""A miniature SysML v2 standard library.

Real SysML v2 ships a model library (``ScalarValues``, ``Base``, ...)
that every model can reference. We provide the subset the methodology's
models use: scalar value types and a few SI-ish attribute definitions.
Members of these packages are implicitly visible everywhere, mirroring
the pilot implementation's implicit library imports.
"""

SCALAR_VALUES_SOURCE = """
package ScalarValues {
    doc /* Scalar data value types, mirroring the SysML v2 model library. */
    abstract attribute def ScalarValue;
    attribute def Boolean :> ScalarValue;
    attribute def String :> ScalarValue;
    abstract attribute def NumericalValue :> ScalarValue;
    attribute def Number :> NumericalValue;
    attribute def Complex :> Number;
    attribute def Real :> Complex;
    attribute def Rational :> Real;
    attribute def Integer :> Rational;
    attribute def Natural :> Integer;
    attribute def Positive :> Natural;
    attribute def Double :> Real;
    attribute def Float :> Real;
}

package Base {
    doc /* Root abstractions: anything and datum. */
    abstract part def Anything;
    abstract attribute def DataValue;
}
"""

#: Packages whose members are visible without an explicit import.
IMPLICIT_LIBRARY_PACKAGES = ("ScalarValues", "Base")

#: Scalar type names -> Python types, used by instance elaboration and
#: the configuration generator when emitting typed variable nodes.
PYTHON_TYPES = {
    "Boolean": bool,
    "String": str,
    "Integer": int,
    "Natural": int,
    "Positive": int,
    "Real": float,
    "Double": float,
    "Float": float,
    "Rational": float,
    "Number": float,
    "Complex": complex,
}

DEFAULT_VALUES = {
    "Boolean": False,
    "String": "",
    "Integer": 0,
    "Natural": 0,
    "Positive": 1,
    "Real": 0.0,
    "Double": 0.0,
    "Float": 0.0,
    "Rational": 0.0,
    "Number": 0.0,
}


def scalar_python_type(type_name: str) -> type | None:
    """Python type for a scalar value type name (or None if unknown)."""
    return PYTHON_TYPES.get(type_name)


def scalar_default(type_name: str):
    """A neutral default value for a scalar value type name."""
    return DEFAULT_VALUES.get(type_name)
