"""Well-formedness validation for resolved SysML v2 models.

The paper's pitch for SysML v2 over v1 is *rigor*: the language (and
therefore this checker) can reject models that would silently produce
broken factory configurations. Each rule below has a stable identifier
used in tests and in the v1-vs-v2 comparison benchmark.

Rules
-----
``abstract-instantiation``   a non-abstract, non-reference usage is typed
                             by an abstract definition (e.g. instantiating
                             the abstract ``Driver`` directly).
``cyclic-specialization``    a type (transitively) specializes itself.
``specialization-kind``      a definition specializes a definition of a
                             different kind (part def :> port def).
``redefinition-type``        a redefining feature's type does not conform
                             to the redefined feature's type.
``conjugation-target``       ``~T`` used where T is not a port definition.
``multiplicity-bounds``      lower bound exceeds upper bound.
``connector-port-type``      connected ports are typed by different port
                             definitions (no shared contract).
``connector-conjugation``    both connected ports have the same
                             conjugation — no provider/consumer pairing.
``binding-kind``             a bind equates features of different kinds.
``duplicate-member``         two same-named members in one namespace.
``dangling-ref``             a ``ref part`` has neither type nor target.
``empty-definition``         (warning) a non-abstract, never-used
                             definition with no members.
``enum-value``               a feature typed by an enum def is assigned
                             something other than one of its literals.
"""

from __future__ import annotations

from .ast_nodes import FeatureRefExpr
from .elements import (BindingConnector, Connector, Definition, Element,
                       EnumerationDefinition, Model,
                       PortDefinition, Type, Usage)
from .errors import DiagnosticReport


def validate_model(model: Model) -> DiagnosticReport:
    """Run every rule over *model* and return the collected diagnostics."""
    report = DiagnosticReport()
    used_type_ids: set[int] = set()
    for element in model.all_elements():
        if isinstance(element, Usage) and element.typ is not None:
            used_type_ids.add(id(element.typ))
        if isinstance(element, Type):
            for general in element.specializations:
                used_type_ids.add(id(general))
    for element in model.all_elements():
        if isinstance(element, Type):
            _check_cyclic_specialization(element, report)
            _check_duplicate_members(element, report)
        if isinstance(element, Definition):
            _check_specialization_kind(element, report)
            _check_empty_definition(element, report, used_type_ids)
        if isinstance(element, Usage):
            _check_abstract_instantiation(element, report)
            _check_redefinition_type(element, report)
            _check_conjugation_target(element, report)
            _check_multiplicity(element, report)
            _check_dangling_ref(element, report)
            _check_enum_value(element, report)
        if isinstance(element, Connector):
            _check_connector(element, report)
        if isinstance(element, BindingConnector):
            _check_binding(element, report)
    return report


# -- individual rules --------------------------------------------------------

def _check_cyclic_specialization(element: Type, report: DiagnosticReport) -> None:
    if element in element.all_supertypes():
        report.error("cyclic-specialization",
                     f"type '{element.qualified_name}' specializes itself",
                     location=element.location,
                     element=element.qualified_name)


def _check_duplicate_members(element: Type, report: DiagnosticReport) -> None:
    seen: set[str] = set()
    for child in element.owned_elements:
        if not child.name:
            continue
        if child.name in seen:
            report.error("duplicate-member",
                         f"duplicate member '{child.name}' in "
                         f"'{element.qualified_name}'",
                         location=child.location,
                         element=element.qualified_name)
        seen.add(child.name)


def _check_specialization_kind(element: Definition,
                               report: DiagnosticReport) -> None:
    for general in element.specializations:
        if isinstance(general, Definition) and general.kind != element.kind:
            report.error(
                "specialization-kind",
                f"{element.kind} def '{element.qualified_name}' cannot "
                f"specialize {general.kind} def '{general.qualified_name}'",
                location=element.location, element=element.qualified_name)


def _check_empty_definition(element: Definition,
                            report: DiagnosticReport,
                            used_type_ids: set[int]) -> None:
    if element.is_abstract:
        return
    if id(element) in used_type_ids:
        # empty-but-used definitions are a legitimate style: the paper's
        # Code 2 declares 'part def AxesPositions;' and fills the
        # structure in at instantiation
        return
    # definitions nested in an abstract template (e.g. the empty
    # DriverParameters inside the abstract Driver) exist to be refined
    # by specializations; emptiness is their point
    for ancestor in element.ancestors():
        if isinstance(ancestor, Definition) and ancestor.is_abstract:
            return
    has_members = any(e.name for e in element.owned_elements)
    if not has_members and element.kind in ("part", "port"):
        report.warning("empty-definition",
                       f"non-abstract {element.kind} def "
                       f"'{element.qualified_name}' has no members",
                       location=element.location,
                       element=element.qualified_name)


def _check_enum_value(usage: Usage, report: DiagnosticReport) -> None:
    """``enum-value``: a feature typed by an enum def must be assigned
    one of its literals."""
    typ = usage.effective_type()
    if not isinstance(typ, EnumerationDefinition):
        return
    value = usage.value
    if value is None:
        return
    if isinstance(value, FeatureRefExpr) and len(value.chain.parts) == 1:
        if typ.literal(value.chain.parts[0]) is not None:
            return
        report.error(
            "enum-value",
            f"'{usage.qualified_name}' assigns '{value.chain}', which is "
            f"not a literal of enum '{typ.qualified_name}' "
            f"(allowed: {', '.join(l.name for l in typ.literals)})",
            location=usage.location, element=usage.qualified_name)
    else:
        report.error(
            "enum-value",
            f"'{usage.qualified_name}' assigns a non-literal value to "
            f"enum type '{typ.qualified_name}'",
            location=usage.location, element=usage.qualified_name)


def _check_abstract_instantiation(usage: Usage,
                                  report: DiagnosticReport) -> None:
    if usage.is_reference or usage.is_abstract:
        return
    typ = usage.typ
    if isinstance(typ, Definition) and typ.is_abstract:
        report.error(
            "abstract-instantiation",
            f"usage '{usage.qualified_name}' instantiates abstract "
            f"definition '{typ.qualified_name}'; specialize it instead",
            location=usage.location, element=usage.qualified_name)


def _check_redefinition_type(usage: Usage, report: DiagnosticReport) -> None:
    own_type = usage.typ
    if own_type is None:
        return
    for redefined in usage.redefines:
        redefined_type = redefined.effective_type()
        if redefined_type is None or not isinstance(own_type, Type):
            continue
        if not own_type.conforms_to(redefined_type):
            report.error(
                "redefinition-type",
                f"'{usage.qualified_name}' redefines "
                f"'{redefined.qualified_name}' with non-conforming type "
                f"'{own_type.qualified_name}' (expected a specialization of "
                f"'{redefined_type.qualified_name}')",
                location=usage.location, element=usage.qualified_name)


def _check_conjugation_target(usage: Usage, report: DiagnosticReport) -> None:
    if not usage.conjugated:
        return
    typ = usage.typ
    if typ is not None and not isinstance(typ, PortDefinition):
        report.error(
            "conjugation-target",
            f"'{usage.qualified_name}' conjugates '{typ.qualified_name}', "
            f"which is not a port definition",
            location=usage.location, element=usage.qualified_name)


def _check_multiplicity(usage: Usage, report: DiagnosticReport) -> None:
    mult = usage.multiplicity
    if mult is None or mult.upper is None:
        return
    if mult.lower > mult.upper:
        report.error(
            "multiplicity-bounds",
            f"'{usage.qualified_name}' has multiplicity lower bound "
            f"{mult.lower} greater than upper bound {mult.upper}",
            location=usage.location, element=usage.qualified_name)


def _check_dangling_ref(usage: Usage, report: DiagnosticReport) -> None:
    if usage.is_reference and usage.typ is None and not usage.specializations:
        report.warning(
            "dangling-ref",
            f"reference '{usage.qualified_name}' has no type; it cannot be "
            f"checked against any contract",
            location=usage.location, element=usage.qualified_name)


def _port_definition_of(element: Element) -> PortDefinition | None:
    if isinstance(element, PortDefinition):
        return element
    if isinstance(element, Usage):
        typ = element.effective_type()
        while isinstance(typ, Usage):
            typ = typ.effective_type()
        if isinstance(typ, PortDefinition):
            return typ
    return None


def _conjugation_of(element: Element) -> bool | None:
    if isinstance(element, Usage):
        return element.conjugated
    return None


def _check_connector(connector: Connector, report: DiagnosticReport) -> None:
    source, target = connector.source, connector.target
    if source is None or target is None:
        return  # resolution already failed loudly
    source_def = _port_definition_of(source)
    target_def = _port_definition_of(target)
    if source_def is not None and target_def is not None:
        if source_def is not target_def and \
                not (source_def.conforms_to(target_def)
                     or target_def.conforms_to(source_def)):
            report.error(
                "connector-port-type",
                f"connector '{connector.source_chain}' -> "
                f"'{connector.target_chain}' joins unrelated port types "
                f"'{source_def.qualified_name}' and "
                f"'{target_def.qualified_name}'",
                location=connector.location,
                element=connector.qualified_name)
        source_conj = _conjugation_of(source)
        target_conj = _conjugation_of(target)
        if source_conj is not None and source_conj == target_conj:
            report.warning(
                "connector-conjugation",
                f"connector '{connector.source_chain}' -> "
                f"'{connector.target_chain}' joins two "
                f"{'conjugated' if source_conj else 'non-conjugated'} ports; "
                f"expected a conjugated/original pair",
                location=connector.location,
                element=connector.qualified_name)


def _check_binding(bind: BindingConnector, report: DiagnosticReport) -> None:
    left, right = bind.left, bind.right
    if not isinstance(left, Usage) or not isinstance(right, Usage):
        return
    kinds = {left.kind, right.kind} - {"redefinition"}
    if len(kinds) > 1:
        report.error(
            "binding-kind",
            f"bind '{bind.left_chain}' = '{bind.right_chain}' equates a "
            f"{left.kind} with a {right.kind}",
            location=bind.location, element=bind.qualified_name)
