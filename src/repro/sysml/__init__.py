"""SysML v2 textual-notation front end and semantic model.

Public API::

    from repro.sysml import load_model, parse, validate_model

    model = load_model(source_text)
    report = validate_model(model)
    report.raise_if_errors()

The subset implemented is exactly what the paper's modeling methodology
exercises (Codes 1-5 of the paper): KerML-style definition/usage pairs
for parts, attributes, ports, actions, interfaces and connections, with
specialization (``:>``), redefinition (``:>>``), port conjugation
(``~``), multiplicities, reference parts, binding connectors,
``connect``/``interface`` connectors, ``perform`` actions, packages,
imports and documentation comments.
"""

from .builder import build_model
from .depgraph import (DepGraph, DepRecorder, NodeIndex, NodeKey, ROOT_KEY,
                       anchor_key, deep_fingerprint, node_key, node_path,
                       scope_fingerprint)
from .diff import Change, ModelDiff, diff_models
from .files import (convert_model_file, load_model_file, load_model_files,
                    save_model_file)
from .elements import (Alias, Assignment, AttributeDefinition,
                       AttributeUsage, BindingConnector,
                       ConnectionDefinition, ConnectionUsage, Connector,
                       Definition, Element, EndUsage,
                       EnumerationDefinition, EnumerationLiteral, Import,
                       InterfaceDefinition, InterfaceUsage,
                       Model, Namespace, Package, PartDefinition, PartUsage,
                       PerformAction, PortDefinition, PortUsage,
                       RedefinitionUsage, Type, Usage, iter_definitions,
                       iter_usages)
from .errors import (Diagnostic, DiagnosticReport, LexerError, ParseError,
                     ResolutionError, SourceLocation, SysMLError,
                     ValidationError)
from .incremental import ModelSession, ModelUpdate, clear_resolved_state
from .instances import (ElaborationError, InstanceNode, elaborate,
                        elaborate_model, propagate_bindings)
from .interchange import (model_from_dict, model_from_json, model_to_dict,
                          model_to_json)
from .lexer import tokenize
from .parser import parse
from .printer import print_element, print_model
from .queries import (ElementCounts, count_definition_closure,
                      definitions_in, instance_counts, model_summary,
                      scope_counts, specializations_of, usages_in,
                      usages_typed_by)
from .resolver import (content_fingerprint_of_sources, load_model,
                       resolve_model)
from .validation import validate_model

__all__ = [
    "Alias", "Assignment", "AttributeDefinition", "AttributeUsage",
    "EnumerationDefinition", "EnumerationLiteral",
    "BindingConnector", "ConnectionDefinition", "ConnectionUsage",
    "Connector", "Definition", "Diagnostic", "DiagnosticReport",
    "ElaborationError", "Element", "ElementCounts", "EndUsage", "Import",
    "InstanceNode", "InterfaceDefinition", "InterfaceUsage", "LexerError",
    "Model", "Namespace", "Package", "ParseError", "PartDefinition",
    "PartUsage", "PerformAction", "PortDefinition", "PortUsage",
    "RedefinitionUsage", "ResolutionError", "SourceLocation", "SysMLError",
    "Change", "DepGraph", "DepRecorder", "ModelDiff", "ModelSession",
    "ModelUpdate", "NodeIndex", "NodeKey", "ROOT_KEY", "anchor_key",
    "clear_resolved_state", "content_fingerprint_of_sources",
    "convert_model_file", "deep_fingerprint",
    "diff_models", "load_model_file", "load_model_files", "node_key",
    "node_path", "save_model_file", "scope_fingerprint",
    "Type", "Usage", "ValidationError", "build_model",
    "count_definition_closure", "definitions_in", "elaborate",
    "elaborate_model", "instance_counts", "iter_definitions", "iter_usages",
    "load_model", "model_from_dict", "model_from_json", "model_summary",
    "model_to_dict", "model_to_json", "parse", "print_element",
    "print_model", "propagate_bindings", "resolve_model", "scope_counts",
    "specializations_of", "tokenize", "usages_in", "usages_typed_by",
    "validate_model",
]
