"""Semantic element graph for SysML v2 models.

The builder turns parse trees into instances of these classes and the
resolver links them together (specializations, feature typing,
redefinitions, connector ends). The design follows the KerML
definition/usage paradigm the paper relies on:

* :class:`Definition` — ``part def``, ``port def``, ... (types),
* :class:`Usage` — ``part``, ``attribute``, ``port``, ... (features),
* relationships are stored as resolved object references plus the raw
  syntactic targets, so diagnostics can always show what was written.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

from .ast_nodes import Expr, FeatureChain, Multiplicity, QualifiedName
from .errors import SourceLocation

_id_counter = itertools.count(1)


class Element:
    """Base class of every model element."""

    def __init__(self, name: str | None = None,
                 location: SourceLocation | None = None):
        self.element_id: int = next(_id_counter)
        self.name = name
        self.owner: Optional["Element"] = None
        self.owned_elements: list[Element] = []
        self.documentation: str = ""
        self.location = location or SourceLocation()

    # -- ownership ---------------------------------------------------------

    def add_owned(self, element: "Element") -> "Element":
        element.owner = self
        self.owned_elements.append(element)
        return element

    @property
    def local_ordinal(self) -> int:
        """Position among the owner's children — stable across loads of
        the same sources (unlike ``element_id``, which is a process
        -global counter), so it is safe in derived names that end up in
        deterministic output."""
        if self.owner is None:
            return 0
        for index, sibling in enumerate(self.owner.owned_elements):
            if sibling is self:
                return index
        return 0

    @property
    def qualified_name(self) -> str:
        parts: list[str] = []
        node: Element | None = self
        while node is not None:
            if node.name:
                parts.append(node.name)
            node = node.owner
        return "::".join(reversed(parts)) or f"<anonymous#{self.element_id}>"

    def ancestors(self) -> Iterator["Element"]:
        node = self.owner
        while node is not None:
            yield node
            node = node.owner

    def descendants(self) -> Iterator["Element"]:
        """All transitively owned elements (pre-order, self excluded)."""
        for child in self.owned_elements:
            yield child
            yield from child.descendants()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.qualified_name}>"


class Namespace(Element):
    """An element whose owned, named members are resolvable by name."""

    @property
    def members(self) -> dict[str, Element]:
        table: dict[str, Element] = {}
        for child in self.owned_elements:
            if child.name and child.name not in table:
                table[child.name] = child
        return table

    def member(self, name: str) -> Element | None:
        for child in self.owned_elements:
            if child.name == name:
                return child
        return None


class Package(Namespace):
    """A ``package`` — purely organizational namespace.

    ``is_library`` marks implicitly-imported standard-library packages;
    they do not take part in ordinary root-scope lookup, so user models
    may freely reuse names like ``Base``.
    """

    def __init__(self, name: str | None = None,
                 location: SourceLocation | None = None):
        super().__init__(name, location)
        self.is_library = False


class Import(Element):
    """An ``import Pkg::*;`` membership-import relationship."""

    def __init__(self, target_name: QualifiedName, wildcard: bool,
                 recursive: bool, location: SourceLocation | None = None):
        super().__init__(name=None, location=location)
        self.target_name = target_name
        self.wildcard = wildcard
        self.recursive = recursive
        self.target: Namespace | Element | None = None  # set by resolver


class Type(Namespace):
    """Common base of definitions and usages: supports specialization."""

    def __init__(self, name: str | None = None, *, is_abstract: bool = False,
                 location: SourceLocation | None = None):
        super().__init__(name, location)
        self.is_abstract = is_abstract
        self.specialization_names: list[QualifiedName] = []
        self.specializations: list[Type] = []  # resolved general types

    # -- specialization ------------------------------------------------------

    def all_supertypes(self) -> list["Type"]:
        """Transitive general types, nearest first, duplicates removed."""
        seen: dict[int, Type] = {}
        stack = list(self.specializations)
        ordered: list[Type] = []
        while stack:
            general = stack.pop(0)
            if id(general) in seen:
                continue
            seen[id(general)] = general
            ordered.append(general)
            stack.extend(general.specializations)
        return ordered

    def conforms_to(self, other: "Type") -> bool:
        return other is self or other in self.all_supertypes()

    # -- member access incl. inheritance --------------------------------------

    def inherited_members(self) -> dict[str, Element]:
        """Members contributed by supertypes, nearest supertype wins."""
        table: dict[str, Element] = {}
        for general in self.all_supertypes():
            for name, member in general.members.items():
                table.setdefault(name, member)
        return table

    def effective_members(self) -> dict[str, Element]:
        """Own members shadowing inherited ones."""
        table = self.inherited_members()
        table.update(self.members)
        return table

    def effective_member(self, name: str) -> Element | None:
        own = self.member(name)
        if own is not None:
            return own
        return self.inherited_members().get(name)


class Definition(Type):
    """Base class for ``<kind> def`` declarations."""

    kind: str = "definition"


class PartDefinition(Definition):
    kind = "part"


class AttributeDefinition(Definition):
    kind = "attribute"


class PortDefinition(Definition):
    kind = "port"


class ActionDefinition(Definition):
    kind = "action"


class InterfaceDefinition(Definition):
    kind = "interface"


class ConnectionDefinition(Definition):
    kind = "connection"


class ItemDefinition(Definition):
    kind = "item"


class EnumerationDefinition(Definition):
    """``enum def`` — an attribute definition with a closed literal set."""

    kind = "enum"

    @property
    def literals(self) -> list["EnumerationLiteral"]:
        return [e for e in self.owned_elements
                if isinstance(e, EnumerationLiteral)]

    def literal(self, name: str) -> "EnumerationLiteral | None":
        for literal in self.literals:
            if literal.name == name:
                return literal
        return None


class Usage(Type):
    """Base class for feature usages (``part x : T`` etc.).

    A usage is itself a Type in KerML: it can own nested usages and can
    specialize. Its ``typ`` links to the :class:`Definition` named after
    the colon; ``conjugated`` records a ``~T`` port typing.
    """

    kind: str = "usage"

    def __init__(self, name: str | None = None, *, is_abstract: bool = False,
                 location: SourceLocation | None = None):
        super().__init__(name, is_abstract=is_abstract, location=location)
        self.direction: str | None = None
        self.is_reference = False
        self.multiplicity: Multiplicity | None = None
        self.type_name: QualifiedName | None = None
        self.conjugated = False
        self.typ: Definition | Usage | None = None  # resolved typing
        self.redefinition_names: list[QualifiedName] = []
        self.redefines: list[Usage] = []  # resolved redefined features
        self.value: Expr | None = None

    def effective_type(self) -> Optional["Type"]:
        """The definition this usage is typed by, following redefinitions."""
        if self.typ is not None:
            return self.typ
        for redefined in self.redefines:
            found = redefined.effective_type()
            if found is not None:
                return found
        return None

    def all_supertypes(self) -> list[Type]:
        """Supertypes: explicit specializations plus the typing definition.

        Feature typing makes the definition's members visible through the
        usage (``emcoParameters : EMCOParameters`` exposes ``ip`` ...), so
        the typing participates in member inheritance.
        """
        seen: dict[int, Type] = {}
        ordered: list[Type] = []
        stack: list[Type] = list(self.specializations)
        typ = self.effective_type()
        if typ is not None:
            stack.append(typ)
        for redefined in self.redefines:
            stack.append(redefined)
        while stack:
            general = stack.pop(0)
            if id(general) in seen:
                continue
            seen[id(general)] = general
            ordered.append(general)
            stack.extend(general.specializations)
            if isinstance(general, Usage):
                general_typ = general.effective_type()
                if general_typ is not None:
                    stack.append(general_typ)
        return ordered


class PartUsage(Usage):
    kind = "part"


class AttributeUsage(Usage):
    kind = "attribute"


class PortUsage(Usage):
    kind = "port"


class ActionUsage(Usage):
    kind = "action"


class InterfaceUsage(Usage):
    kind = "interface"


class ConnectionUsage(Usage):
    kind = "connection"


class ItemUsage(Usage):
    kind = "item"


class RedefinitionUsage(Usage):
    """Shorthand ``:>> name = value;`` whose kind comes from the target."""

    kind = "redefinition"


class EndUsage(Usage):
    """``end name : PortType;`` inside interface/connection definitions."""

    kind = "end"


class EnumerationLiteral(Usage):
    """One literal value of an :class:`EnumerationDefinition`."""

    kind = "enumliteral"


class Alias(Element):
    """``alias Short for Long::Name;`` — a membership alias."""

    def __init__(self, name: str, target_name: QualifiedName,
                 location: SourceLocation | None = None):
        super().__init__(name=name, location=location)
        self.target_name = target_name
        self.target: Element | None = None  # set by resolver


class BindingConnector(Element):
    """``bind a.b = c.d;`` — equates two features."""

    def __init__(self, left_chain: FeatureChain, right_chain: FeatureChain,
                 location: SourceLocation | None = None):
        super().__init__(name=None, location=location)
        self.left_chain = left_chain
        self.right_chain = right_chain
        self.left: Element | None = None
        self.right: Element | None = None


class Connector(Element):
    """``connect a to b`` — a connection or interface usage with ends."""

    def __init__(self, kind: str, name: str | None,
                 source_chain: FeatureChain, target_chain: FeatureChain,
                 location: SourceLocation | None = None):
        super().__init__(name=name, location=location)
        self.connector_kind = kind  # "connection" | "interface"
        self.type_name: QualifiedName | None = None
        self.typ: Definition | None = None
        self.source_chain = source_chain
        self.target_chain = target_chain
        self.source: Element | None = None
        self.target: Element | None = None


class PerformAction(Element):
    """``perform port.action { out x = other.y; }``."""

    def __init__(self, target_chain: FeatureChain,
                 location: SourceLocation | None = None):
        super().__init__(name=None, location=location)
        self.target_chain = target_chain
        self.target: Element | None = None


class Assignment(Element):
    """``out name = chain;`` inside actions and performs."""

    def __init__(self, direction: str | None, name: str, value: Expr,
                 location: SourceLocation | None = None):
        super().__init__(name=name, location=location)
        self.direction = direction
        self.value = value
        self.resolved_value: Element | None = None


#: Maps a syntactic kind to its Definition/Usage classes.
DEFINITION_CLASSES: dict[str, type[Definition]] = {
    "part": PartDefinition,
    "attribute": AttributeDefinition,
    "port": PortDefinition,
    "action": ActionDefinition,
    "interface": InterfaceDefinition,
    "connection": ConnectionDefinition,
    "item": ItemDefinition,
    "enum": EnumerationDefinition,
}

USAGE_CLASSES: dict[str, type[Usage]] = {
    "part": PartUsage,
    "attribute": AttributeUsage,
    "port": PortUsage,
    "action": ActionUsage,
    "interface": InterfaceUsage,
    "connection": ConnectionUsage,
    "item": ItemUsage,
    "redefinition": RedefinitionUsage,
    "end": EndUsage,
    "enumliteral": EnumerationLiteral,
}


class Model(Namespace):
    """Root namespace of a parsed and resolved model."""

    def __init__(self) -> None:
        super().__init__(name=None)
        #: Fingerprint of the source texts this model was loaded from
        #: (set by :func:`~repro.sysml.resolver.load_model`); ``None``
        #: for programmatically built models. Downstream caches key
        #: derived artifacts (topology, generation results) on it, so
        #: it goes stale if the model is mutated in place after loading.
        self.content_fingerprint: str | None = None

    def all_elements(self) -> Iterator[Element]:
        yield from self.descendants()

    def elements_of_type(self, cls: type) -> Iterator[Element]:
        return (e for e in self.all_elements() if isinstance(e, cls))

    def find(self, qualified: str) -> Element | None:
        """Look up an element by ``Pkg::Sub::Name`` path from the root."""
        parts = qualified.split("::")
        scope: Element = self
        for part in parts:
            if not isinstance(scope, Namespace):
                return None
            candidate: Element | None = None
            if isinstance(scope, Type):
                candidate = scope.effective_member(part)
            else:
                candidate = scope.member(part)
            if candidate is None:
                return None
            scope = candidate
        return scope

    def packages(self) -> list[Package]:
        return [e for e in self.owned_elements if isinstance(e, Package)]


def iter_usages(root: Element, kind: str | None = None) -> Iterable[Usage]:
    """All usages under *root*, optionally filtered by kind."""
    for element in root.descendants():
        if isinstance(element, Usage):
            if kind is None or element.kind == kind:
                yield element


def iter_definitions(root: Element, kind: str | None = None) -> Iterable[Definition]:
    """All definitions under *root*, optionally filtered by kind."""
    for element in root.descendants():
        if isinstance(element, Definition):
            if kind is None or element.kind == kind:
                yield element
