"""JSON interchange for SysML v2 models.

Mirrors (a small slice of) the SysML v2 API & Services JSON shape: every
element becomes a dictionary with ``@type``, ``name``, its kind-specific
fields, and ``ownedElements``. ``model_to_json`` / ``model_from_json``
round-trip a model losslessly for the supported subset.
"""

from __future__ import annotations

import json

from .ast_nodes import (FeatureChain, FeatureRefExpr, Literal, Multiplicity,
                        QualifiedName)
from .elements import (Assignment, BindingConnector, Connector, Definition,
                       DEFINITION_CLASSES, Element, Import, Model, Package,
                       PerformAction, Usage, USAGE_CLASSES)
from .errors import SysMLError
from .resolver import resolve_model


def element_to_dict(element: Element) -> dict:
    """Serialize one element subtree to a JSON-compatible dict."""
    from .elements import Alias
    data: dict = {"@type": type(element).__name__}
    # "is not None", not truthiness: '' is a legal declared name and
    # must survive the round-trip
    if element.name is not None:
        data["name"] = element.name
    if element.documentation:
        data["documentation"] = element.documentation
    if isinstance(element, Alias):
        data["aliasOf"] = _qname_json(element.target_name)
    elif isinstance(element, Package):
        if element.is_library:
            data["isLibrary"] = True
    elif isinstance(element, Definition):
        data["kind"] = element.kind
        data["isAbstract"] = element.is_abstract
        if element.specialization_names:
            data["specializes"] = [_qname_json(n)
                                   for n in element.specialization_names]
    elif isinstance(element, Usage):
        data["kind"] = element.kind
        data["isAbstract"] = element.is_abstract
        data["isReference"] = element.is_reference
        if element.direction:
            data["direction"] = element.direction
        if element.multiplicity is not None:
            data["multiplicity"] = {
                "lower": element.multiplicity.lower,
                "upper": element.multiplicity.upper,
            }
        if element.type_name is not None:
            data["type"] = _qname_json(element.type_name)
            data["isConjugated"] = element.conjugated
        if element.specialization_names:
            data["specializes"] = [_qname_json(n)
                                   for n in element.specialization_names]
        if element.redefinition_names:
            data["redefines"] = [_qname_json(n)
                                 for n in element.redefinition_names]
        if element.value is not None:
            data["value"] = _expr_to_json(element.value)
    elif isinstance(element, Import):
        data["target"] = _qname_json(element.target_name)
        data["wildcard"] = element.wildcard
        data["recursive"] = element.recursive
    elif isinstance(element, BindingConnector):
        data["left"] = _chain_json(element.left_chain)
        data["right"] = _chain_json(element.right_chain)
    elif isinstance(element, Connector):
        data["connectorKind"] = element.connector_kind
        data["source"] = _chain_json(element.source_chain)
        data["target"] = _chain_json(element.target_chain)
        if element.type_name is not None:
            data["type"] = _qname_json(element.type_name)
    elif isinstance(element, PerformAction):
        data["target"] = _chain_json(element.target_chain)
    elif isinstance(element, Assignment):
        if element.direction:
            data["direction"] = element.direction
        data["value"] = _expr_to_json(element.value)
    owned = [element_to_dict(child) for child in element.owned_elements]
    if owned:
        data["ownedElements"] = owned
    return data


def model_to_dict(model: Model) -> dict:
    return {
        "@type": "Model",
        "ownedElements": [element_to_dict(e) for e in model.owned_elements],
    }


def model_to_json(model: Model, *, indent: int | None = 2) -> str:
    return json.dumps(model_to_dict(model), indent=indent)


# -- deserialization -----------------------------------------------------------

def element_from_dict(data: dict) -> Element:
    """Rebuild an element subtree from :func:`element_to_dict` output."""
    type_name = data.get("@type", "")
    element = _construct(type_name, data)
    element.documentation = data.get("documentation", "")
    for child_data in data.get("ownedElements", []):
        element.add_owned(element_from_dict(child_data))
    return element


def _construct(type_name: str, data: dict) -> Element:
    name = data.get("name")
    if type_name == "Alias":
        from .elements import Alias
        return Alias(name or "", _qname(data["aliasOf"]))
    if type_name == "EnumerationLiteral":
        from .elements import EnumerationLiteral
        return EnumerationLiteral(name)
    if type_name == "Package":
        package = Package(name)
        package.is_library = data.get("isLibrary", False)
        return package
    if type_name == "Import":
        return Import(_qname(data["target"]), data.get("wildcard", False),
                      data.get("recursive", False))
    if type_name == "BindingConnector":
        return BindingConnector(_chain(data["left"]), _chain(data["right"]))
    if type_name == "Connector":
        connector = Connector(data["connectorKind"], name,
                              _chain(data["source"]), _chain(data["target"]))
        if "type" in data:
            connector.type_name = _qname(data["type"])
        return connector
    if type_name == "PerformAction":
        return PerformAction(_chain(data["target"]))
    if type_name == "Assignment":
        return Assignment(data.get("direction"), name or "",
                          _expr_from_json(data["value"]))
    kind = data.get("kind", "")
    if type_name.endswith("Definition"):
        cls = DEFINITION_CLASSES.get(kind)
        if cls is None:
            raise SysMLError(f"unknown definition kind {kind!r} in JSON")
        definition = cls(name, is_abstract=data.get("isAbstract", False))
        definition.specialization_names = [
            _qname(s) for s in data.get("specializes", [])]
        return definition
    if type_name.endswith("Usage"):
        cls = USAGE_CLASSES.get(kind)
        if cls is None:
            raise SysMLError(f"unknown usage kind {kind!r} in JSON")
        usage = cls(name, is_abstract=data.get("isAbstract", False))
        usage.is_reference = data.get("isReference", False)
        usage.direction = data.get("direction")
        if "multiplicity" in data:
            usage.multiplicity = Multiplicity(
                lower=data["multiplicity"]["lower"],
                upper=data["multiplicity"]["upper"])
        if "type" in data:
            usage.type_name = _qname(data["type"])
            usage.conjugated = data.get("isConjugated", False)
        usage.specialization_names = [
            _qname(s) for s in data.get("specializes", [])]
        usage.redefinition_names = [
            _qname(s) for s in data.get("redefines", [])]
        if "value" in data:
            usage.value = _expr_from_json(data["value"])
        return usage
    raise SysMLError(f"unknown element @type {type_name!r} in JSON")


def model_from_dict(data: dict, *, resolve: bool = True) -> Model:
    model = Model()
    for child_data in data.get("ownedElements", []):
        model.add_owned(element_from_dict(child_data))
    if resolve:
        resolve_model(model)
    return model


def model_from_json(text: str, *, resolve: bool = True) -> Model:
    return model_from_dict(json.loads(text), resolve=resolve)


# -- expression helpers ----------------------------------------------------------

def _expr_to_json(expr: object) -> dict:
    if isinstance(expr, Literal):
        return {"@type": "Literal", "value": expr.value}
    if isinstance(expr, FeatureRefExpr):
        return {"@type": "FeatureRef", "chain": _chain_json(expr.chain)}
    raise SysMLError(f"cannot serialize expression {expr!r}")


def _expr_from_json(data: dict):
    if data.get("@type") == "Literal":
        return Literal(data["value"])
    if data.get("@type") == "FeatureRef":
        return FeatureRefExpr(_chain(data["chain"]))
    raise SysMLError(f"cannot deserialize expression {data!r}")


def _qname_json(qname: QualifiedName | str) -> str | list[str]:
    """A qualified name for JSON: the joined string normally, the raw
    part list when a part itself contains ``::`` (the join would not be
    invertible)."""
    if not isinstance(qname, QualifiedName):
        return str(qname)
    parts = list(qname.parts)
    if any("::" in part for part in parts):
        return parts
    return "::".join(parts)


def _chain_json(chain: FeatureChain | str) -> str | list[str]:
    """A feature chain for JSON; part list when a part contains '.'."""
    if not isinstance(chain, FeatureChain):
        return str(chain)
    parts = list(chain.parts)
    if any("." in part for part in parts):
        return parts
    return ".".join(parts)


def _qname(value: str | list[str]) -> QualifiedName:
    if isinstance(value, list):
        return QualifiedName(list(value))
    return QualifiedName(value.split("::"))


def _chain(value: str | list[str]) -> FeatureChain:
    if isinstance(value, list):
        return FeatureChain(list(value))
    return FeatureChain(value.split("."))
