"""Incremental model loading: merge edited sources into a live model.

A :class:`ModelSession` holds one resolved model plus the bookkeeping
needed to absorb source edits without a cold reload:

1. per-source text fingerprints decide which sources even need
   reparsing (the parse cache absorbs repeats of previously-seen text);
2. changed sources are rebuilt into throwaway element fragments and
   **merged** into the live model — elements whose subtree fingerprint
   is unchanged are *kept by identity*, so resolved references from the
   rest of the model stay valid;
3. the per-node fingerprint index (:class:`~.depgraph.NodeIndex`) is
   recomputed (Merkle caches make this cheap) and diffed against the
   previous state — the diff plus the recorded dependency graph yields
   the **dirty anchor set**;
4. only elements anchored in dirty subtrees get their resolved state
   cleared and re-resolved (:meth:`Resolver.resolve_only`); a fixpoint
   loop catches second-order effects (an element whose *resolution*
   changed without its syntax changing — e.g. through new shadowing —
   re-dirties its consumers).

Any failure mid-update falls back to a cold rebuild, so the session is
never left half-merged; if the *cold* rebuild also fails the error
propagates exactly as a fresh :func:`load_model` would have raised it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fingerprint import fingerprint
from ..obs import span as _span
from .builder import ModelBuilder
from .depgraph import (NodeIndex, NodeKey, _name_of, anchor_key,
                       deep_fingerprint, elements_anchored_in, node_key,
                       own_signature, DepGraph, DepRecorder)
from .elements import (Alias, Assignment, BindingConnector, Connector,
                       Element, Import, Model, Package, PerformAction,
                       RedefinitionUsage, Type, Usage)
from .resolver import Resolver, _parse_sources, model_fingerprint

_DEEP_ATTR = "_repro_deep_fp"
_SCOPE_ATTR = "_repro_scope_fp"
_KEY_ATTR = "_repro_node_key"
_ANCHOR_ATTR = "_repro_anchor_key"

_SOURCE_SALT = "sysml-source-text/1"

#: Second-order re-resolution rounds before giving up on convergence
#: and falling back to a cold rebuild.
_MAX_SEMANTIC_ROUNDS = 8


class IncrementalFallback(Exception):
    """Raised internally when an update cannot be applied incrementally."""


@dataclass(frozen=True)
class ModelUpdate:
    """What one :meth:`ModelSession.update` actually did."""

    #: Filenames of sources whose text changed (and were re-merged).
    changed_sources: tuple[str, ...] = ()
    #: Anchors whose subtrees were re-resolved (syntactically changed,
    #: affected through the dependency graph, or semantically re-dirtied
    #: by the fixpoint) — the engine's unit of downstream invalidation.
    dirty_anchors: frozenset = frozenset()
    #: Anchors present before the update and gone after it.
    removed_anchors: frozenset = frozenset()
    #: Anchors whose subtree content *locally* changed (head edits, new
    #: or removed members) — unlike :attr:`dirty_anchors` this excludes
    #: ancestors that are dirty only because a nested anchor changed,
    #: so it is the precise set for artifact invalidation.
    edited_anchors: frozenset = frozenset()
    #: Anchors holding elements whose *resolution* changed (possibly
    #: without any syntactic change under them — shadowing effects).
    semantic_anchors: frozenset = frozenset()
    #: Elements whose references were re-resolved (over all rounds).
    reresolved_elements: int = 0
    #: Semantic-propagation rounds it took to converge (0 = no dirt).
    rounds: int = 0
    #: True when the update was applied as a cold rebuild instead
    #: (first load, fallback, or a structural change too broad to chase).
    full_rebuild: bool = False

    @property
    def clean(self) -> bool:
        """No semantic change at all — every artifact may be reused."""
        return (not self.full_rebuild and not self.dirty_anchors
                and not self.removed_anchors and not self.edited_anchors
                and not self.semantic_anchors)

    @property
    def changed_anchors(self) -> frozenset:
        """Anchors whose derived artifacts cannot be reused: locally
        edited, removed, or semantically re-resolved differently."""
        return self.edited_anchors | self.semantic_anchors \
            | self.removed_anchors


def clear_resolved_state(element: Element) -> None:
    """Reset every resolver-written field of *element* to its
    freshly-built state (syntactic fields are untouched)."""
    if isinstance(element, Type):
        element.specializations = []
    if isinstance(element, Usage):
        element.typ = None
        element.redefines = []
        if isinstance(element, RedefinitionUsage) \
                and element.redefinition_names:
            # the resolver re-derives the name from the redefined feature
            element.name = None
    if isinstance(element, Import):
        element.target = None
    if isinstance(element, Alias):
        element.target = None
    if isinstance(element, BindingConnector):
        element.left = None
        element.right = None
    if isinstance(element, Connector):
        element.typ = None
        element.source = None
        element.target = None
    if isinstance(element, PerformAction):
        element.target = None
    if isinstance(element, Assignment):
        element.resolved_value = None


def _semantic_state(element: Element) -> tuple:
    """Identity snapshot of every resolved pointer of *element* — two
    states compare equal exactly when re-resolution landed on the same
    objects."""
    state: list[object] = []
    if isinstance(element, Type):
        state.append(tuple(id(t) for t in element.specializations))
    if isinstance(element, Usage):
        state.append((id(element.typ) if element.typ is not None else None,
                      tuple(id(r) for r in element.redefines)))
    if isinstance(element, (Import, Alias, PerformAction)):
        state.append(id(element.target)
                     if element.target is not None else None)
    if isinstance(element, BindingConnector):
        state.append((id(element.left) if element.left is not None else None,
                      id(element.right)
                      if element.right is not None else None))
    if isinstance(element, Connector):
        state.append((
            id(element.typ) if element.typ is not None else None,
            id(element.source) if element.source is not None else None,
            id(element.target) if element.target is not None else None))
    if isinstance(element, Assignment):
        state.append(id(element.resolved_value)
                     if element.resolved_value is not None else None)
    return tuple(state)


# -- structural merge --------------------------------------------------------

def _match_key(element: Element) -> tuple | None:
    """Pairing key for named elements (None → pair by content hash)."""
    name = _name_of(element)
    if not name:
        return None
    if isinstance(element, Connector):
        return (type(element).__name__, element.connector_kind, name)
    return (type(element).__name__, name)


def _clear_keys_deep(element: Element) -> None:
    element.__dict__.pop(_KEY_ATTR, None)
    element.__dict__.pop(_ANCHOR_ATTR, None)
    for child in element.owned_elements:
        _clear_keys_deep(child)


_HEAD_FIELDS = {
    Package: ("is_library",),
    Import: ("target_name", "wildcard", "recursive"),
    Alias: ("target_name",),
    Type: ("is_abstract", "specialization_names"),
    Usage: ("direction", "is_reference", "multiplicity", "type_name",
            "conjugated", "redefinition_names", "value"),
    BindingConnector: ("left_chain", "right_chain"),
    Connector: ("type_name", "source_chain", "target_chain"),
    PerformAction: ("target_chain",),
    Assignment: ("direction", "value"),
}


def _copy_head(old: Element, new: Element) -> None:
    """Carry *new*'s syntactic declaration onto the kept *old* object
    (same class, same name) so references *to* old stay valid while its
    content tracks the edit."""
    old.documentation = new.documentation
    old.location = new.location
    for cls, fields in _HEAD_FIELDS.items():
        if isinstance(old, cls):
            for field_name in fields:
                setattr(old, field_name, getattr(new, field_name))


class _Merger:
    """One-shot structural merge of fragment subtrees into a live model."""

    def __init__(self) -> None:
        #: Old subtrees replaced or removed — kept alive until the
        #: semantic fixpoint is done comparing object identities.
        self.dropped: list[Element] = []
        #: Elements whose content locally changed: head-edited kept
        #: elements, newly-taken subtrees, and parents whose member
        #: list changed. Their anchors form ``edited_anchors``.
        self.changed: list[Element] = []

    def merge_lists(self, old_list: list[Element], new_list: list[Element],
                    parent: Element) -> tuple[list[Element], bool, bool]:
        """Merge children lists; returns ``(merged, list_changed,
        any_changed)`` where *list_changed* covers identity/order and
        *any_changed* additionally covers in-place subtree edits."""
        named: dict[tuple, list[Element]] = {}
        anonymous: dict[str, list[Element]] = {}
        for old in old_list:
            key = _match_key(old)
            if key is not None:
                named.setdefault(key, []).append(old)
            else:
                anonymous.setdefault(deep_fingerprint(old), []).append(old)

        merged: list[Element] = []
        any_changed = False
        for new in new_list:
            key = _match_key(new)
            if key is not None and named.get(key):
                old = named[key].pop(0)
                if self.merge_element(old, new):
                    any_changed = True
                merged.append(old)
                continue
            if key is None:
                queue = anonymous.get(deep_fingerprint(new))
                if queue:
                    merged.append(queue.pop(0))
                    continue
            # no counterpart: take the new subtree wholesale
            new.owner = parent
            merged.append(new)
            self.changed.append(new)
            any_changed = True

        for leftovers in named.values():
            self.dropped.extend(leftovers)
        for leftovers in anonymous.values():
            self.dropped.extend(leftovers)

        list_changed = len(merged) != len(old_list) or any(
            kept is not old for kept, old in zip(merged, old_list))
        if list_changed:
            any_changed = True
            self.changed.append(parent)
            # positional (#ordinal) path segments of kept anonymous
            # children may have shifted — recompute their keys lazily
            for kept in merged:
                if _match_key(kept) is None:
                    _clear_keys_deep(kept)
        return merged, list_changed, any_changed

    def merge_element(self, old: Element, new: Element) -> bool:
        """Merge *new* into the kept *old* object; True if anything in
        the subtree changed."""
        head_changed = own_signature(old) != own_signature(new)
        if head_changed:
            _copy_head(old, new)
            self.changed.append(old)
        merged, list_changed, children_changed = self.merge_lists(
            old.owned_elements, new.owned_elements, old)
        if list_changed:
            for child in merged:
                if child.owner is not old:
                    child.owner = old
            old.owned_elements = merged
        if head_changed or children_changed:
            old.__dict__.pop(_DEEP_ATTR, None)
        if head_changed or list_changed:
            old.__dict__.pop(_SCOPE_ATTR, None)
        return head_changed or children_changed


# -- the session -------------------------------------------------------------

class ModelSession:
    """A resolved model that absorbs source edits incrementally.

    Construction performs a cold :func:`load_model`-equivalent (with
    dependency recording); :meth:`update` merges a new revision of the
    sources and returns a :class:`ModelUpdate` describing how little
    work that took. The live model object is stable across updates —
    only dirty subtrees are re-resolved in place.
    """

    def __init__(self, *texts: str, filenames: list[str] | None = None,
                 include_stdlib: bool = True, cache=None, jobs: int = 1,
                 parse_mode: str = "thread"):
        self.include_stdlib = include_stdlib
        self.cache = cache
        self.jobs = jobs
        self.parse_mode = parse_mode
        self.model: Model = None  # type: ignore[assignment]
        self.graph: DepGraph = None  # type: ignore[assignment]
        self.index: NodeIndex = None  # type: ignore[assignment]
        self._sources: list[str] = []
        self._names: list[str] = []
        self._source_fps: list[str] = []
        self._slice_counts: list[int] = []
        self._load_cold(list(texts), list(filenames or []))

    # -- cold path -----------------------------------------------------------

    def _with_stdlib(self, texts: list[str], filenames: list[str]
                     ) -> tuple[list[str], list[str]]:
        from .stdlib import SCALAR_VALUES_SOURCE
        names = list(filenames) or [f"<model{i}>" for i in range(len(texts))]
        sources = list(texts)
        if self.include_stdlib:
            sources.insert(0, SCALAR_VALUES_SOURCE)
            names.insert(0, "<stdlib>")
        return sources, names

    def _load_cold(self, texts: list[str], filenames: list[str]) -> None:
        from .stdlib import IMPLICIT_LIBRARY_PACKAGES
        sources, names = self._with_stdlib(texts, filenames)
        trees = _parse_sources(sources, names, cache=self.cache,
                               jobs=self.jobs, parse_mode=self.parse_mode)
        builder = ModelBuilder()
        counts: list[int] = []
        for tree in trees:
            before = len(builder.model.owned_elements)
            builder.add(tree)
            counts.append(len(builder.model.owned_elements) - before)
        model = builder.build()
        if self.include_stdlib:
            for element in model.owned_elements[:counts[0]]:
                if isinstance(element, Package):
                    element.is_library = True
        else:
            for element in model.owned_elements:
                if isinstance(element, Package) and \
                        element.name in IMPLICIT_LIBRARY_PACKAGES:
                    element.is_library = True
        model.content_fingerprint = model_fingerprint(
            sources, names, include_stdlib=self.include_stdlib)
        graph = DepGraph()
        Resolver(model, recorder=DepRecorder(graph)).resolve()
        self.model = model
        self.graph = graph
        self.index = NodeIndex.of_model(model)
        self.model.dep_graph = graph
        self.model.node_index = self.index
        self._sources = sources
        self._names = names
        self._source_fps = [fingerprint(text, salt=_SOURCE_SALT)
                            for text in sources]
        self._slice_counts = counts

    # -- incremental path ----------------------------------------------------

    def update(self, *texts: str,
               filenames: list[str] | None = None) -> ModelUpdate:
        """Absorb a new revision of the sources; falls back to a cold
        rebuild on any incremental failure."""
        sources, names = self._with_stdlib(list(texts),
                                           list(filenames or []))
        try:
            with _span("incremental-update"):
                return self._update_incremental(sources, names)
        except Exception:  # noqa: BLE001 - safety valve
            # Cold rebuild; if the *sources* are broken this raises the
            # same error a fresh load would.
            self._load_cold(list(texts), list(filenames or []))
            return ModelUpdate(
                changed_sources=tuple(names[1:]
                                      if self.include_stdlib else names),
                full_rebuild=True)

    def _update_incremental(self, sources: list[str],
                            names: list[str]) -> ModelUpdate:
        new_fps = [fingerprint(text, salt=_SOURCE_SALT) for text in sources]
        changed = [index for index in range(len(sources))
                   if index >= len(self._source_fps)
                   or new_fps[index] != self._source_fps[index]]
        removed_slices = len(self._source_fps) > len(sources)
        if not changed and not removed_slices:
            # filenames feed the model fingerprint even when no text
            # changed, so recompute it regardless
            self.model.content_fingerprint = model_fingerprint(
                sources, names, include_stdlib=self.include_stdlib)
            self._set_sources(sources, names, new_fps)
            return ModelUpdate()

        changed_names = tuple(names[index] for index in changed
                              if index < len(names))
        trees = self._parse_changed(sources, names, changed)
        merger = _Merger()
        self._merge_root(trees, changed, len(sources), merger)
        edited = frozenset(anchor_key(element)
                           for element in merger.changed)

        new_index = NodeIndex.of_model(self.model)
        deep_changed, scope_changed = new_index.changed_since(self.index)
        removed = frozenset(key for key in self.index.deep
                            if key not in new_index.deep)
        self.graph.drop_consumers(removed)

        dirty_now = self._present_anchors(deep_changed, new_index) \
            | self._present_anchors(
                self.graph.consumers_affected(deep_changed, scope_changed),
                new_index)

        all_dirty: set[NodeKey] = set()
        semantic: set[NodeKey] = set()
        reresolved = 0
        rounds = 0
        while dirty_now:
            rounds += 1
            if rounds > _MAX_SEMANTIC_ROUNDS:
                raise IncrementalFallback(
                    "semantic propagation did not converge")
            elements = elements_anchored_in(self.model, dirty_now)
            before = {id(e): _semantic_state(e) for e in elements}
            for element in elements:
                clear_resolved_state(element)
            self.graph.drop_consumers(dirty_now)
            Resolver(self.model,
                     recorder=DepRecorder(self.graph)).resolve_only(elements)
            reresolved += len(elements)
            all_dirty |= dirty_now

            sem_changed = [e for e in elements
                           if _semantic_state(e) != before[id(e)]]
            deep2 = {anchor_key(e) for e in sem_changed}
            scope2 = {node_key(e) for e in sem_changed}
            semantic |= deep2
            dirty_now = self._present_anchors(
                self.graph.consumers_affected(deep2, scope2),
                new_index) - all_dirty

        self.index = new_index
        self.model.node_index = new_index
        self.model.content_fingerprint = model_fingerprint(
            sources, names, include_stdlib=self.include_stdlib)
        self._set_sources(sources, names, new_fps)
        # `merger` stays referenced to here, keeping dropped subtrees
        # alive while the fixpoint compared object identities above.
        assert merger.dropped is not None
        return ModelUpdate(changed_sources=changed_names,
                           dirty_anchors=frozenset(all_dirty),
                           removed_anchors=removed,
                           edited_anchors=edited,
                           semantic_anchors=frozenset(semantic),
                           reresolved_elements=reresolved, rounds=rounds)

    @staticmethod
    def _present_anchors(keys: set[NodeKey], index: NodeIndex
                         ) -> set[NodeKey]:
        """Restrict to anchors that still exist in the merged model."""
        return {key for key in keys if key in index.deep}

    def _set_sources(self, sources: list[str], names: list[str],
                     fps: list[str]) -> None:
        self._sources = sources
        self._names = names
        self._source_fps = fps

    def _parse_changed(self, sources: list[str], names: list[str],
                       changed: list[int]) -> dict[int, object]:
        parsed = _parse_sources([sources[i] for i in changed],
                                [names[i] for i in changed],
                                cache=self.cache, jobs=self.jobs,
                                parse_mode=self.parse_mode)
        return dict(zip(changed, parsed))

    def _merge_root(self, trees: dict[int, object], changed: list[int],
                    source_count: int, merger: _Merger) -> None:
        old_slices = self._slices()
        merged_root: list[Element] = []
        counts: list[int] = []
        root_changed = False
        for index in range(source_count):
            old_slice = old_slices[index] if index < len(old_slices) else []
            if index in trees:
                fragment = ModelBuilder()
                fragment.add(trees[index])
                new_elements = fragment.model.owned_elements
                if self.include_stdlib and index == 0:
                    for element in new_elements:
                        if isinstance(element, Package):
                            element.is_library = True
                merged, _list_changed, slice_changed = merger.merge_lists(
                    old_slice, new_elements, self.model)
                root_changed = root_changed or slice_changed
            else:
                merged = old_slice
            merged_root.extend(merged)
            counts.append(len(merged))
        for index in range(source_count, len(old_slices)):
            merger.dropped.extend(old_slices[index])
            root_changed = True

        if root_changed:
            self.model.__dict__.pop(_SCOPE_ATTR, None)
        if merged_root != self.model.owned_elements:
            for element in merged_root:
                if element.owner is not self.model:
                    element.owner = self.model
                if _match_key(element) is None:
                    _clear_keys_deep(element)
            self.model.owned_elements = merged_root
        self._slice_counts = counts

    def _slices(self) -> list[list[Element]]:
        slices: list[list[Element]] = []
        position = 0
        for count in self._slice_counts:
            slices.append(self.model.owned_elements[position:position + count])
            position += count
        return slices
