"""Parse-tree (AST) node dataclasses for the SysML v2 textual notation.

The parser produces these plain dataclasses; :mod:`repro.sysml.builder`
turns them into the semantic element graph. Keeping the two layers apart
means parse trees stay cheap to construct and trivially printable, while
semantic elements carry resolved cross-references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .errors import SourceLocation

#: Usage/definition kinds supported by the subset.
KINDS = ("package", "part", "attribute", "port", "action", "interface",
         "connection", "item")


@dataclass
class QualifiedName:
    """A ``::``-separated name, e.g. ``ISA95::Topology``."""

    parts: list[str]
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return "::".join(self.parts)


@dataclass
class FeatureChain:
    """A ``.``-separated feature access, e.g. ``pp_actual_X.value``."""

    parts: list[str]
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass
class Multiplicity:
    """A multiplicity range ``[lower..upper]``; ``upper=None`` means ``*``."""

    lower: int = 0
    upper: int | None = None

    def __str__(self) -> str:
        upper = "*" if self.upper is None else str(self.upper)
        if self.upper == self.lower:
            return f"[{self.lower}]"
        return f"[{self.lower}..{upper}]"


@dataclass
class TypeRef:
    """A reference to a type, optionally conjugated (``~Port``)."""

    name: QualifiedName
    conjugated: bool = False

    def __str__(self) -> str:
        return ("~" if self.conjugated else "") + str(self.name)


@dataclass
class Literal:
    """A literal expression value (str/int/float/bool)."""

    value: object
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class FeatureRefExpr:
    """An expression that references another feature by chain."""

    chain: FeatureChain


Expr = Union[Literal, FeatureRefExpr]


@dataclass
class DocNode:
    text: str
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class ImportNode:
    name: QualifiedName
    wildcard: bool = False
    recursive: bool = False
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class PackageNode:
    name: str
    members: list["MemberNode"] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class DefinitionNode:
    """``part def`` / ``port def`` / ``attribute def`` / ... declarations."""

    kind: str
    name: str
    is_abstract: bool = False
    specializes: list[QualifiedName] = field(default_factory=list)
    members: list["MemberNode"] = field(default_factory=list)
    doc: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class UsageNode:
    """Feature usages: ``part x : T``, ``attribute ip : String = '..'``, ...

    ``kind`` may also be the pseudo-kind ``"redefinition"`` for the
    shorthand form ``:>> name = value;`` whose real kind is discovered at
    resolution time from the redefined feature.
    """

    kind: str
    name: str | None = None
    direction: str | None = None  # "in" | "out" | "inout" | None
    is_ref: bool = False
    is_abstract: bool = False
    multiplicity: Multiplicity | None = None
    type: TypeRef | None = None
    specializes: list[QualifiedName] = field(default_factory=list)
    redefines: list[QualifiedName] = field(default_factory=list)
    value: Expr | None = None
    members: list["MemberNode"] = field(default_factory=list)
    doc: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class BindNode:
    """``bind left = right;`` — a binding connector between two features."""

    left: FeatureChain
    right: FeatureChain
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class ConnectNode:
    """``connect a to b``, optionally named/typed (connection or interface)."""

    kind: str  # "connection" | "interface"
    name: str | None
    type: TypeRef | None
    source: FeatureChain
    target: FeatureChain
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class PerformNode:
    """``perform chain { out x = other.y; }``."""

    target: FeatureChain
    members: list["MemberNode"] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class AssignmentNode:
    """``out name = feature.chain;`` inside actions/performs."""

    direction: str | None
    name: str
    value: Expr
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class EndNode:
    """``end name : Type;`` inside interface/connection definitions."""

    name: str
    type: TypeRef | None
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class AliasNode:
    """``alias Short for Long::Qualified::Name;``"""

    name: str
    target: QualifiedName
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class EnumDefinitionNode:
    """``enum def State { idle; running; }``"""

    name: str
    literals: list[str] = field(default_factory=list)
    specializes: list[QualifiedName] = field(default_factory=list)
    doc: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)


MemberNode = Union[PackageNode, DefinitionNode, UsageNode, ImportNode,
                   BindNode, ConnectNode, PerformNode, AssignmentNode,
                   EndNode, DocNode, AliasNode, EnumDefinitionNode]


@dataclass
class ModelNode:
    """Root of a parsed source text: the top-level member list."""

    members: list[MemberNode] = field(default_factory=list)
    filename: str = "<model>"
