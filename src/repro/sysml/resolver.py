"""Name resolution for SysML v2 models.

Two passes:

1. **Type resolution** — specializations (``:>``), feature typings
   (``: T`` / ``: ~T``), connector types, and imports. After this pass
   the specialization lattice is complete, so inherited members work.
2. **Feature resolution** — redefinitions (``:>>``), binding connector
   ends, connection/interface ends, perform targets, and assignment
   value references, all of which need inherited-member lookup.

Lookup rules (simplified from the KerML spec, sufficient for the
methodology's models): a simple name is searched in the local namespace,
then in inherited members (when the scope is a type), then in wildcard
imports of enclosing namespaces, then outward through the owner chain.
Qualified names resolve their first segment that way and descend through
(effective) members.

With a :class:`~repro.sysml.depgraph.DepRecorder` attached, every
lookup additionally records *which namespaces it consulted* and *what
it finally resolved to* into a dependency graph — the raw material of
incremental re-resolution (see :mod:`repro.sysml.incremental`).
:meth:`Resolver.resolve_only` reruns the same passes over an explicit
subset of elements, which is how dirty subtrees are re-resolved without
touching the rest of the model.
"""

from __future__ import annotations

from typing import Iterable

from ..obs import span as _span
from .ast_nodes import FeatureChain, QualifiedName
from .elements import (Alias, Assignment, BindingConnector, Connector,
                       Definition, Element, Import, Model, Namespace,
                       PerformAction, RedefinitionUsage, Type, Usage)
from .errors import ResolutionError


class Resolver:
    """Resolves all by-name references in a model, in place."""

    def __init__(self, model: Model, recorder=None):
        self.model = model
        #: Optional :class:`~repro.sysml.depgraph.DepRecorder`; when set,
        #: lookups record scope consultations and resolution targets.
        self.recorder = recorder
        # -- lookup memoization --------------------------------------------
        # Member tables, inherited-member tables and root-scope scans are
        # rebuilt from the element tree on every lookup (see
        # repro.sysml.elements), which makes resolution quadratic in deep
        # category nesting and machine count at mega-factory scale. The
        # resolver memoizes them per element, with *fine-grained*
        # invalidation at the only mutation sites that can change a
        # lookup's answer mid-resolve:
        #
        # * a name change (the ``:>> x = v`` shorthand adopts the
        #   redefined feature's name) invalidates the owner's member
        #   table and inherited tables built over it;
        # * a lattice change (``specializations``/``typ``/``redefines``)
        #   invalidates the element's inherited table and — through the
        #   ``_inh_deps`` reverse index recorded at build time — every
        #   cached table whose supertype closure touches the element;
        # * an alias retarget invalidates root-scope scans (the only
        #   cache that stores dereferenced alias targets).
        #
        # Memoization is disabled whenever a DepRecorder is attached:
        # the dependency graph must observe every namespace the lookup
        # *would* consult, so the incremental engine always runs on the
        # unmemoized path.
        self._memo_enabled = recorder is None
        self._members_memo: dict[int, tuple[Element,
                                            dict[str, Element]]] = {}
        self._inherited_memo: dict[int, tuple[Type,
                                              dict[str, Element]]] = {}
        #: id(element) -> ids of types whose cached inherited table was
        #: built over that element (supertype closure + redefines chains)
        self._inh_deps: dict[int, set[int]] = {}
        self._root_memo: dict[str, Element | None] = {}
        #: per-scope Import children — pure tree structure, which never
        #: changes during resolution, so entries are valid for the whole
        #: resolve (targets on the Import objects are read live)
        self._imports_memo: dict[int, tuple[Element, list[Import]]] = {}

    def resolve(self) -> Model:
        with _span("resolve") as s:
            self._run_passes(lambda: list(self.model.all_elements()))
            if s.enabled:
                s.set("passes", 4)
                s.set("elements",
                      sum(1 for _ in self.model.all_elements()))
        return self.model

    def resolve_only(self, elements: list[Element]) -> None:
        """Rerun all passes restricted to *elements* (pre-order list).

        Callers must first clear stale resolved state on those elements
        (:func:`~repro.sysml.incremental.clear_resolved_state`); lookup
        still sees the whole model, so references out of the subset
        resolve against already-resolved surroundings.
        """
        with _span("resolve-incremental") as s:
            self._run_passes(lambda: elements)
            if s.enabled:
                s.set("elements", len(elements))

    def _run_passes(self, elements: "callable") -> None:
        with _span("imports"):
            self._resolve_imports(elements())
        with _span("aliases"):
            self._resolve_aliases(elements())
        with _span("types"):
            self._resolve_types(elements())
        with _span("features"):
            self._resolve_features(elements())

    # -- recording ------------------------------------------------------------

    def _as_consumer(self, element: Element) -> None:
        if self.recorder is not None:
            self.recorder.set_consumer(element)

    def _consulted(self, scope: Element) -> None:
        if self.recorder is not None:
            self.recorder.consulted(scope)

    def _consulted_subtree(self, scope: Element) -> None:
        if self.recorder is not None:
            self.recorder.consulted_subtree(scope)

    def _resolved(self, element: Element | None) -> None:
        if self.recorder is not None:
            self.recorder.resolved(element)

    # -- memoized member tables ------------------------------------------------

    def _name_changed(self, element: Element) -> None:
        """An element's *name* changed: drop the owner's member table,
        every inherited table built over the owner, and (if the change
        is visible from the root scope) the root-scan memo."""
        owner = element.owner
        if owner is not None:
            self._members_memo.pop(id(owner), None)
            self._drop_inherited_dependents(id(owner))
        if owner is None or owner is self.model:
            self._root_memo.clear()

    def _lattice_changed(self, element: Element) -> None:
        """*element*'s supertype closure changed (``specializations``,
        ``typ`` or ``redefines`` mutated): drop its inherited table and
        every cached table whose closure walked through it."""
        self._inherited_memo.pop(id(element), None)
        self._drop_inherited_dependents(id(element))

    def _drop_inherited_dependents(self, key: int) -> None:
        for dependent in self._inh_deps.pop(key, ()):
            self._inherited_memo.pop(dependent, None)

    def _member_table(self, element: Element) -> dict[str, Element]:
        """Own-member table of *element*, memoized per owner.

        Matches :meth:`Namespace.member` exactly — first child wins and
        empty-string names participate (hostile corpus models use the
        quoted empty name ``''``), unlike the ``members`` property which
        drops falsy names. Invalidated by :meth:`_name_changed` on the
        owner; the element tree itself never gains or loses children
        during resolution.
        """
        if self._memo_enabled:
            entry = self._members_memo.get(id(element))
            if entry is not None:
                return entry[1]
        table: dict[str, Element] = {}
        for child in element.owned_elements:
            name = child.name
            if name is not None and name not in table:
                table[name] = child
        if self._memo_enabled:
            # the entry keeps a strong reference to the element so the
            # ``id()`` key cannot be recycled under the memo
            self._members_memo[id(element)] = (element, table)
        return table

    def _inherited(self, typ: Type) -> dict[str, Element]:
        """Inherited-member table of *typ*, invalidation-memoized.

        Built via :meth:`Type.inherited_members` (``members`` property
        semantics — falsy names excluded). At build time the supertype
        closure is registered in the ``_inh_deps`` reverse index so a
        later lattice or name mutation on any element the closure
        touched invalidates exactly the affected tables. The
        registration walks ``all_supertypes()`` *plus* the transitive
        ``redefines`` chains of every usage in it: ``effective_type()``
        follows redefines through intermediate usages that never appear
        in the supertype list themselves, yet whose typing still feeds
        the closure.
        """
        if not self._memo_enabled:
            return typ.inherited_members()
        entry = self._inherited_memo.get(id(typ))
        if entry is not None:
            return entry[1]
        table = typ.inherited_members()
        key = id(typ)
        seen: set[int] = set()
        stack: list[Element] = [typ, *typ.all_supertypes()]
        while stack:
            dep = stack.pop()
            dep_id = id(dep)
            if dep_id in seen:
                continue
            seen.add(dep_id)
            if dep is not typ:
                self._inh_deps.setdefault(dep_id, set()).add(key)
            if isinstance(dep, Usage):
                stack.extend(dep.redefines)
        self._inherited_memo[key] = (typ, table)
        return table

    def _member_of(self, element: Element, name: str, *,
                   include_self: bool = False) -> Element | None:
        """Memoized equivalent of the module-level :func:`_member_of`."""
        if not self._memo_enabled:
            return _member_of(element, name, include_self=include_self)
        if include_self and element.name == name:
            return element
        found: Element | None = None
        if isinstance(element, Type):
            found = self._member_table(element).get(name)
            if found is None:
                found = self._inherited(element).get(name)
        elif isinstance(element, Namespace):
            found = self._member_table(element).get(name)
        if isinstance(found, Alias):
            return found.target
        return found

    # -- pass 0a: imports ------------------------------------------------------

    def _resolve_imports(self, elements: Iterable[Element]) -> None:
        for imp in elements:
            if not isinstance(imp, Import):
                continue
            self._as_consumer(imp)
            scope = imp.owner or self.model
            target = self._lookup_qualified(imp.target_name, scope,
                                            use_imports=False)
            if target is None:
                raise ResolutionError(
                    f"cannot resolve import target '{imp.target_name}'",
                    imp.target_name.location)
            # import targets are consulted live (never cached), so
            # setting one invalidates nothing
            imp.target = target
            self._resolved(target)

    # -- pass 0b: aliases ------------------------------------------------------

    def _resolve_aliases(self, elements: Iterable[Element]) -> None:
        for alias in elements:
            if not isinstance(alias, Alias):
                continue
            self._as_consumer(alias)
            scope = alias.owner or self.model
            target = self._lookup_qualified(alias.target_name, scope)
            if target is None:
                raise ResolutionError(
                    f"cannot resolve alias target '{alias.target_name}'",
                    alias.target_name.location)
            if isinstance(target, Alias):
                target = target.target or target
            alias.target = target
            # root scans are the one cache that stores *dereferenced*
            # alias targets; member tables keep the Alias and deref live
            self._root_memo.clear()
            self._resolved(target)

    # -- pass 1: types ---------------------------------------------------------

    def _resolve_types(self, elements: Iterable[Element]) -> None:
        for element in elements:
            if isinstance(element, Type):
                self._as_consumer(element)
                self._resolve_type_clauses(element)
            if isinstance(element, Connector) and element.type_name is not None:
                self._as_consumer(element)
                resolved = self._require(element.type_name, element)
                if not isinstance(resolved, Definition):
                    raise ResolutionError(
                        f"connector type '{element.type_name}' is not a "
                        f"definition", element.type_name.location)
                element.typ = resolved
                self._lattice_changed(element)
                self._resolved(resolved)

    def _resolve_type_clauses(self, element: Type) -> None:
        for general_name in element.specialization_names:
            general = self._require(general_name, element)
            if not isinstance(general, Type):
                raise ResolutionError(
                    f"'{general_name}' is not a type and cannot be "
                    f"specialized", general_name.location)
            if general not in element.specializations:
                element.specializations.append(general)
                self._lattice_changed(element)
            self._resolved(general)
        if isinstance(element, Usage) and element.type_name is not None:
            typ = self._require(element.type_name, element)
            if not isinstance(typ, (Definition, Usage)):
                raise ResolutionError(
                    f"'{element.type_name}' cannot type a usage",
                    element.type_name.location)
            element.typ = typ
            self._lattice_changed(element)
            self._resolved(typ)

    # -- pass 2: features --------------------------------------------------------

    def _resolve_features(self, elements: Iterable[Element]) -> None:
        pending = list(elements)
        for element in pending:
            if isinstance(element, Usage) and element.redefinition_names:
                self._as_consumer(element)
                self._resolve_redefinitions(element)
        for element in pending:
            self._as_consumer(element)
            if isinstance(element, BindingConnector):
                element.left = self._resolve_chain(element.left_chain, element)
                element.right = self._resolve_chain(element.right_chain, element)
                self._resolved(element.left)
                self._resolved(element.right)
            elif isinstance(element, Connector):
                element.source = self._resolve_chain(element.source_chain,
                                                     element)
                element.target = self._resolve_chain(element.target_chain,
                                                     element)
                self._resolved(element.source)
                self._resolved(element.target)
            elif isinstance(element, PerformAction):
                element.target = self._resolve_chain(element.target_chain,
                                                     element)
                self._resolved(element.target)
            elif isinstance(element, Assignment):
                self._resolve_assignment(element)

    def _resolve_redefinitions(self, usage: Usage) -> None:
        scope = usage.owner
        if scope is None:
            raise ResolutionError("redefinition outside any scope",
                                  usage.location)
        for target_name in usage.redefinition_names:
            target = self._lookup_feature_name(target_name, scope,
                                               exclude=usage)
            if target is None:
                raise ResolutionError(
                    f"cannot resolve redefined feature '{target_name}' "
                    f"from {scope.qualified_name}", target_name.location)
            if not isinstance(target, Usage):
                raise ResolutionError(
                    f"'{target_name}' does not name a feature usage",
                    target_name.location)
            usage.redefines.append(target)
            self._lattice_changed(usage)
            self._resolved(target)
        if isinstance(usage, RedefinitionUsage) and usage.redefines:
            # The shorthand ':>> x = v;' takes its name and kind from the
            # redefined feature.
            if usage.name is None:
                usage.name = usage.redefines[0].name
                self._name_changed(usage)

    def _resolve_assignment(self, assignment: Assignment) -> None:
        from .ast_nodes import FeatureRefExpr
        if isinstance(assignment.value, FeatureRefExpr):
            scope = assignment.owner
            resolved = None
            if scope is not None:
                try:
                    resolved = self._resolve_chain(assignment.value.chain,
                                                   assignment)
                except ResolutionError:
                    resolved = None
            assignment.resolved_value = resolved
            self._resolved(resolved)

    # -- lookup machinery ------------------------------------------------------

    def _require(self, name: QualifiedName, context: Element) -> Element:
        found = self._lookup_qualified(name, context)
        if found is None:
            raise ResolutionError(
                f"cannot resolve name '{name}' from "
                f"{context.qualified_name}", name.location)
        return found

    def _lookup_qualified(self, name: QualifiedName, scope: Element,
                          *, use_imports: bool = True) -> Element | None:
        current = self._lookup_simple(name.parts[0], scope,
                                      use_imports=use_imports)
        if current is None:
            return None
        for part in name.parts[1:]:
            self._consulted(current)
            current = self._member_of(current, part)
            if current is None:
                return None
        return current

    def _lookup_simple(self, name: str, scope: Element, *,
                       use_imports: bool = True) -> Element | None:
        node: Element | None = scope
        while node is not None and node is not self.model:
            self._consulted(node)
            found = self._member_of(node, name, include_self=True)
            if found is not None:
                return found
            if use_imports:
                found = self._lookup_in_imports(name, node)
                if found is not None:
                    return found
            node = node.owner
        return self._lookup_root(name)

    def _lookup_root(self, name: str) -> Element | None:
        """Root-scope lookup, memoized per name (misses included).

        At mega-factory scale the model root owns thousands of machine
        packages, and every unqualified name that escapes its owner
        chain rescans them — memoizing by name makes the root scan
        amortized O(1) instead of O(packages) per lookup. Invalidated
        wholesale on alias retargets and root-visible name changes.
        """
        if self._memo_enabled and name in self._root_memo:
            return self._root_memo[name]
        found = self._scan_root(name)
        if self._memo_enabled:
            self._root_memo[name] = found
        return found

    def _scan_root(self, name: str) -> Element | None:
        # the model root (library packages resolve only by qualified name
        # or through the implicit-import fallback below)
        self._consulted(self.model)
        for child in self.model.owned_elements:
            if child.name == name and not _is_library_package(child):
                return _deref_alias(child)
        for child in self.model.owned_elements:
            if child.name == name:
                return _deref_alias(child)
        return self._lookup_in_stdlib(name)

    def _lookup_in_stdlib(self, name: str) -> Element | None:
        from .stdlib import IMPLICIT_LIBRARY_PACKAGES
        for package_name in IMPLICIT_LIBRARY_PACKAGES:
            package = self.model.member(package_name)
            if package is not None:
                self._consulted(package)
                found = self._member_of(package, name)
                if found is not None:
                    return found
        return None

    def _imports_of(self, scope: Element) -> list[Import]:
        entry = self._imports_memo.get(id(scope))
        if entry is not None:
            return entry[1]
        imports = [child for child in scope.owned_elements
                   if isinstance(child, Import)]
        self._imports_memo[id(scope)] = (scope, imports)
        return imports

    def _lookup_in_imports(self, name: str, scope: Element) -> Element | None:
        for child in self._imports_of(scope):
            if child.target is None:
                continue
            target = child.target
            self._consulted(target)
            if child.wildcard:
                found = self._member_of(target, name)
                if found is not None:
                    return found
                if child.recursive and isinstance(target, Namespace):
                    # A recursive wildcard can match *anywhere* in the
                    # target subtree, so the dependency is on its whole
                    # content, not just its member table.
                    self._consulted_subtree(target)
                    for descendant in target.descendants():
                        if descendant.name == name:
                            return descendant
            elif target.name == name:
                return target
        return None

    def _lookup_feature_name(self, name: QualifiedName, scope: Element,
                             *, exclude: Element | None = None) -> Element | None:
        """Resolve a (usually simple) redefinition target.

        Redefinitions refer to features of the *context type* — the
        supertypes / typing of the owning usage — so inherited members of
        the owner are searched first. The redefining usage itself (and
        same-named own members, which merely shadow) never match.
        """
        if len(name.parts) == 1 and isinstance(scope, Type):
            self._consulted(scope)
            found = self._inherited(scope).get(name.parts[0])
            if found is not None and found is not exclude:
                return found
            found = self._member_table(scope).get(name.parts[0])
            if found is not None and found is not exclude:
                return found
        found = self._lookup_qualified(name, scope)
        if found is exclude:
            return None
        return found

    def _resolve_chain(self, chain: FeatureChain, context: Element) -> Element:
        scope = context.owner or self.model
        current = self._lookup_simple(chain.parts[0], scope)
        if current is None:
            raise ResolutionError(
                f"cannot resolve '{chain.parts[0]}' (in chain '{chain}') "
                f"from {scope.qualified_name}", chain.location)
        for part in chain.parts[1:]:
            self._consulted(current)
            nxt = self._member_of(current, part)
            if nxt is None:
                raise ResolutionError(
                    f"'{current.qualified_name}' has no member '{part}' "
                    f"(in chain '{chain}')", chain.location)
            current = nxt
        return current


def _is_library_package(element: Element) -> bool:
    from .elements import Package
    return isinstance(element, Package) and element.is_library


def _deref_alias(element: Element) -> Element:
    if isinstance(element, Alias) and element.target is not None:
        return element.target
    return element


def _member_of(element: Element, name: str, *,
               include_self: bool = False) -> Element | None:
    """Find *name* among the (effective) members of *element*.

    Aliases are transparent: looking up an alias name yields its target.
    """
    if include_self and element.name == name:
        return element
    found: Element | None = None
    if isinstance(element, Type):
        found = element.effective_member(name)
    elif isinstance(element, Namespace):
        found = element.member(name)
    if isinstance(found, Alias):
        return found.target
    return found


def resolve_model(model: Model) -> Model:
    """Resolve all references in *model* (in place) and return it."""
    return Resolver(model).resolve()


_DEPRECATED_SALTS = {
    # moved to repro.fingerprint under new names
    "PARSE_CACHE_SALT": "PARSE_TREE_SALT",
    "MODEL_FINGERPRINT_SALT": "MODEL_SALT",
}


def __getattr__(name: str):
    if name in _DEPRECATED_SALTS:
        import warnings

        from .. import fingerprint as _fp_module
        replacement = _DEPRECATED_SALTS[name]
        warnings.warn(
            f"repro.sysml.resolver.{name} is deprecated; use "
            f"repro.fingerprint.{replacement} instead",
            DeprecationWarning, stacklevel=2)
        return getattr(_fp_module, replacement)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _parse_source(payload: tuple[str, str]):
    """Parse one (text, filename) payload — module-level so process
    pools can ship it to workers."""
    from .parser import parse
    text, name = payload
    return parse(text, name)


def _parse_sources(sources: list[str], names: list[str], *,
                   cache=None, jobs: int = 1, parse_mode: str = "thread"
                   ) -> list:
    """Parse every source, reusing cached trees and fanning out misses.

    Cache keys cover the source text *and* its filename (parse trees
    embed source locations), salted with
    :data:`repro.fingerprint.PARSE_TREE_SALT`. Results always come back
    in source order.
    """
    from ..fingerprint import PARSE_TREE_SALT, fingerprint
    from ..obs import span as _obs_span
    from ..parallel import map_ordered

    keys: list[str | None] = [None] * len(sources)
    trees: list = [None] * len(sources)
    if cache is not None:
        for index, (text, name) in enumerate(zip(sources, names)):
            keys[index] = fingerprint(text, name, salt=PARSE_TREE_SALT)
            tree = cache.get_object(keys[index])
            if tree is not None:
                trees[index] = tree
                with _obs_span("parse", file=name, cached=True):
                    pass
    missing = [index for index, tree in enumerate(trees) if tree is None]
    parsed = map_ordered(
        _parse_source, [(sources[i], names[i]) for i in missing],
        jobs=jobs, mode=parse_mode,
        span_label=lambda payload, _i: f"parse:{payload[1]}",
        pool_span="parse-pool")
    for index, tree in zip(missing, parsed):
        trees[index] = tree
        if cache is not None:
            cache.put_object(keys[index], tree)
    return trees


def model_fingerprint(sources: list[str], names: list[str], *,
                      include_stdlib: bool) -> str:
    """The whole-model content fingerprint of a source set.

    *sources*/*names* must already include the stdlib prefix when
    *include_stdlib* is true (exactly what :func:`load_model` hashes),
    so incremental reloads can reproduce the cold fingerprint.
    """
    from ..fingerprint import MODEL_SALT, fingerprint
    return fingerprint([include_stdlib], *sources, *names, salt=MODEL_SALT)


def content_fingerprint_of_sources(
        sources: list[str], filenames: list[str] | None = None, *,
        include_stdlib: bool = True) -> str:
    """What ``load_model(*sources).content_fingerprint`` would be.

    A pure function of the source texts — no lexing, parsing or
    resolution happens. The sharded serving router uses it to derive
    the same shard-affinity key a worker derives after actually
    loading the model, so routing costs a hash, not a parse.
    """
    names = list(filenames or [f"<model{i}>" for i in range(len(sources))])
    texts = list(sources)
    if include_stdlib:
        from .stdlib import SCALAR_VALUES_SOURCE
        texts.insert(0, SCALAR_VALUES_SOURCE)
        names.insert(0, "<stdlib>")
    return model_fingerprint(texts, names, include_stdlib=include_stdlib)


def load_model(*texts: str, filenames: list[str] | None = None,
               include_stdlib: bool = True, cache=None, jobs: int = 1,
               parse_mode: str = "thread",
               record_deps: bool = False) -> Model:
    """Parse, build and resolve one or more textual-notation sources.

    The miniature standard library (``ScalarValues``, ``Base``) is
    prepended unless *include_stdlib* is False. With a *cache*
    (:class:`~repro.cache.ArtifactCache`) per-source parse trees are
    reused across runs, keyed on the source text; ``jobs > 1`` parses
    independent sources on a worker pool (*parse_mode* ``'thread'`` or
    ``'process'`` — processes pay pickling but sidestep the GIL for
    this CPU-bound phase).

    With ``record_deps=True`` resolution additionally records the
    dependency graph and per-node fingerprint index used by the
    incremental engine; they are attached as ``model.dep_graph``
    (:class:`~repro.sysml.depgraph.DepGraph`) and ``model.node_index``
    (:class:`~repro.sysml.depgraph.NodeIndex`).
    """
    from .builder import build_model
    from .elements import Package
    from .stdlib import IMPLICIT_LIBRARY_PACKAGES, SCALAR_VALUES_SOURCE

    names = list(filenames or [f"<model{i}>" for i in range(len(texts))])
    sources = list(texts)
    if include_stdlib:
        sources.insert(0, SCALAR_VALUES_SOURCE)
        names.insert(0, "<stdlib>")

    trees = _parse_sources(sources, names, cache=cache, jobs=jobs,
                           parse_mode=parse_mode)
    model = build_model(*trees)
    if include_stdlib:
        stdlib_root_count = len(trees[0].members)
        for element in model.owned_elements[:stdlib_root_count]:
            if isinstance(element, Package):
                element.is_library = True
    else:
        # re-parsing a printed model: recognize the embedded library
        # packages by name so round trips stay stable
        for element in model.owned_elements:
            if isinstance(element, Package) and \
                    element.name in IMPLICIT_LIBRARY_PACKAGES:
                element.is_library = True
    model.content_fingerprint = model_fingerprint(
        sources, names, include_stdlib=include_stdlib)
    if record_deps:
        from .depgraph import DepGraph, DepRecorder, NodeIndex
        graph = DepGraph()
        Resolver(model, recorder=DepRecorder(graph)).resolve()
        model.dep_graph = graph
        model.node_index = NodeIndex.of_model(model)
        return model
    return resolve_model(model)
