"""Instance elaboration: expanding usage trees into instance trees.

A SysML v2 usage (``part emco : EMCO``) stands for an instance whose
structure combines the usage's own members with the members contributed
by its typing definition and by every (transitively) specialized type.
This module materializes that combination into a tree of
:class:`InstanceNode` records — the same expansion the paper's tool
performs when it walks the ISA-95 topology, and the basis for the
"Part/Attribute/Port instances" counts of Table I.

Rules implemented:

* own members shadow inherited members of the same name (redefinition by
  shadowing), and explicit redefinitions (``:>>``) replace their targets;
* ``ref part`` members are *references*: they appear as reference nodes
  but are not recursively expanded (ISA-95 machines referenced by
  workcells are modeled elsewhere);
* conjugated port typings (``: ~P``) flip the direction of the port's
  attributes and actions;
* nested *definitions* are never instantiated — only usages are;
* literal values attached to usages (``:>> ip = '10...'``) become the
  instance's value; feature references are kept symbolic and resolved by
  binding propagation (:func:`propagate_bindings`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from .ast_nodes import FeatureRefExpr, Literal
from .elements import (BindingConnector, Connector, Element, Model,
                       Namespace, Package, PerformAction, Usage)
from .errors import SysMLError


class ElaborationError(SysMLError):
    """Raised when a usage tree cannot be expanded (e.g. type cycles)."""


@dataclass
class InstanceNode:
    """One node of an elaborated instance tree."""

    name: str
    kind: str  # part | attribute | port | action | ...
    usage: Usage | None = None
    type_name: str = ""
    direction: str | None = None
    conjugated: bool = False
    is_reference: bool = False
    value: object | None = None
    value_ref: str | None = None  # symbolic feature-chain value, if any
    children: list["InstanceNode"] = field(default_factory=list)
    owner: Optional["InstanceNode"] = None

    # -- navigation ---------------------------------------------------------

    def add(self, child: "InstanceNode") -> "InstanceNode":
        child.owner = self
        self.children.append(child)
        return child

    @property
    def path(self) -> str:
        parts: list[str] = []
        node: InstanceNode | None = self
        while node is not None:
            parts.append(node.name)
            node = node.owner
        return ".".join(reversed(parts))

    def walk(self) -> Iterator["InstanceNode"]:
        """Pre-order traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, path: str) -> Optional["InstanceNode"]:
        """Find a descendant by dotted path relative to this node."""
        node: InstanceNode | None = self
        for part in path.split("."):
            if node is None:
                return None
            node = next((c for c in node.children if c.name == part), None)
        return node

    def child(self, name: str) -> Optional["InstanceNode"]:
        return next((c for c in self.children if c.name == name), None)

    def children_of_kind(self, kind: str) -> list["InstanceNode"]:
        return [c for c in self.children if c.kind == kind]

    # -- metrics --------------------------------------------------------------

    def count(self, predicate: Callable[["InstanceNode"], bool]) -> int:
        return sum(1 for node in self.walk() if predicate(node))

    def count_kind(self, kind: str) -> int:
        return self.count(lambda node: node.kind == kind)

    def __repr__(self) -> str:
        extra = f" : {self.type_name}" if self.type_name else ""
        return f"<InstanceNode {self.kind} {self.path}{extra}>"


class Elaborator:
    """Expands usages into :class:`InstanceNode` trees."""

    def __init__(self, *, max_depth: int = 64):
        self.max_depth = max_depth

    def elaborate(self, usage: Usage) -> InstanceNode:
        return self._expand(usage, depth=0, type_stack=())

    # -- expansion -----------------------------------------------------------

    def _expand(self, usage: Usage, *, depth: int,
                type_stack: tuple[int, ...],
                flip_direction: bool = False) -> InstanceNode:
        if depth > self.max_depth:
            raise ElaborationError(
                f"maximum elaboration depth exceeded at "
                f"{usage.qualified_name} (recursive part structure?)",
                usage.location)
        effective_type = usage.effective_type()
        node = InstanceNode(
            name=usage.name or f"<anon#{usage.local_ordinal}>",
            kind=usage.kind if usage.kind != "redefinition" else
            (usage.redefines[0].kind if usage.redefines else "attribute"),
            usage=usage,
            type_name=effective_type.qualified_name if effective_type else "",
            direction=_flip(usage.direction) if flip_direction else usage.direction,
            conjugated=usage.conjugated,
            is_reference=usage.is_reference,
        )
        self._attach_value(node, usage)
        if usage.is_reference:
            return node  # references are not expanded

        cycle_key = id(effective_type) if effective_type is not None else None
        if cycle_key is not None and cycle_key in type_stack:
            # Legal models never nest a definition inside itself; stop
            # expanding rather than recurse forever.
            return node
        next_stack = type_stack + ((cycle_key,) if cycle_key is not None else ())

        # conjugation flips directions of everything inside the port
        flip_children = flip_direction ^ usage.conjugated

        for member in self._effective_feature_members(usage):
            if isinstance(member, Usage):
                node.add(self._expand(member, depth=depth + 1,
                                      type_stack=next_stack,
                                      flip_direction=flip_children))
            elif isinstance(member, (BindingConnector, Connector)):
                node.add(_connector_node(member))
            elif isinstance(member, PerformAction):
                node.add(InstanceNode(
                    name=f"perform_{member.local_ordinal}", kind="perform",
                    value_ref=str(member.target_chain)))
        return node

    def _attach_value(self, node: InstanceNode, usage: Usage) -> None:
        value_expr = usage.value
        if value_expr is None:
            for redefined in usage.redefines:
                if redefined.value is not None:
                    value_expr = redefined.value
                    break
        if isinstance(value_expr, Literal):
            node.value = value_expr.value
        elif isinstance(value_expr, FeatureRefExpr):
            node.value_ref = str(value_expr.chain)

    def _effective_feature_members(self, usage: Usage) -> list[Element]:
        """Members to instantiate: own + inherited, redefinitions applied."""
        inherited: dict[str, Element] = {}
        anonymous: list[Element] = []
        for general in reversed(usage.all_supertypes()):
            for member in general.owned_elements:
                if isinstance(member, Usage) and member.name:
                    inherited[member.name] = member
                elif isinstance(member, (BindingConnector, Connector,
                                         PerformAction)):
                    anonymous.append(member)
        result: dict[str, Element] = dict(inherited)
        for member in usage.owned_elements:
            if isinstance(member, Usage):
                for redefined in member.redefines:
                    if redefined.name and redefined.name in result:
                        del result[redefined.name]
                if member.name:
                    result[member.name] = member
                else:
                    anonymous.append(member)
            elif isinstance(member, (BindingConnector, Connector,
                                     PerformAction)):
                anonymous.append(member)
        ordered = list(result.values()) + anonymous
        return ordered


def _flip(direction: str | None) -> str | None:
    if direction == "in":
        return "out"
    if direction == "out":
        return "in"
    return direction


def _connector_node(member: BindingConnector | Connector) -> InstanceNode:
    if isinstance(member, BindingConnector):
        return InstanceNode(
            name=f"bind_{member.local_ordinal}", kind="bind",
            value_ref=f"{member.left_chain}={member.right_chain}")
    return InstanceNode(
        name=member.name or f"connect_{member.local_ordinal}",
        kind=member.connector_kind,
        value_ref=f"{member.source_chain}->{member.target_chain}")


def elaborate(usage: Usage, *, max_depth: int = 64) -> InstanceNode:
    """Expand a single usage into an instance tree."""
    return Elaborator(max_depth=max_depth).elaborate(usage)


def elaborate_model(model: Model, *, max_depth: int = 64) -> list[InstanceNode]:
    """Elaborate every top-level part usage in the model.

    Top-level means owned by the model root or by a package — i.e. the
    instantiated system models like ``ICETopology``, not the nested
    usages inside definitions.
    """
    elaborator = Elaborator(max_depth=max_depth)
    roots: list[InstanceNode] = []
    scopes: list[Namespace] = [model]
    scopes.extend(p for p in model.all_elements() if isinstance(p, Package))
    for scope in scopes:
        for member in scope.owned_elements:
            if isinstance(member, Usage) and member.kind == "part":
                roots.append(elaborator.elaborate(member))
    return roots


def propagate_bindings(root: InstanceNode) -> int:
    """Copy literal values across ``bind`` connectors until fixpoint.

    Returns the number of value propagations performed. Binding
    connectors equate two features: when one side has a concrete value
    and the other does not, the value flows. This mirrors how the
    generated configuration exposes machine attribute values through
    driver ports.
    """
    # Build a path index once; bind nodes record chains relative to their
    # owner instance.
    propagated = 0
    changed = True
    iterations = 0
    while changed and iterations < 100:
        changed = False
        iterations += 1
        for node in root.walk():
            if node.kind != "bind" or not node.value_ref:
                continue
            left_path, _, right_path = node.value_ref.partition("=")
            scope = node.owner
            if scope is None:
                continue
            left = _resolve_instance_chain(scope, left_path)
            right = _resolve_instance_chain(scope, right_path)
            if left is None or right is None:
                continue
            if left.value is None and right.value is not None:
                left.value = right.value
                propagated += 1
                changed = True
            elif right.value is None and left.value is not None:
                right.value = left.value
                propagated += 1
                changed = True
    return propagated


def _resolve_instance_chain(scope: InstanceNode, chain: str) -> InstanceNode | None:
    """Resolve ``a.b.c`` against an instance scope, searching outward."""
    parts = chain.split(".")
    node: InstanceNode | None = scope
    while node is not None:
        candidate = node.child(parts[0])
        if candidate is not None:
            for part in parts[1:]:
                candidate = candidate.child(part) if candidate else None
            if candidate is not None:
                return candidate
        node = node.owner
    return None
