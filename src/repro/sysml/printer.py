"""Pretty-printer: semantic model -> SysML v2 textual notation.

Printing a parsed model and re-parsing the output yields an equivalent
model (round-trip property covered by tests). Used by the ICE-lab model
generator to emit human-readable ``.sysml`` sources.
"""

from __future__ import annotations

from .ast_nodes import FeatureChain, FeatureRefExpr, Literal, QualifiedName
from .elements import (Assignment, BindingConnector, Connector, Definition,
                       Element, Import, Model, Package,
                       PerformAction, RedefinitionUsage, Usage)
from .tokens import KEYWORDS

_INDENT = "    "


def _escape_string(value: str) -> str:
    """Escape a string body so the lexer reads it back verbatim."""
    return (value.replace("\\", "\\\\").replace("'", "\\'")
            .replace("\n", "\\n").replace("\t", "\\t"))


def _is_plain_identifier(name: str) -> bool:
    if not name or name in KEYWORDS:
        return False
    first = name[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(ch.isalnum() or ch == "_" for ch in name)


def format_name(name: str) -> str:
    """A declared name as source text: bare identifiers print as-is,
    anything else becomes a single-quoted *unrestricted name*."""
    if _is_plain_identifier(name):
        return name
    return f"'{_escape_string(name)}'"


def _qname_text(qname: QualifiedName | str) -> str:
    if isinstance(qname, QualifiedName):
        return "::".join(format_name(part) for part in qname.parts)
    return format_name(str(qname))


def _chain_text(chain: FeatureChain | str) -> str:
    if isinstance(chain, FeatureChain):
        return ".".join(format_name(part) for part in chain.parts)
    return format_name(str(chain))


def print_model(model: Model) -> str:
    """Render the whole model as textual notation."""
    lines: list[str] = []
    for element in model.owned_elements:
        _print_element(element, lines, 0)
    return "\n".join(lines) + "\n"


def print_element(element: Element) -> str:
    """Render a single element subtree."""
    lines: list[str] = []
    _print_element(element, lines, 0)
    return "\n".join(lines) + "\n"


def _print_element(element: Element, lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(element, Package):
        lines.append(f"{pad}package {format_name(element.name)} {{")
        _print_doc(element, lines, depth + 1)
        for child in element.owned_elements:
            _print_element(child, lines, depth + 1)
        lines.append(f"{pad}}}")
        return
    if isinstance(element, Import):
        suffix = "::*" if element.wildcard else ""
        if element.recursive:
            suffix = "::*::*"
        lines.append(
            f"{pad}import {_qname_text(element.target_name)}{suffix};")
        return
    from .elements import Alias, EnumerationDefinition
    if isinstance(element, Alias):
        lines.append(f"{pad}alias {format_name(element.name)} for "
                     f"{_qname_text(element.target_name)};")
        return
    if isinstance(element, EnumerationDefinition):
        head = f"{pad}enum def {format_name(element.name)}"
        if element.specialization_names:
            head += " :> " + ", ".join(_qname_text(n) for n
                                       in element.specialization_names)
        lines.append(head + " {")
        _print_doc(element, lines, depth + 1)
        inner = _INDENT * (depth + 1)
        for literal in element.literals:
            lines.append(f"{inner}{format_name(literal.name)};")
        lines.append(f"{pad}}}")
        return
    if isinstance(element, Definition):
        _print_definition(element, lines, depth)
        return
    if isinstance(element, Usage):
        _print_usage(element, lines, depth)
        return
    if isinstance(element, BindingConnector):
        lines.append(f"{pad}bind {_chain_text(element.left_chain)} = "
                     f"{_chain_text(element.right_chain)};")
        return
    if isinstance(element, Connector):
        keyword = element.connector_kind
        header = keyword
        # "is not None", not truthiness: '' is a legal declared name
        # (quoted empty unrestricted name) and must not vanish
        if element.name is not None:
            header += f" {format_name(element.name)}"
        if element.type_name is not None:
            header += f" : {_qname_text(element.type_name)}"
        lines.append(f"{pad}{header} connect "
                     f"{_chain_text(element.source_chain)} "
                     f"to {_chain_text(element.target_chain)};")
        return
    if isinstance(element, PerformAction):
        if element.owned_elements:
            lines.append(
                f"{pad}perform {_chain_text(element.target_chain)} {{")
            for child in element.owned_elements:
                _print_element(child, lines, depth + 1)
            lines.append(f"{pad}}}")
        else:
            lines.append(
                f"{pad}perform {_chain_text(element.target_chain)};")
        return
    if isinstance(element, Assignment):
        direction = f"{element.direction} " if element.direction else ""
        lines.append(f"{pad}{direction}{format_name(element.name)} = "
                     f"{_expr_text(element.value)};")
        return
    raise TypeError(f"cannot print element of type {type(element).__name__}")


def _print_doc(element: Element, lines: list[str], depth: int) -> None:
    if element.documentation:
        pad = _INDENT * depth
        lines.append(f"{pad}doc /* {element.documentation} */")


def _print_definition(definition: Definition, lines: list[str],
                      depth: int) -> None:
    pad = _INDENT * depth
    head = ""
    if definition.is_abstract:
        head += "abstract "
    head += f"{definition.kind} def {format_name(definition.name)}"
    if definition.specialization_names:
        targets = ", ".join(_qname_text(n)
                            for n in definition.specialization_names)
        head += f" :> {targets}"
    if definition.owned_elements or definition.documentation:
        lines.append(f"{pad}{head} {{")
        _print_doc(definition, lines, depth + 1)
        for child in definition.owned_elements:
            _print_element(child, lines, depth + 1)
        lines.append(f"{pad}}}")
    else:
        lines.append(f"{pad}{head};")


def _print_usage(usage: Usage, lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    head = ""
    if usage.direction:
        head += f"{usage.direction} "
    if usage.is_abstract:
        head += "abstract "
    if usage.is_reference:
        head += "ref "
    if isinstance(usage, RedefinitionUsage):
        head += f":>> {_qname_text(usage.redefinition_names[0])}"
    else:
        head += usage.kind
        if usage.name is not None:  # '' is a legal (quoted) name
            head += f" {format_name(usage.name)}"
        if usage.multiplicity is not None:
            head += f" {usage.multiplicity}"
        if usage.type_name is not None:
            tilde = "~" if usage.conjugated else ""
            head += f" : {tilde}{_qname_text(usage.type_name)}"
        for target in usage.specialization_names:
            head += f" :> {_qname_text(target)}"
        for target in usage.redefinition_names:
            head += f" :>> {_qname_text(target)}"
    if usage.value is not None:
        head += f" = {_expr_text(usage.value)}"
    if usage.owned_elements or usage.documentation:
        lines.append(f"{pad}{head} {{")
        _print_doc(usage, lines, depth + 1)
        for child in usage.owned_elements:
            _print_element(child, lines, depth + 1)
        lines.append(f"{pad}}}")
    else:
        lines.append(f"{pad}{head};")


def _expr_text(expr: object) -> str:
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return f"'{_escape_string(value)}'"
        return repr(value)
    if isinstance(expr, FeatureRefExpr):
        return _chain_text(expr.chain)
    raise TypeError(f"cannot print expression {expr!r}")
