"""Token definitions for the SysML v2 textual notation lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    IDENT = "IDENT"
    STRING = "STRING"
    INTEGER = "INTEGER"
    REAL = "REAL"
    # punctuation / operators
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    EQUALS = "="
    STAR = "*"
    TILDE = "~"
    MINUS = "-"
    SPECIALIZES = ":>"
    REDEFINES = ":>>"
    DOUBLE_COLON = "::"
    DOC_COMMENT = "DOC_COMMENT"
    EOF = "EOF"


# Reserved words of the supported SysML v2 subset. They lex as IDENT and
# the parser checks `token.value in KEYWORDS` contextually, because SysML
# v2 allows several keywords as plain names in other positions.
KEYWORDS = frozenset({
    "package", "part", "def", "abstract", "ref", "attribute", "port",
    "action", "interface", "connection", "connect", "bind", "perform",
    "import", "in", "out", "inout", "doc", "end", "to", "specializes",
    "redefines", "alias", "private", "public", "item", "true", "false",
    "exhibit", "state", "flow", "from", "about", "metadata",
})


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    Slot-based: a factory-scale model lexes to millions of tokens, so
    the per-instance ``__dict__`` of a regular class would dominate the
    front end's allocation churn. Identifier values are additionally
    interned by the lexer, which makes the parser's keyword checks and
    the resolver's name-table lookups pointer-comparison fast.
    """

    kind: TokenKind
    value: str
    location: SourceLocation

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.IDENT and self.value == word

    def __str__(self) -> str:
        return f"{self.kind.name}({self.value!r})@{self.location}"
