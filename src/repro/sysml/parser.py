"""Recursive-descent parser for the SysML v2 textual notation subset.

The grammar covers everything the paper's modeling methodology uses
(Codes 1-5): packages, part/attribute/port/action/interface/connection
definitions and usages, `abstract`, `ref`, direction prefixes,
specialization ``:>``, redefinition ``:>>``, conjugated port types ``~T``,
multiplicities ``[*]``, value assignments, ``bind``, ``connect ... to ...``,
``perform``, ``end``, imports and ``doc`` comments.
"""

from __future__ import annotations

from .ast_nodes import (AssignmentNode, BindNode, ConnectNode, DefinitionNode,
                        DocNode, Expr, FeatureChain, FeatureRefExpr,
                        ImportNode, Literal, MemberNode, ModelNode,
                        Multiplicity, PackageNode, PerformNode, QualifiedName,
                        TypeRef, UsageNode, EndNode)
from .errors import ParseError
from .lexer import iter_tokens
from .tokens import Token, TokenKind

_USAGE_KINDS = ("part", "attribute", "port", "action", "interface",
                "connection", "item")
_DIRECTIONS = ("in", "out", "inout")


class Parser:
    """Parses one source text into a :class:`ModelNode`."""

    def __init__(self, text: str, filename: str = "<model>"):
        #: Token source: a streaming lexer plus a small lookahead
        #: buffer. The grammar needs at most three tokens of lookahead
        #: (``_peek(2)``), so the buffer stays tiny even for
        #: multi-megabyte package sources — the full ``list[Token]`` is
        #: never materialized.
        self._stream = iter_tokens(text, filename)
        self._buffer: list[Token] = []
        self._cursor = 0
        self._speculating = 0
        self._eof: Token | None = None
        self.token_count = 0
        self.filename = filename

    # -- token stream helpers ---------------------------------------------

    def _fill(self, count: int) -> None:
        buffer = self._buffer
        while len(buffer) < count:
            if self._eof is not None:
                buffer.append(self._eof)
                continue
            token = next(self._stream)
            self.token_count += 1
            if token.kind is TokenKind.EOF:
                self._eof = token
            buffer.append(token)

    def _peek(self, offset: int = 0) -> Token:
        index = self._cursor + offset
        if len(self._buffer) <= index:
            self._fill(index + 1)
        return self._buffer[index]

    def _advance(self) -> Token:
        cursor = self._cursor
        if len(self._buffer) <= cursor:
            self._fill(cursor + 1)
        token = self._buffer[cursor]
        if token.kind is not TokenKind.EOF:
            self._cursor = cursor + 1
            # Compact consumed tokens unless a speculative parse could
            # still rewind past them; the window therefore stays at the
            # grammar's tiny lookahead for arbitrarily large sources.
            if self._speculating == 0 and self._cursor > 32:
                del self._buffer[:self._cursor]
                self._cursor = 0
        return token

    # -- speculative parsing ----------------------------------------------

    def _mark(self) -> int:
        """Open a rewind point; pair with :meth:`_rewind` or :meth:`_commit`."""
        self._speculating += 1
        return self._cursor

    def _rewind(self, checkpoint: int) -> None:
        self._speculating -= 1
        self._cursor = checkpoint

    def _commit(self) -> None:
        self._speculating -= 1

    def _check(self, kind: TokenKind, value: str | None = None) -> bool:
        token = self._peek()
        if token.kind is not kind:
            return False
        return value is None or token.value == value

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.IDENT and token.value in words

    def _match(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            want = value or kind.value
            raise ParseError(
                f"expected {want!r} but found {token.value!r}", token.location)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected keyword {word!r} but found {token.value!r}",
                token.location)
        return self._advance()

    # SysML v2 "unrestricted names" are single-quoted and legal wherever
    # a declared name or name-part may appear; the lexer exposes them as
    # STRING tokens and the parser accepts them contextually.

    def _check_name(self) -> bool:
        return self._check(TokenKind.IDENT) or self._check(TokenKind.STRING)

    def _expect_name(self) -> str:
        token = self._peek()
        if token.kind not in (TokenKind.IDENT, TokenKind.STRING):
            raise ParseError(
                f"expected a name but found {token.value!r}", token.location)
        return self._advance().value

    # -- entry point --------------------------------------------------------

    def parse_model(self) -> ModelNode:
        members: list[MemberNode] = []
        while not self._check(TokenKind.EOF):
            members.append(self._parse_member())
        return ModelNode(members=members, filename=self.filename)

    # -- member dispatch ----------------------------------------------------

    def _parse_member(self) -> MemberNode:
        token = self._peek()
        if token.kind is TokenKind.DOC_COMMENT:
            self._advance()
            return DocNode(token.value, token.location)
        if token.is_keyword("doc"):
            return self._parse_doc()
        if token.is_keyword("package"):
            return self._parse_package()
        if token.is_keyword("import"):
            return self._parse_import()
        if token.is_keyword("bind"):
            return self._parse_bind()
        if token.is_keyword("perform"):
            return self._parse_perform()
        if token.is_keyword("connect"):
            return self._parse_anonymous_connect()
        if token.is_keyword("end"):
            return self._parse_end()
        if token.is_keyword("alias"):
            return self._parse_alias()
        if token.is_keyword("enum"):
            return self._parse_enum_definition()
        if token.kind is TokenKind.REDEFINES:
            return self._parse_shorthand_redefinition()
        return self._parse_prefixed_member()

    def _parse_alias(self) -> "AliasNode":
        from .ast_nodes import AliasNode
        start = self._expect_keyword("alias")
        name = self._expect_name()
        self._expect_keyword("for")
        target = self._parse_qualified_name()
        self._expect(TokenKind.SEMI)
        return AliasNode(name, target, start.location)

    def _parse_enum_definition(self) -> "EnumDefinitionNode":
        from .ast_nodes import EnumDefinitionNode
        start = self._expect_keyword("enum")
        self._expect_keyword("def")
        name = self._expect_name()
        specializes: list[QualifiedName] = []
        if self._match(TokenKind.SPECIALIZES):
            specializes.append(self._parse_qualified_name())
        node = EnumDefinitionNode(name, specializes=specializes,
                                  location=start.location)
        self._expect(TokenKind.LBRACE)
        while not self._check(TokenKind.RBRACE):
            token = self._peek()
            if token.kind is TokenKind.DOC_COMMENT:
                self._advance()
                node.doc = node.doc or token.value
                continue
            if token.is_keyword("doc"):
                doc = self._parse_doc()
                node.doc = node.doc or doc.text
                continue
            literal = self._expect_name()
            self._expect(TokenKind.SEMI)
            node.literals.append(literal)
        self._expect(TokenKind.RBRACE)
        return node

    def _parse_doc(self) -> DocNode:
        start = self._expect_keyword("doc")
        token = self._peek()
        if token.kind is TokenKind.DOC_COMMENT:
            self._advance()
            return DocNode(token.value, start.location)
        raise ParseError("expected /* ... */ block after 'doc'", token.location)

    def _parse_package(self) -> PackageNode:
        start = self._expect_keyword("package")
        name = self._expect_name()
        members = self._parse_body()
        return PackageNode(name=name, members=members, location=start.location)

    def _parse_import(self) -> ImportNode:
        start = self._expect_keyword("import")
        parts = [self._expect_name()]
        wildcard = False
        recursive = False
        while self._match(TokenKind.DOUBLE_COLON):
            if self._match(TokenKind.STAR):
                wildcard = True
                if self._match(TokenKind.DOUBLE_COLON):
                    self._expect(TokenKind.STAR)
                    recursive = True
                break
            parts.append(self._expect_name())
        self._expect(TokenKind.SEMI)
        return ImportNode(QualifiedName(parts, start.location), wildcard,
                          recursive, start.location)

    def _parse_bind(self) -> BindNode:
        start = self._expect_keyword("bind")
        left = self._parse_feature_chain()
        self._expect(TokenKind.EQUALS)
        right = self._parse_feature_chain()
        self._expect(TokenKind.SEMI)
        return BindNode(left, right, start.location)

    def _parse_perform(self) -> PerformNode:
        start = self._expect_keyword("perform")
        target = self._parse_feature_chain()
        members: list[MemberNode] = []
        if self._check(TokenKind.LBRACE):
            members = self._parse_body()
        else:
            self._expect(TokenKind.SEMI)
        return PerformNode(target, members, start.location)

    def _parse_anonymous_connect(self) -> ConnectNode:
        start = self._expect_keyword("connect")
        source = self._parse_feature_chain()
        self._expect_keyword("to")
        target = self._parse_feature_chain()
        self._expect(TokenKind.SEMI)
        return ConnectNode("connection", None, None, source, target,
                           start.location)

    def _parse_end(self) -> EndNode:
        start = self._expect_keyword("end")
        name = self._expect_name()
        type_ref = None
        if self._match(TokenKind.COLON):
            type_ref = self._parse_type_ref()
        self._expect(TokenKind.SEMI)
        return EndNode(name, type_ref, start.location)

    def _parse_shorthand_redefinition(self) -> UsageNode:
        """``:>> name = value;`` — redefinition with a bound value."""
        start = self._expect(TokenKind.REDEFINES)
        redefined = self._parse_qualified_name()
        node = UsageNode(kind="redefinition", redefines=[redefined],
                         location=start.location)
        if self._match(TokenKind.COLON):
            node.type = self._parse_type_ref()
        if self._match(TokenKind.EQUALS):
            node.value = self._parse_expr()
        if self._check(TokenKind.LBRACE):
            node.members = self._parse_body()
        else:
            self._expect(TokenKind.SEMI)
        return node

    # -- prefixed definitions / usages / assignments ------------------------

    def _parse_prefixed_member(self) -> MemberNode:
        start = self._peek()
        is_abstract = False
        is_ref = False
        direction: str | None = None
        while True:
            if self._check_keyword("abstract"):
                self._advance()
                is_abstract = True
                continue
            if self._check_keyword("ref"):
                self._advance()
                is_ref = True
                continue
            if self._check_keyword(*_DIRECTIONS) and direction is None:
                # A direction keyword starts either a parameter/usage
                # declaration or an assignment ``out x = chain;``.
                next_token = self._peek(1)
                if (next_token.kind is TokenKind.IDENT
                        and next_token.value not in _USAGE_KINDS
                        and self._peek(2).kind is TokenKind.EQUALS):
                    return self._parse_assignment()
                direction = self._advance().value
                continue
            break

        token = self._peek()
        if self._check_keyword(*_USAGE_KINDS):
            # With a direction prefix, a kind word directly followed by
            # ':'/'='/';' is actually a *parameter name* that collides
            # with a keyword, e.g. ``in item : String;``.
            next_kind = self._peek(1).kind
            if direction is not None and next_kind in (
                    TokenKind.COLON, TokenKind.EQUALS, TokenKind.SEMI):
                return self._parse_usage("attribute", is_abstract, is_ref,
                                         direction, start)
            kind = self._advance().value
            if self._check_keyword("def"):
                self._advance()
                return self._parse_definition(kind, is_abstract, start)
            if kind in ("connection", "interface"):
                connect = self._try_parse_connect_usage(kind, start)
                if connect is not None:
                    return connect
            return self._parse_usage(kind, is_abstract, is_ref, direction, start)
        if direction is not None and self._check_name():
            # ``out ready : Boolean;`` — a bare parameter declaration
            # (the name may be a quoted unrestricted name).
            return self._parse_usage("attribute", is_abstract, is_ref,
                                     direction, start)
        raise ParseError(
            f"unexpected token {token.value!r} at start of member",
            token.location)

    def _parse_assignment(self) -> AssignmentNode:
        direction = self._advance().value
        name = self._expect_name()
        self._expect(TokenKind.EQUALS)
        value = self._parse_expr()
        self._expect(TokenKind.SEMI)
        return AssignmentNode(direction, name, value)

    def _parse_definition(self, kind: str, is_abstract: bool,
                          start: Token) -> DefinitionNode:
        name = self._expect_name()
        specializes: list[QualifiedName] = []
        if self._match(TokenKind.SPECIALIZES) or self._check_keyword("specializes"):
            if self._check_keyword("specializes"):
                self._advance()
            specializes.append(self._parse_qualified_name())
            while self._match(TokenKind.COMMA):
                specializes.append(self._parse_qualified_name())
        members: list[MemberNode] = []
        if self._check(TokenKind.LBRACE):
            members = self._parse_body()
        else:
            self._expect(TokenKind.SEMI)
        doc = _extract_doc(members)
        return DefinitionNode(kind=kind, name=name, is_abstract=is_abstract,
                              specializes=specializes, members=members,
                              doc=doc, location=start.location)

    def _try_parse_connect_usage(self, kind: str, start: Token) -> ConnectNode | None:
        """Parse ``connection|interface [name] [: Type] connect a to b;``.

        Returns None when the member is actually a plain usage (e.g. an
        interface usage without a connect part), rewinding the stream.
        """
        checkpoint = self._mark()
        name: str | None = None
        type_ref: TypeRef | None = None
        if self._check_name() and not self._check_keyword("connect"):
            name = self._advance().value
        if self._match(TokenKind.COLON):
            if not self._check_name():
                self._rewind(checkpoint)
                return None
            type_ref = self._parse_type_ref()
        if not self._check_keyword("connect"):
            self._rewind(checkpoint)
            return None
        self._commit()
        self._advance()
        source = self._parse_feature_chain()
        self._expect_keyword("to")
        target = self._parse_feature_chain()
        self._expect(TokenKind.SEMI)
        return ConnectNode(kind, name, type_ref, source, target, start.location)

    def _parse_usage(self, kind: str, is_abstract: bool, is_ref: bool,
                     direction: str | None, start: Token) -> UsageNode:
        node = UsageNode(kind=kind, is_abstract=is_abstract, is_ref=is_ref,
                         direction=direction, location=start.location)
        if self._check_name() and not self._check_keyword("def"):
            node.name = self._advance().value
        # header clauses in any order: [mult] : type :> spec :>> redef
        while True:
            if self._check(TokenKind.LBRACKET):
                node.multiplicity = self._parse_multiplicity()
                continue
            if self._check(TokenKind.COLON):
                self._advance()
                node.type = self._parse_type_ref()
                continue
            if self._check(TokenKind.SPECIALIZES):
                self._advance()
                node.specializes.append(self._parse_qualified_name())
                while self._match(TokenKind.COMMA):
                    node.specializes.append(self._parse_qualified_name())
                continue
            if self._check_keyword("specializes"):
                self._advance()
                node.specializes.append(self._parse_qualified_name())
                continue
            if self._check(TokenKind.REDEFINES):
                self._advance()
                node.redefines.append(self._parse_qualified_name())
                continue
            if self._check_keyword("redefines"):
                self._advance()
                node.redefines.append(self._parse_qualified_name())
                continue
            break
        if self._match(TokenKind.EQUALS):
            node.value = self._parse_expr()
        if self._check(TokenKind.LBRACE):
            node.members = self._parse_body()
            node.doc = _extract_doc(node.members)
        else:
            self._expect(TokenKind.SEMI)
        return node

    # -- small grammar pieces ------------------------------------------------

    def _parse_body(self) -> list[MemberNode]:
        self._expect(TokenKind.LBRACE)
        members: list[MemberNode] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated body: missing '}'",
                                 self._peek().location)
            members.append(self._parse_member())
        self._expect(TokenKind.RBRACE)
        return members

    def _parse_multiplicity(self) -> Multiplicity:
        self._expect(TokenKind.LBRACKET)
        if self._match(TokenKind.STAR):
            self._expect(TokenKind.RBRACKET)
            return Multiplicity(lower=0, upper=None)
        lower_token = self._expect(TokenKind.INTEGER)
        lower = int(lower_token.value)
        upper: int | None = lower
        if self._match(TokenKind.DOT):
            self._expect(TokenKind.DOT)
            if self._match(TokenKind.STAR):
                upper = None
            else:
                upper = int(self._expect(TokenKind.INTEGER).value)
        self._expect(TokenKind.RBRACKET)
        return Multiplicity(lower=lower, upper=upper)

    def _parse_type_ref(self) -> TypeRef:
        conjugated = bool(self._match(TokenKind.TILDE))
        name = self._parse_qualified_name()
        # postfix conjugation (``Port~``) is also legal in SysML v2
        if self._match(TokenKind.TILDE):
            conjugated = True
        return TypeRef(name=name, conjugated=conjugated)

    def _parse_qualified_name(self) -> QualifiedName:
        location = self._peek().location
        parts = [self._expect_name()]
        while self._match(TokenKind.DOUBLE_COLON):
            parts.append(self._expect_name())
        return QualifiedName(parts, location)

    def _parse_feature_chain(self) -> FeatureChain:
        location = self._peek().location
        parts = [self._expect_name()]
        while True:
            if self._match(TokenKind.DOT):
                parts.append(self._expect_name())
                continue
            if self._match(TokenKind.DOUBLE_COLON):
                parts.append(self._expect_name())
                continue
            break
        return FeatureChain(parts, location)

    def _parse_expr(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            number = self._peek()
            if number.kind is TokenKind.INTEGER:
                self._advance()
                return Literal(-int(number.value), token.location)
            if number.kind is TokenKind.REAL:
                self._advance()
                return Literal(-float(number.value), token.location)
            raise ParseError(
                f"expected numeric literal after '-', found {number.value!r}",
                number.location)
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.value, token.location)
        if token.kind is TokenKind.INTEGER:
            self._advance()
            return Literal(int(token.value), token.location)
        if token.kind is TokenKind.REAL:
            self._advance()
            return Literal(float(token.value), token.location)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True, token.location)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False, token.location)
        if token.kind is TokenKind.IDENT:
            return FeatureRefExpr(self._parse_feature_chain())
        raise ParseError(f"expected expression, found {token.value!r}",
                         token.location)


def _extract_doc(members: list[MemberNode]) -> str:
    for member in members:
        if isinstance(member, DocNode):
            return member.text
    return ""


def parse(text: str, filename: str = "<model>") -> ModelNode:
    """Parse SysML v2 textual notation into an AST."""
    from ..obs import span
    with span("parse", file=filename) as s:
        parser = Parser(text, filename)
        tree = parser.parse_model()
        if s.enabled:
            s.set("tokens", parser.token_count)
            s.set("bytes", len(text))
            s.set("members", len(tree.members))
    return tree
