"""Model file I/O: ``.sysml`` textual notation and ``.json`` interchange.

Convenience layer over the parser/printer/interchange modules so tools
(and the CLI ``convert`` command) can move models between the two
on-disk representations.
"""

from __future__ import annotations

from pathlib import Path

from .elements import Model
from .errors import SysMLError
from .interchange import model_from_json, model_to_json
from .printer import print_model
from .resolver import load_model

TEXT_SUFFIXES = (".sysml", ".kerml", ".txt")
JSON_SUFFIXES = (".json",)


def load_model_file(path: str | Path, *, include_stdlib: bool = True,
                    cache=None) -> Model:
    """Load a model from a ``.sysml`` or ``.json`` file (by suffix).

    *cache* (an :class:`~repro.cache.ArtifactCache`) reuses the parse
    tree across runs when the file content is unchanged.
    """
    path = Path(path)
    text = path.read_text()
    suffix = path.suffix.lower()
    if suffix in JSON_SUFFIXES:
        return model_from_json(text)
    if suffix in TEXT_SUFFIXES or not suffix:
        return load_model(text, filenames=[str(path)],
                          include_stdlib=include_stdlib, cache=cache)
    raise SysMLError(
        f"unknown model file suffix {suffix!r} "
        f"(expected one of {TEXT_SUFFIXES + JSON_SUFFIXES})")


def load_model_files(*paths: str | Path, include_stdlib: bool = True,
                     cache=None, jobs: int = 1,
                     parse_mode: str = "thread") -> Model:
    """Load several ``.sysml`` sources into one model.

    *cache*/*jobs*/*parse_mode* pass through to
    :func:`~repro.sysml.resolver.load_model`: per-file parse trees are
    cached on content, and cache misses parse on a worker pool.
    """
    texts: list[str] = []
    names: list[str] = []
    for path in paths:
        path = Path(path)
        if path.suffix.lower() in JSON_SUFFIXES:
            raise SysMLError(
                "load_model_files only combines textual sources; "
                f"got {path}")
        texts.append(path.read_text())
        names.append(str(path))
    return load_model(*texts, filenames=names,
                      include_stdlib=include_stdlib, cache=cache,
                      jobs=jobs, parse_mode=parse_mode)


def save_model_file(model: Model, path: str | Path,
                    *, include_library: bool = False) -> Path:
    """Write a model as ``.sysml`` text or ``.json`` (by suffix)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in JSON_SUFFIXES:
        path.write_text(model_to_json(model) + "\n")
        return path
    if suffix in TEXT_SUFFIXES or not suffix:
        if include_library:
            path.write_text(print_model(model))
        else:
            from .printer import print_element
            parts = [print_element(e) for e in model.owned_elements
                     if not getattr(e, "is_library", False)]
            path.write_text("".join(parts))
        return path
    raise SysMLError(f"unknown model file suffix {suffix!r}")


def convert_model_file(source: str | Path, destination: str | Path) -> Path:
    """Convert between textual notation and JSON interchange."""
    model = load_model_file(source)
    return save_model_file(model, destination)
