"""Model-vs-deployment conformance verification.

The paper's conclusion claims the methodology "ensur[es] consistency
between the SysML model and the actual implementation". This module
makes that property checkable at runtime: given a deployed factory, it
walks the model topology and verifies that every modeled element is
actually realized — and that nothing is deployed that the model does
not prescribe.

Checks
------
``variable-node``       every machine variable has a UA node on its
                        workcell server, with the modeled data type;
``method-node``         every machine service has a UA method with the
                        modeled arity;
``service-responder``   every service topic has a live broker responder;
``data-flow``           every variable series reaches the store once the
                        plant produced data;
``orphan-node``         the servers expose no variables the model does
                        not declare (drift in the other direction);
``pod-per-component``   every generated manifest's deployment is
                        running.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..opcua import AddressSpaceError, MethodNode, VariableNode
from .run import EndToEndResult


@dataclass
class Finding:
    check: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.message}"


@dataclass
class ConformanceReport:
    findings: list[Finding] = field(default_factory=list)
    checked_variables: int = 0
    checked_methods: int = 0
    checked_services: int = 0
    checked_pods: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, check: str, subject: str, message: str) -> None:
        self.findings.append(Finding(check, subject, message))

    def render(self) -> str:
        header = (f"conformance: {self.checked_variables} variables, "
                  f"{self.checked_methods} methods, "
                  f"{self.checked_services} service topics, "
                  f"{self.checked_pods} pods checked")
        if self.ok:
            return header + " — model and deployment are consistent"
        return header + "\n" + "\n".join(str(f) for f in self.findings)


def verify_conformance(result: EndToEndResult,
                       *, require_data: bool = True) -> ConformanceReport:
    """Check the deployed factory against its model topology."""
    report = ConformanceReport()
    _check_address_spaces(result, report)
    _check_service_responders(result, report)
    if require_data:
        _check_data_flow(result, report)
    _check_pods(result, report)
    return report


def _workcell_server(result: EndToEndResult, workcell: str):
    from ..codegen.machine_config import workcell_endpoint
    try:
        return result.world.network.lookup(workcell_endpoint(workcell))
    except ConnectionError:
        return None


def _check_address_spaces(result: EndToEndResult,
                          report: ConformanceReport) -> None:
    for machine in result.topology.machines:
        server = _workcell_server(result, machine.workcell)
        if server is None:
            report.add("variable-node", machine.workcell,
                       "no OPC UA server listening for this workcell")
            continue
        modeled_variables = {v.name: v for v in machine.variables}
        for name, variable in modeled_variables.items():
            report.checked_variables += 1
            try:
                node = server.space.browse_path(
                    f"{machine.name}/data/{name}")
            except AddressSpaceError:
                report.add("variable-node", f"{machine.name}.{name}",
                           "modeled variable has no UA node")
                continue
            if not isinstance(node, VariableNode):
                report.add("variable-node", f"{machine.name}.{name}",
                           "UA node is not a variable")
            elif node.data_type != variable.data_type:
                report.add("variable-node", f"{machine.name}.{name}",
                           f"data type drift: model {variable.data_type}, "
                           f"deployed {node.data_type}")
        for service in machine.services:
            report.checked_methods += 1
            try:
                node = server.space.browse_path(
                    f"{machine.name}/services/{service.name}")
            except AddressSpaceError:
                report.add("method-node",
                           f"{machine.name}.{service.name}",
                           "modeled service has no UA method")
                continue
            if not isinstance(node, MethodNode):
                report.add("method-node",
                           f"{machine.name}.{service.name}",
                           "UA node is not a method")
            elif len(node.input_arguments) != len(service.inputs):
                report.add("method-node",
                           f"{machine.name}.{service.name}",
                           f"arity drift: model {len(service.inputs)} "
                           f"inputs, deployed {len(node.input_arguments)}")
        # drift in the other direction: deployed-but-unmodeled variables
        try:
            data_folder = server.space.browse_path(f"{machine.name}/data")
        except AddressSpaceError:
            continue
        for node in data_folder.children:
            if node.browse_name.name not in modeled_variables:
                report.add("orphan-node",
                           f"{machine.name}.{node.browse_name.name}",
                           "deployed variable is not in the model")


def _check_service_responders(result: EndToEndResult,
                              report: ConformanceReport) -> None:
    for service in result.registry:
        report.checked_services += 1
        responders = result.world.broker.matching_subscriptions(
            service.topic)
        if responders == 0:
            report.add("service-responder", service.qualified_name,
                       f"no responder on topic {service.topic}")


def _check_data_flow(result: EndToEndResult,
                     report: ConformanceReport) -> None:
    for machine in result.topology.machines:
        series = result.world.store.series(
            "machine_data", tags={"machine": machine.name})
        stored_variables = {s.tags.get("variable") for s in series}
        for variable in machine.variables:
            if variable.name not in stored_variables:
                report.add("data-flow",
                           f"{machine.name}.{variable.name}",
                           "no samples reached the store")


def _check_pods(result: EndToEndResult, report: ConformanceReport) -> None:
    from ..yamlgen import parse_documents
    for filename, text in result.generation.manifests.items():
        for document in parse_documents(text):
            if document.get("kind") != "Deployment":
                continue
            name = document["metadata"]["name"]
            namespace = document["metadata"].get("namespace", "default")
            report.checked_pods += 1
            pods = result.cluster.pods_for(name, namespace)
            running = [p for p in pods if p.phase == "Running"]
            if len(running) < document["spec"].get("replicas", 1):
                report.add("pod-per-component", name,
                           f"{len(running)} running pod(s), expected "
                           f"{document['spec'].get('replicas', 1)}")
