"""End-to-end methodology (Figure 1) and Table I reporting."""

from .report import Table1Report, Table1Row, build_table1_report
from .run import (EndToEndResult, SmokeReport, run_factory, smoke_test)
from .verify import ConformanceReport, Finding, verify_conformance

__all__ = ["ConformanceReport", "EndToEndResult", "Finding", "SmokeReport",
           "Table1Report", "Table1Row", "build_table1_report",
           "run_factory", "smoke_test", "verify_conformance"]
