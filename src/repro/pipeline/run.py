"""The end-to-end methodology of Figure 1.

``model -> automatic toolchain -> configured smart factory``:

1. generate the SysML v2 model from the machine catalog and load it
   through the full front end;
2. run the two-step configuration generation;
3. stand up the plant floor (machine simulators + their networks) and a
   simulated Kubernetes cluster;
4. deploy the generated manifests; every pod starts its real simulated
   software component;
5. smoke-test the running factory: machine data must flow end-to-end
   into the database, and every machine's services must be invocable
   through the broker (the SOM property).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen import (DEFAULT_CLIENT_CAPACITY, GenerationResult,
                       PipelineOptions, generate_configuration, topic_root)
from ..isa95.levels import FactoryTopology
from ..k8s import Cluster, deploy_manifests, make_component_factory
from ..machines.catalog import MachineSpec
from ..som import (FactoryWorld, OrchestrationError, Orchestrator,
                   ServiceLookupError, ServiceRegistry)
from ..sysml.elements import Model


@dataclass
class SmokeReport:
    """What the post-deployment functional check observed."""

    pods_running: int = 0
    pods_failed: int = 0
    pods_pending: int = 0
    variables_total: int = 0
    variables_flowing: int = 0
    machines_with_data: int = 0
    machines_total: int = 0
    services_invoked: int = 0
    services_failed: int = 0
    data_points_stored: int = 0

    @property
    def all_ok(self) -> bool:
        return (self.pods_failed == 0 and self.pods_pending == 0
                and self.services_failed == 0
                and self.machines_with_data == self.machines_total
                and self.variables_flowing > 0)


@dataclass
class EndToEndResult:
    model: Model
    generation: GenerationResult
    world: FactoryWorld
    cluster: Cluster
    registry: ServiceRegistry
    orchestrator: Orchestrator
    smoke: SmokeReport = field(default_factory=SmokeReport)

    @property
    def topology(self) -> FactoryTopology:
        return self.generation.topology

    def shutdown(self) -> None:
        self.cluster.shutdown()
        self.world.driver_factory.shutdown()


def run_factory(specs: list[MachineSpec], *,
                capacity: int = DEFAULT_CLIENT_CAPACITY,
                namespace: str = "factory",
                smoke_steps: int = 5,
                cluster_nodes: int = 3,
                seed: int = 0) -> EndToEndResult:
    """Run the whole Figure-1 flow for a list of machine specs."""
    from ..icelab.model_gen import load_icelab_model

    model = load_icelab_model(specs)
    generation = generate_configuration(
        model, options=PipelineOptions(capacity=capacity,
                                       namespace=namespace))
    world = FactoryWorld.for_specs(specs, seed=seed)
    cluster = Cluster(nodes=cluster_nodes,
                      component_factory=make_component_factory(world))
    deploy_manifests(cluster, generation.manifests)
    registry = ServiceRegistry.from_topology(
        generation.topology, topic_root(generation.topology))
    orchestrator = Orchestrator(registry, world.broker)
    result = EndToEndResult(model=model, generation=generation, world=world,
                            cluster=cluster, registry=registry,
                            orchestrator=orchestrator)
    result.smoke = smoke_test(result, steps=smoke_steps)
    return result


def smoke_test(result: EndToEndResult, *, steps: int = 5) -> SmokeReport:
    """Exercise the deployed factory and report what worked."""
    report = SmokeReport()
    stats = result.cluster.stats()
    report.pods_running = stats["pods_running"]
    report.pods_failed = stats["pods_failed"]
    report.pods_pending = stats["pods_pending"]

    topology = result.topology
    report.machines_total = len(topology.machines)
    report.variables_total = sum(len(m.variables)
                                 for m in topology.machines)

    # 1. let the plant run: every step perturbs machine variables, which
    #    must propagate driver -> workcell server -> bridge -> broker ->
    #    historian -> time-series store.
    for _ in range(steps):
        result.world.step()

    flowing = result.world.store.series("machine_data")
    report.variables_flowing = len(flowing)
    report.data_points_stored = result.world.store.stats()["points"]
    machines_seen = {series.tags.get("machine") for series in flowing}
    report.machines_with_data = sum(
        1 for machine in topology.machines if machine.name in machines_seen)

    # 2. invoke one service per machine through the broker (SOM check).
    for machine in topology.machines:
        if not machine.services:
            continue
        service = machine.services[0]
        args = [_default_argument(a.data_type) for a in service.inputs]
        try:
            result.orchestrator.invoke(machine.name, service.name, *args)
            report.services_invoked += 1
        except (OrchestrationError, ServiceLookupError):
            # a failing service is a smoke *finding*, not a crash; any
            # other exception is a harness bug and must propagate
            report.services_failed += 1
    return report


def _default_argument(data_type: str):
    return {"Boolean": False, "Integer": 0, "Natural": 0,
            "Real": 0.0, "Double": 0.0}.get(data_type, "smoke")
