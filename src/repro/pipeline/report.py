"""Table I reporting: model features + generation results.

Reproduces both halves of Table I: the per-machine SysML v2 element
counts (part definitions/instances, attribute instances, port
instances, machine variables, machine services) measured on the loaded
model, and the generation summary row (time, #servers, #clients,
config size).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen import GenerationResult
from ..isa95.levels import FactoryTopology
from ..sysml.elements import Model, PartUsage
from ..sysml.queries import count_definition_closure, instance_counts


@dataclass
class Table1Row:
    workcell: str
    machine: str
    driver: str
    part_definitions: int
    part_instances: int
    attribute_instances: int
    port_instances: int
    machine_variables: int
    machine_services: int


@dataclass
class Table1Report:
    rows: list[Table1Row]
    generation_time_s: float
    opcua_servers: int
    opcua_clients: int
    config_size_kb: float

    def row(self, machine: str) -> Table1Row:
        for row in self.rows:
            if row.machine == machine:
                return row
        raise KeyError(f"no Table-1 row for machine {machine!r}")

    def render(self) -> str:
        header = (f"{'WC':<12} {'Machine':<12} {'Driver':<12} "
                  f"{'PDef':>5} {'PInst':>6} {'AttrI':>6} {'PortI':>6} "
                  f"{'Vars':>5} {'Svcs':>5}")
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.workcell:<12} {row.machine:<12} {row.driver:<12} "
                f"{row.part_definitions:>5} {row.part_instances:>6} "
                f"{row.attribute_instances:>6} {row.port_instances:>6} "
                f"{row.machine_variables:>5} {row.machine_services:>5}")
        lines.append("-" * len(header))
        lines.append(
            f"Generation time: {self.generation_time_s:.2f} s | "
            f"OPC UA servers: {self.opcua_servers} | "
            f"OPC UA clients: {self.opcua_clients} | "
            f"Config size: {self.config_size_kb:.0f} KB")
        return "\n".join(lines)


def _find_top_level_part(model: Model, name: str) -> PartUsage | None:
    for member in model.owned_elements:
        if isinstance(member, PartUsage) and member.name == name:
            return member
    return None


def _find_machine_usage(model: Model, machine_name: str) -> PartUsage | None:
    for element in model.all_elements():
        if isinstance(element, PartUsage) and element.name == machine_name:
            return element
    return None


def build_table1_report(model: Model, topology: FactoryTopology,
                        generation: GenerationResult) -> Table1Report:
    """Measure every Table I quantity on the loaded model."""
    rows: list[Table1Row] = []
    for machine in topology.machines:
        machine_usage = _find_machine_usage(model, machine.name)
        driver_usage = (
            _find_top_level_part(model, machine.driver.name)
            if machine.driver else None)
        part_definitions = part_instances = attributes = ports = 0
        if machine_usage is not None:
            part_definitions += count_definition_closure(machine_usage)
            counts = instance_counts(machine_usage)
            part_instances += counts.part_instances
            attributes += counts.attribute_instances
            ports += counts.port_instances
        if driver_usage is not None:
            counts = instance_counts(driver_usage)
            part_instances += counts.part_instances
            attributes += counts.attribute_instances
            ports += counts.port_instances
        rows.append(Table1Row(
            workcell=machine.workcell,
            machine=machine.name,
            driver=machine.driver.protocol if machine.driver else "",
            part_definitions=part_definitions,
            part_instances=part_instances,
            attribute_instances=attributes,
            port_instances=ports,
            machine_variables=len(machine.variables),
            machine_services=len(machine.services),
        ))
    return Table1Report(
        rows=rows,
        generation_time_s=generation.generation_seconds,
        opcua_servers=generation.opcua_server_count,
        opcua_clients=generation.opcua_client_count,
        config_size_kb=generation.config_size_kb,
    )
