"""Extraction of the ISA-95 topology from a SysML v2 model.

This is the first half of the paper's generation tool: "The tool
explores the represented ISA-95 topology of the manufacturing system".
The extractor elaborates the instantiated factory model and classifies
instances against the ISA95 base library definitions, producing the
neutral :class:`~repro.isa95.levels.FactoryTopology` records.
"""

from __future__ import annotations

from ..obs import span as _span
from ..sysml.elements import Model, Package, PartUsage, Usage
from ..sysml.errors import SysMLError
from ..sysml.instances import InstanceNode, elaborate, propagate_bindings
from .levels import (ArgumentSpec, DriverInfo, FactoryTopology, MachineInfo,
                     ServiceSpec, VariableSpec, WorkcellInfo)
from .library import (QN_AREA, QN_DRIVER, QN_DRIVER_METHODS,
                      QN_DRIVER_PARAMETERS, QN_DRIVER_VARIABLES,
                      QN_ENTERPRISE, QN_GENERIC_DRIVER, QN_MACHINE,
                      QN_MACHINE_DATA, QN_MACHINE_SERVICES,
                      QN_PRODUCTION_LINE, QN_SITE, QN_TOPOLOGY, QN_WORKCELL)


class TopologyError(SysMLError):
    """Raised when the model does not contain a usable ISA-95 topology."""


class TopologyExtractor:
    """Extracts a :class:`FactoryTopology` from a resolved model."""

    def __init__(self, model: Model):
        self.model = model
        #: machine instance name -> resolved driver type (for matching the
        #: driver instance by type object, since different machine
        #: libraries may reuse a driver definition *name* like OPCUADriver)
        self._stub_type_by_machine: dict[str, object] = {}
        self._defs = {}
        for qn in (QN_TOPOLOGY, QN_ENTERPRISE, QN_SITE, QN_AREA,
                   QN_PRODUCTION_LINE, QN_WORKCELL, QN_MACHINE,
                   QN_MACHINE_DATA, QN_MACHINE_SERVICES, QN_DRIVER,
                   QN_GENERIC_DRIVER, QN_DRIVER_PARAMETERS,
                   QN_DRIVER_VARIABLES, QN_DRIVER_METHODS):
            definition = model.find(qn)
            if definition is None:
                raise TopologyError(
                    f"model does not include the ISA95 base library "
                    f"(missing {qn})")
            self._defs[qn] = definition

    # -- public API ----------------------------------------------------------

    def extract(self) -> FactoryTopology:
        with _span("topology") as s:
            root_usage = self._find_topology_root()
            with _span("elaborate"):
                root = elaborate(root_usage)
                propagate_bindings(root)
            topology = FactoryTopology()
            with _span("walk"):
                self._walk_hierarchy(root, topology, context={})
            if not topology.workcells:
                raise TopologyError(
                    f"topology '{root_usage.qualified_name}' contains no "
                    f"workcells")
            with _span("drivers"):
                self._attach_drivers(topology)
            if s.enabled:
                s.set("workcells", len(topology.workcells))
                s.set("machines", len(topology.machines))
                s.set("variables", sum(len(m.variables)
                                       for m in topology.machines))
        return topology

    # -- root discovery ----------------------------------------------------------

    def _top_level_parts(self) -> list[PartUsage]:
        scopes = [self.model] + [p for p in self.model.owned_elements
                                 if isinstance(p, Package)]
        parts: list[PartUsage] = []
        for scope in scopes:
            for member in scope.owned_elements:
                if isinstance(member, PartUsage):
                    parts.append(member)
        return parts

    def _find_topology_root(self) -> PartUsage:
        topology_def = self._defs[QN_TOPOLOGY]
        roots = [p for p in self._top_level_parts()
                 if self._conforms(p, topology_def)]
        if not roots:
            raise TopologyError(
                "no top-level part usage is typed by ISA95::Topology")
        if len(roots) > 1:
            names = ", ".join(r.qualified_name for r in roots)
            raise TopologyError(
                f"multiple topology roots found: {names}")
        return roots[0]

    def _conforms(self, usage: Usage, definition) -> bool:
        typ = usage.effective_type()
        return typ is not None and typ.conforms_to(definition)

    def _node_conforms(self, node: InstanceNode, qn: str) -> bool:
        if node.usage is None:
            return False
        return self._conforms(node.usage, self._defs[qn])

    # -- hierarchy walk ---------------------------------------------------------------

    def _walk_hierarchy(self, node: InstanceNode,
                        topology: FactoryTopology, context: dict) -> None:
        for child in node.children:
            if child.kind != "part" or child.usage is None:
                continue
            if self._node_conforms(child, QN_MACHINE) and not child.is_reference:
                workcell_name = context.get("workcell")
                if workcell_name is None:
                    raise TopologyError(
                        f"machine '{child.path}' is not inside a workcell")
                machine = self._extract_machine(child, workcell_name)
                topology.workcell(workcell_name).machines.append(machine)
                continue
            new_context = dict(context)
            if self._node_conforms(child, QN_ENTERPRISE):
                topology.enterprise = child.name
            elif self._node_conforms(child, QN_SITE):
                topology.site = child.name
            elif self._node_conforms(child, QN_AREA):
                topology.area = child.name
            elif self._node_conforms(child, QN_PRODUCTION_LINE):
                topology.production_lines.append(child.name)
                new_context["production_line"] = child.name
            elif self._node_conforms(child, QN_WORKCELL):
                workcell = WorkcellInfo(
                    name=child.name,
                    production_line=context.get("production_line", ""))
                topology.workcells.append(workcell)
                new_context["workcell"] = child.name
            self._walk_hierarchy(child, topology, new_context)

    # -- machine extraction ----------------------------------------------------------

    def _extract_machine(self, node: InstanceNode,
                         workcell: str) -> MachineInfo:
        type_name = ""
        if node.usage is not None:
            typ = node.usage.effective_type()
            if typ is not None and typ.name:
                type_name = typ.name
        machine = MachineInfo(name=node.name, type_name=type_name,
                              workcell=workcell)
        if node.usage is not None:
            from ..sysml.depgraph import node_path
            machine.node_path = node_path(node.usage)
        for child in node.children:
            if self._node_conforms(child, QN_MACHINE_DATA):
                machine.variables.extend(self._extract_variables(child))
            elif self._node_conforms(child, QN_MACHINE_SERVICES):
                machine.services.extend(self._extract_services(child))
        machine.driver = self._machine_driver_stub(node)
        return machine

    # -- incremental re-extraction ------------------------------------------

    def extract_machine_at(self, usage: PartUsage,
                           workcell: str) -> MachineInfo:
        """Re-extract one machine from its part usage, standalone.

        Elaborates just this usage (the same standalone elaboration
        :meth:`_extract_driver` has always used) and resolves its driver
        against the current top-level parts — the incremental engine's
        per-machine path. Byte-equivalence with a full extraction is
        enforced by the ``incremental-vs-cold`` conformance oracle.
        """
        node = elaborate(usage)
        propagate_bindings(node)
        machine = self._extract_machine(node, workcell)
        self.attach_drivers_to(machine)
        return machine

    def attach_drivers_to(self, *machines: MachineInfo) -> None:
        """Resolve driver stubs for the given machines (see
        :meth:`_attach_drivers`)."""
        driver_usages = [p for p in self._top_level_parts()
                         if self._conforms(p, self._defs[QN_DRIVER])]
        by_name = {p.name: p for p in driver_usages}
        by_type_obj: dict[int, PartUsage] = {}
        for part in driver_usages:
            typ = part.effective_type()
            if typ is not None:
                by_type_obj.setdefault(id(typ), part)
        for machine in machines:
            stub = machine.driver
            if stub is None:
                continue
            usage = by_name.get(stub.name)
            if usage is None:
                stub_type = self._stub_type_by_machine.get(machine.name)
                if stub_type is not None:
                    usage = by_type_obj.get(id(stub_type))
            if usage is None:
                continue  # reference only; leave the stub as-is
            machine.driver = self._extract_driver(usage)

    def _extract_variables(self, data_node: InstanceNode,
                           category: str = "") -> list[VariableSpec]:
        variables: list[VariableSpec] = []
        for child in data_node.children:
            if child.kind == "attribute":
                variables.append(VariableSpec(
                    name=child.name,
                    data_type=_scalar_name(child.type_name),
                    category=category,
                    initial_value=child.value,
                ))
            elif child.kind == "part":
                nested_category = (f"{category}/{child.name}" if category
                                   else child.name)
                variables.extend(
                    self._extract_variables(child, nested_category))
            # ports carry the same data points; the bound attributes are
            # the canonical variable list, so ports are not re-counted
        return variables

    def _extract_services(self, services_node: InstanceNode,
                          prefix: str = "") -> list[ServiceSpec]:
        services: list[ServiceSpec] = []
        for child in services_node.children:
            if child.kind == "action":
                service = ServiceSpec(name=(f"{prefix}{child.name}"))
                for param in child.children:
                    if param.kind != "attribute":
                        continue
                    argument = ArgumentSpec(
                        param.name, _scalar_name(param.type_name))
                    if param.direction == "in":
                        service.inputs.append(argument)
                    else:
                        service.outputs.append(argument)
                services.append(service)
            elif child.kind == "part":
                services.extend(self._extract_services(
                    child, prefix=f"{prefix}{child.name}."))
        return services

    def _machine_driver_stub(self, node: InstanceNode) -> DriverInfo | None:
        """Record which driver the machine references (resolved later).

        A machine inherits the abstract ``ref part driver : Driver`` from
        ISA95::Machine; a concrete reference (typed by a specialized
        driver, or an untyped named ref as in the paper's Code 4) always
        wins over that placeholder.
        """
        from ..sysml.ast_nodes import FeatureRefExpr

        driver_def = self._defs[QN_DRIVER]
        fallback: DriverInfo | None = None
        for child in node.children:
            if not child.is_reference or child.usage is None:
                continue
            if isinstance(child.usage.value, FeatureRefExpr):
                # 'ref part d : T = actualDriverInstance;' — the value
                # names the concrete instance
                target = child.usage.value.chain.parts[0]
                return DriverInfo(name=target, protocol="")
            typ = child.usage.effective_type()
            if typ is None:
                # untyped 'ref part emcoDriver;' — match by name later
                return DriverInfo(name=child.name, protocol="")
            if not typ.conforms_to(driver_def):
                continue
            info = DriverInfo(name=child.name, protocol=typ.name or "",
                              is_generic=typ.conforms_to(
                                  self._defs[QN_GENERIC_DRIVER]))
            if typ is driver_def:
                fallback = fallback or info  # the inherited placeholder
            else:
                self._stub_type_by_machine[node.name] = typ
                return info
        return fallback

    # -- driver instance resolution -----------------------------------------------------

    def _attach_drivers(self, topology: FactoryTopology) -> None:
        self.attach_drivers_to(*topology.machines)

    def _extract_driver(self, usage: PartUsage) -> DriverInfo:
        from ..sysml.depgraph import node_path
        typ = usage.effective_type()
        info = DriverInfo(
            name=usage.name or "",
            protocol=typ.name if typ is not None and typ.name else "",
            is_generic=(typ is not None and
                        typ.conforms_to(self._defs[QN_GENERIC_DRIVER])),
            node_path=node_path(usage))
        tree = elaborate(usage)
        propagate_bindings(tree)
        for child in tree.children:
            if child.usage is None:
                continue
            if self._conforms(child.usage, self._defs[QN_DRIVER_PARAMETERS]):
                for attribute in child.children:
                    if attribute.kind == "attribute":
                        info.parameters[attribute.name] = attribute.value
            elif self._conforms(child.usage, self._defs[QN_DRIVER_VARIABLES]):
                info.variable_count += _count_points(child, "port")
            elif self._conforms(child.usage, self._defs[QN_DRIVER_METHODS]):
                info.method_count += _count_points(child, "port") or \
                    _count_points(child, "action")
        return info


def _count_points(node: InstanceNode, kind: str) -> int:
    """Count direct data points of *kind*, not recursing into ports."""
    count = 0
    for child in node.walk():
        if child is node:
            continue
        if child.kind == kind and _no_port_ancestor(child, node):
            count += 1
    return count


def _no_port_ancestor(node: InstanceNode, stop: InstanceNode) -> bool:
    current = node.owner
    while current is not None and current is not stop:
        if current.kind == "port":
            return False
        current = current.owner
    return True


def _scalar_name(type_name: str) -> str:
    """'ScalarValues::Real' -> 'Real'."""
    return type_name.rsplit("::", 1)[-1] if type_name else "Real"


def extract_topology(model: Model) -> FactoryTopology:
    """Extract the ISA-95 factory topology from a resolved model."""
    return TopologyExtractor(model).extract()
