"""ISA-95 conformance checks on extracted factory topologies.

These rules complement the generic SysML well-formedness checks with the
domain knowledge of Section III: every machine needs a driver with
enough connection parameters for its protocol, workcells should not be
empty, names must be unique (they become topic levels and Kubernetes
resource names), and the hierarchy must be complete.
"""

from __future__ import annotations

from ..obs import span as _span
from ..sysml.errors import DiagnosticReport
from .levels import FactoryTopology

#: Parameters a standardized OPC UA driver needs to reach its server.
_OPCUA_REQUIRED_PARAMETERS = ("endpoint",)
#: Parameters proprietary drivers commonly need.
_PROPRIETARY_REQUIRED_PARAMETERS = ("ip", "ip_port")


def validate_topology(topology: FactoryTopology) -> DiagnosticReport:
    with _span("validate") as s:
        report = _validate_topology(topology)
        if s.enabled:
            s.set("errors", len(report.errors))
            s.set("warnings", len(report.warnings))
    return report


def _validate_topology(topology: FactoryTopology) -> DiagnosticReport:
    report = DiagnosticReport()
    _check_hierarchy_complete(topology, report)
    _check_unique_names(topology, report)
    for workcell in topology.workcells:
        if not workcell.machines:
            report.warning("empty-workcell",
                           f"workcell '{workcell.name}' has no machines",
                           element=workcell.name)
        if not workcell.production_line:
            report.warning("workcell-outside-line",
                           f"workcell '{workcell.name}' is not inside a "
                           f"production line", element=workcell.name)
    for machine in topology.machines:
        _check_machine(machine, report)
    return report


def _check_hierarchy_complete(topology: FactoryTopology,
                              report: DiagnosticReport) -> None:
    for level, value in (("enterprise", topology.enterprise),
                         ("site", topology.site),
                         ("area", topology.area)):
        if not value:
            report.warning("missing-level",
                           f"topology does not declare an {level}")
    if not topology.production_lines:
        report.error("missing-level",
                     "topology declares no production line")


def _check_unique_names(topology: FactoryTopology,
                        report: DiagnosticReport) -> None:
    seen: set[str] = set()
    for workcell in topology.workcells:
        if workcell.name in seen:
            report.error("duplicate-name",
                         f"duplicate workcell name '{workcell.name}'",
                         element=workcell.name)
        seen.add(workcell.name)
    machine_names: set[str] = set()
    for machine in topology.machines:
        if machine.name in machine_names:
            report.error("duplicate-name",
                         f"duplicate machine name '{machine.name}'",
                         element=machine.name)
        machine_names.add(machine.name)


def _check_machine(machine, report: DiagnosticReport) -> None:
    if not machine.variables and not machine.services:
        report.warning("inert-machine",
                       f"machine '{machine.name}' exposes no variables or "
                       f"services", element=machine.name)
    variable_names = [v.name for v in machine.variables]
    if len(variable_names) != len(set(variable_names)):
        report.error("duplicate-variable",
                     f"machine '{machine.name}' has duplicate variable "
                     f"names", element=machine.name)
    service_names = [s.name for s in machine.services]
    if len(service_names) != len(set(service_names)):
        report.error("duplicate-service",
                     f"machine '{machine.name}' has duplicate service "
                     f"names", element=machine.name)
    driver = machine.driver
    if driver is None:
        report.error("missing-driver",
                     f"machine '{machine.name}' references no driver",
                     element=machine.name)
        return
    if not driver.protocol:
        report.error("unresolved-driver",
                     f"machine '{machine.name}' references driver "
                     f"'{driver.name}' which has no resolvable type",
                     element=machine.name)
        return
    if driver.is_generic and "OPCUA" in driver.protocol.upper():
        required = _OPCUA_REQUIRED_PARAMETERS
    else:
        # proprietary drivers and socket-based generic protocols
        # (Modbus/TCP etc.) need a host address
        required = _PROPRIETARY_REQUIRED_PARAMETERS
    for parameter in required:
        if driver.parameters.get(parameter) in (None, ""):
            report.warning(
                "missing-driver-parameter",
                f"driver '{driver.name}' of machine '{machine.name}' "
                f"does not set parameter '{parameter}'",
                element=machine.name)
