"""ISA-95 layer: base library, topology extraction, conformance checks."""

from .levels import (ArgumentSpec, DriverInfo, EquipmentLevel,
                     FactoryTopology, MachineInfo, ServiceSpec, VariableSpec,
                     WorkcellInfo)
from .library import ISA95_LIBRARY_SOURCE
from .topology import TopologyError, TopologyExtractor, extract_topology
from .validation import validate_topology

__all__ = [
    "ArgumentSpec", "DriverInfo", "EquipmentLevel", "FactoryTopology",
    "ISA95_LIBRARY_SOURCE", "MachineInfo", "ServiceSpec", "TopologyError",
    "TopologyExtractor", "VariableSpec", "WorkcellInfo", "extract_topology",
    "validate_topology",
]
