"""ISA-95 equipment hierarchy records.

The extraction pass (:mod:`repro.isa95.topology`) turns a SysML v2 model
into these plain records — the neutral representation the configuration
generator consumes. They deliberately contain *only* the information the
paper's intermediate JSON files need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EquipmentLevel(enum.Enum):
    """Hierarchy levels of the ISA-95 equipment model."""

    ENTERPRISE = "enterprise"
    SITE = "site"
    AREA = "area"
    PRODUCTION_LINE = "production_line"
    WORKCELL = "workcell"
    MACHINE = "machine"

    @property
    def depth(self) -> int:
        order = [EquipmentLevel.ENTERPRISE, EquipmentLevel.SITE,
                 EquipmentLevel.AREA, EquipmentLevel.PRODUCTION_LINE,
                 EquipmentLevel.WORKCELL, EquipmentLevel.MACHINE]
        return order.index(self)


@dataclass
class VariableSpec:
    """One machine data point."""

    name: str
    data_type: str = "Real"
    category: str = ""
    description: str = ""
    unit: str = ""
    initial_value: object = None


@dataclass
class ArgumentSpec:
    name: str
    data_type: str = "String"


@dataclass
class ServiceSpec:
    """One machine service (command/operation)."""

    name: str
    inputs: list[ArgumentSpec] = field(default_factory=list)
    outputs: list[ArgumentSpec] = field(default_factory=list)
    description: str = ""


@dataclass
class DriverInfo:
    """The communication endpoint of a machine."""

    name: str
    protocol: str  # driver definition name, e.g. "EMCODriver", "OPCUADriver"
    is_generic: bool = False  # GenericDriver vs MachineDriver
    parameters: dict[str, object] = field(default_factory=dict)
    variable_count: int = 0
    method_count: int = 0
    #: Model path of the concrete driver *instance* usage this record was
    #: extracted from ("" for unresolved reference stubs) — lets the
    #: incremental engine re-extract exactly this driver after an edit.
    node_path: str = ""


@dataclass
class MachineInfo:
    """A machine with its data, services and driver."""

    name: str
    type_name: str  # machine definition name, e.g. "EMCOMillingMachine"
    workcell: str
    variables: list[VariableSpec] = field(default_factory=list)
    services: list[ServiceSpec] = field(default_factory=list)
    driver: DriverInfo | None = None
    #: Model path of the machine's part usage (see
    #: :func:`repro.sysml.depgraph.node_path`) — the incremental
    #: engine's handle for re-elaborating just this machine.
    node_path: str = ""

    @property
    def point_count(self) -> int:
        """Variables + services — the client-capacity unit of the paper."""
        return len(self.variables) + len(self.services)


@dataclass
class WorkcellInfo:
    name: str
    production_line: str
    machines: list[MachineInfo] = field(default_factory=list)


@dataclass
class FactoryTopology:
    """The extracted ISA-95 view of a factory model."""

    enterprise: str = ""
    site: str = ""
    area: str = ""
    production_lines: list[str] = field(default_factory=list)
    workcells: list[WorkcellInfo] = field(default_factory=list)

    @property
    def machines(self) -> list[MachineInfo]:
        return [m for wc in self.workcells for m in wc.machines]

    def workcell(self, name: str) -> WorkcellInfo:
        for workcell in self.workcells:
            if workcell.name == name:
                return workcell
        raise KeyError(f"no workcell named {name!r}")

    def machine(self, name: str) -> MachineInfo:
        for machine in self.machines:
            if machine.name == name:
                return machine
        raise KeyError(f"no machine named {name!r}")

    def service_inventory(self) -> dict[str, list[str]]:
        """Service name -> providing machines, in topology order.

        The capability view of the factory: which machines can perform
        each modeled service. The planning backend grounds its action
        schemas from exactly this mapping (several machines modeling
        the same service name are interchangeable providers), and the
        insertion order is the deterministic topology walk, so the
        mapping is stable for a given model.
        """
        inventory: dict[str, list[str]] = {}
        for machine in self.machines:
            for service in machine.services:
                providers = inventory.setdefault(service.name, [])
                if machine.name not in providers:
                    providers.append(machine.name)
        return inventory

    def summary(self) -> dict[str, int]:
        return {
            "workcells": len(self.workcells),
            "machines": len(self.machines),
            "variables": sum(len(m.variables) for m in self.machines),
            "services": sum(len(m.services) for m in self.machines),
        }
