"""The canonical ISA-95 SysML v2 base library (paper Section III-A).

Every factory model produced with this package imports ``ISA95``: the
hierarchy from :code:`Topology` down to :code:`Workcell` (Code 1 of the
paper) plus the abstract ``Machine`` and ``Driver`` definitions with
their ``MachineData``/``MachineServices`` and ``DriverParameters``/
``DriverVariables``/``DriverMethods`` sub-structure (Section III-A).
"""

ISA95_LIBRARY_SOURCE = """
package ISA95 {
    doc /* ISA-95 (IEC 62264) base library: equipment hierarchy and the
           Machine/Driver abstractions of the SOM modeling methodology. */

    abstract part def Driver {
        doc /* A communication protocol endpoint used by a machine. */
        part def DriverParameters {
            doc /* Static configuration (IP, port, ...) — attributes. */
        }
        part def DriverVariables {
            doc /* Data produced by the machine, exposed through ports. */
        }
        part def DriverMethods {
            doc /* Callable operations, exposed through method ports. */
        }
    }
    abstract part def MachineDriver :> Driver {
        doc /* Machine-proprietary protocol driver. */
    }
    abstract part def GenericDriver :> Driver {
        doc /* Standardized protocol driver (OPC UA, Modbus, ...). */
    }

    abstract part def Machine {
        doc /* A piece of production equipment exposing machine services. */
        part def MachineData {
            doc /* All data the machine produces, grouped by category. */
        }
        part def MachineServices {
            doc /* The services (commands/operations) the machine offers. */
        }
        ref part driver : Driver;
    }

    part def Topology {
        part def Enterprise {
            part def Site {
                part def Area {
                    part def ProductionLine {
                        attribute def ProductionLineVariables;
                        attribute throughput : Real;
                        attribute energyConsumption : Real;
                        part def Workcell {
                            ref part machines : Machine [*];
                            part def WorkCellVariables {
                                attribute oee : Real;
                                attribute cycleCount : Integer;
                            }
                        }
                    }
                }
            }
        }
    }
}
"""

#: Qualified names of the base definitions, for extraction lookups.
QN_TOPOLOGY = "ISA95::Topology"
QN_ENTERPRISE = "ISA95::Topology::Enterprise"
QN_SITE = "ISA95::Topology::Enterprise::Site"
QN_AREA = "ISA95::Topology::Enterprise::Site::Area"
QN_PRODUCTION_LINE = "ISA95::Topology::Enterprise::Site::Area::ProductionLine"
QN_WORKCELL = (
    "ISA95::Topology::Enterprise::Site::Area::ProductionLine::Workcell")
QN_MACHINE = "ISA95::Machine"
QN_MACHINE_DATA = "ISA95::Machine::MachineData"
QN_MACHINE_SERVICES = "ISA95::Machine::MachineServices"
QN_DRIVER = "ISA95::Driver"
QN_MACHINE_DRIVER = "ISA95::MachineDriver"
QN_GENERIC_DRIVER = "ISA95::GenericDriver"
QN_DRIVER_PARAMETERS = "ISA95::Driver::DriverParameters"
QN_DRIVER_VARIABLES = "ISA95::Driver::DriverVariables"
QN_DRIVER_METHODS = "ISA95::Driver::DriverMethods"
