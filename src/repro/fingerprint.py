"""Content fingerprints: the one place hashing lives.

Every cache layer in the system keys artifacts on a
:func:`fingerprint` — SHA-256 over the canonical-JSON rendering of the
inputs plus a salt. The salt has two components:

* :data:`CACHE_SCHEMA_VERSION` — bumped whenever the on-disk artifact
  layout changes, invalidating every entry at once;
* a per-layer salt string — it names the producing layer (``parse``,
  ``machine-config``, ``manifest``, ...) and embeds that layer's own
  version, so evolving one generator never serves stale artifacts from
  another. The per-layer salts are collected here as module constants
  so the key schema of the whole system is visible in one screen.

Canonical JSON (sorted keys, no whitespace, ``default=str`` for exotic
leaf values) makes the fingerprint independent of dict insertion order
and stable across processes.

Anything that can answer "what is your content hash?" implements the
:class:`Fingerprintable` protocol; :func:`fingerprint_of` dispatches on
it, so composite keys can mix plain values and fingerprintable objects.

This module used to be spread over ``repro.cache.fingerprint`` plus
ad-hoc salt constants in ``resolver.py``, ``codegen/pipeline.py`` and
``service/server.py``. The ``repro.cache`` re-exports are gone (their
one-release deprecation window has elapsed); the renamed salt constants
on ``resolver.py`` remain importable for one more release behind a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Protocol, runtime_checkable

#: Bump to invalidate every cached artifact (on-disk layout change).
CACHE_SCHEMA_VERSION = 1

# -- per-layer salts ---------------------------------------------------------
# Bump a salt whenever the corresponding layer's artifact format changes.

#: Cached parse trees: embeds the parser/AST generation, so grammar or
#: node-layout changes never replay stale trees.
PARSE_TREE_SALT = "sysml-parse-tree/1"

#: The whole-model fingerprint derived from the source texts.
MODEL_SALT = "sysml-model/1"

#: Structural (Merkle) fingerprints of model subtrees — the per-node
#: keys of the incremental engine.
NODE_SALT = "sysml-node/1"

#: Per-node dependency fingerprints (a node's deep fingerprint plus the
#: fingerprints of everything it resolved through).
DEPS_SALT = "sysml-deps/1"

#: The extracted ISA-95 topology pickle. (v2: machines carry their
#: model node path for incremental re-elaboration.)
TOPOLOGY_SALT = "isa95-topology/2"

#: Per-machine intermediate JSON keyed on the *whole machine record*
#: (legacy; superseded by :data:`STEP1_NODE_SALT`).
STEP1_SALT = "machine-config/1"

#: Per-machine intermediate JSON keyed on ``(node_fingerprint,
#: deps_fingerprint)`` of the machine's model subtree.
STEP1_NODE_SALT = "machine-config-node/1"

#: Rendered Kubernetes manifests.
STEP2_SALT = "manifest/1"

#: The whole-result bundle of one pipeline run. (v2: pickled groups
#: carry machine node paths.)
RESULT_SALT = "generation-result/2"

#: Service-layer single-flight and memo keys.
SERVICE_PARSE_SALT = "service-parse/1"
SERVICE_GENERATE_SALT = "service-generate/1"
SERVICE_MEMO_SALT = "service-memo/1"

#: Consistent-hash ring of the sharded serving tier: vnode placement
#: points (:mod:`repro.service.ring`). Bumping it remaps every key —
#: equivalent to a full re-shard — so only bump on a ring change that
#: is *meant* to move traffic.
ROUTER_RING_SALT = "router-ring/1"

#: Scenario-engine artifacts (:mod:`repro.sim`): one simulated
#: scenario's report, and the multi-scenario briefing. Bump when the
#: report schema or the simulation semantics change.
SIM_REPORT_SALT = "sim-report/1"
SIM_BRIEFING_SALT = "sim-briefing/1"

#: A canonicalized :class:`repro.sim.workload.Workload` (job set,
#: routes, releases). Shared by the scenario engine and the planning
#: backend to state "these two runs planned/simulated the same work".
WORKLOAD_SALT = "sim-workload/1"

#: Operations-planning artifacts (:mod:`repro.planning`): the PDDL
#: domain/problem emission plus the plans and validation reports of
#: one run. Bump when the PDDL mapping, the planner semantics or the
#: cached bundle schema change.
PLAN_SALT = "planning/1"


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, compact, ``str()`` fallback."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def fingerprint(*parts: object, salt: str = "") -> str:
    """SHA-256 hex digest over canonical forms of *parts* + the salt.

    Each part is length-prefixed before hashing so adjacent parts can
    never collide by concatenation (``("ab", "c")`` vs ``("a", "bc")``).
    ``bytes`` and ``str`` parts hash as-is; everything else goes through
    :func:`canonical_json`.
    """
    hasher = hashlib.sha256()
    hasher.update(f"repro-cache/v{CACHE_SCHEMA_VERSION}|{salt}".encode())
    for part in parts:
        if isinstance(part, bytes):
            data = part
        elif isinstance(part, str):
            data = part.encode()
        else:
            data = canonical_json(part).encode()
        hasher.update(b"|%d|" % len(data))
        hasher.update(data)
    return hasher.hexdigest()


@runtime_checkable
class Fingerprintable(Protocol):
    """Anything that can state a stable content hash of itself.

    Implementors return a hex digest that changes exactly when their
    *content* changes — never with identity, timing or process state.
    """

    def fingerprint_key(self) -> str:
        """The stable content hash of this object."""
        ...  # pragma: no cover - protocol


def fingerprint_of(value: object, *, salt: str = "") -> str:
    """Fingerprint one value, honoring :class:`Fingerprintable`.

    A plain value hashes via :func:`fingerprint`; an object implementing
    the protocol contributes its own ``fingerprint_key()`` (re-salted so
    different layers never share keys).
    """
    if isinstance(value, Fingerprintable) and not isinstance(value, type):
        return fingerprint(value.fingerprint_key(), salt=salt)
    return fingerprint(value, salt=salt)


__all__ = [
    "CACHE_SCHEMA_VERSION", "DEPS_SALT", "Fingerprintable", "MODEL_SALT",
    "NODE_SALT", "PARSE_TREE_SALT", "PLAN_SALT", "RESULT_SALT",
    "ROUTER_RING_SALT",
    "SERVICE_GENERATE_SALT",
    "SERVICE_MEMO_SALT", "SERVICE_PARSE_SALT", "SIM_BRIEFING_SALT",
    "SIM_REPORT_SALT", "STEP1_NODE_SALT", "STEP1_SALT", "STEP2_SALT",
    "TOPOLOGY_SALT", "WORKLOAD_SALT", "canonical_json", "fingerprint",
    "fingerprint_of",
]
