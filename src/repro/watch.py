"""Watch mode: the long-running front end over the incremental engine.

``repro-factory watch`` keeps an :class:`~repro.codegen.IncrementalEngine`
warm over a set of on-disk ``.sysml`` sources. Each poll it compares the
files' ``(mtime, size)`` signatures; when one changes it re-runs only the
dirty model subtrees, diffs the generated artifacts against the previous
generation, writes only the files whose bytes actually changed, and —
with a cluster attached — issues a rolling apply of just the regenerated
manifests (the :func:`repro.k8s.deploy.apply_incremental` semantics:
changed ConfigMaps roll their deployments; a rolled OPC UA server
restarts its downstream bridges and historians).

The session is built for testing: clock and sleep are injectable and
:meth:`WatchSession.poll` performs exactly one check-and-rebuild step,
so tests drive iterations without threads or real time.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from .codegen.incremental import IncrementalEngine
from .codegen.options import PipelineOptions
from .obs import METRICS
from .sysml.errors import SysMLError
from .yamlgen import parse_documents

_POLLS = METRICS.counter("watch.polls")
_REBUILDS = METRICS.counter("watch.rebuilds")
_FILES_WRITTEN = METRICS.counter("watch.files_written")

#: Restart order mirrored from :mod:`repro.k8s.deploy`.
_COMPONENT_ORDER = {"opcua-server": 0, "opcua-client": 1, "historian": 2}


@dataclass
class WatchEvent:
    """One completed rebuild of a watch session."""

    iteration: int
    #: Watched files whose signature changed since the last event.
    changed_files: list[str]
    #: Artifact ids regenerated this round (``manifest:...`` etc.).
    regenerated: list[str]
    #: How many artifacts were byte-reused from the previous generation.
    reused: int
    #: Output files (re)written under the --out directory.
    written: list[Path] = field(default_factory=list)
    #: Rolling-apply report when a cluster is attached, else None.
    deployed: dict[str, object] | None = None
    seconds: float = 0.0
    #: The parse/validate error aborting this rebuild, if any. The
    #: previous good generation stays deployed and the session keeps
    #: watching — a broken intermediate save must not kill watch mode.
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class WatchSession:
    """Polls source files and incrementally rebuilds on change.

    Parameters
    ----------
    paths:
        The ``.sysml`` files to watch.
    options:
        Pipeline options for the inner incremental engine.
    out_dir:
        Optional directory for generated files; only changed files are
        rewritten after the first generation.
    cluster:
        Optional :class:`repro.k8s.Cluster`; the first generation
        deploys everything, later ones roll only regenerated manifests.
    interval:
        Seconds between polls in :meth:`run`.
    clock / sleep:
        Injectable time sources (tests pass fakes).
    """

    def __init__(self, paths, *, options: PipelineOptions | None = None,
                 out_dir: str | Path | None = None, cluster=None,
                 interval: float = 0.5,
                 clock=time.perf_counter, sleep=time.sleep):
        if not paths:
            raise ValueError("watch needs at least one source file")
        self.paths = [str(path) for path in paths]
        self.engine = IncrementalEngine(
            options if options is not None else PipelineOptions())
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.cluster = cluster
        self.interval = interval
        self._clock = clock
        self._sleep = sleep
        self.iterations = 0
        self._signatures: dict[str, tuple[int, int] | None] = {}
        self._written: dict[Path, str] = {}

    # -- change detection ------------------------------------------------

    def _signature(self, path: str) -> tuple[int, int] | None:
        try:
            stat = os.stat(path)
        except OSError:
            return None  # vanished mid-save; treated as a change
        return (stat.st_mtime_ns, stat.st_size)

    def changed_files(self) -> list[str]:
        """Watched files whose ``(mtime, size)`` moved since last poll."""
        changed = []
        for path in self.paths:
            signature = self._signature(path)
            if self._signatures.get(path, ()) != signature:
                self._signatures[path] = signature
                changed.append(path)
        return changed

    # -- one step --------------------------------------------------------

    def poll(self) -> WatchEvent | None:
        """One check-and-rebuild step; ``None`` when nothing changed."""
        _POLLS.inc()
        changed = self.changed_files()
        if not changed and self.iterations:
            return None
        started = self._clock()
        texts = []
        for path in self.paths:
            try:
                with open(path) as handle:
                    texts.append(handle.read())
            except OSError as exc:
                return self._failed(changed, f"{path}: {exc}", started)
        try:
            result = self.engine.generate(*texts, filenames=self.paths)
        except SysMLError as exc:
            return self._failed(changed, str(exc), started)
        _REBUILDS.inc()
        states = result.provenance
        regenerated = sorted(artifact for artifact, state in states.items()
                             if state == "regenerated")
        event = WatchEvent(
            iteration=self.iterations,
            changed_files=changed,
            regenerated=regenerated,
            reused=sum(1 for state in states.values() if state == "reused"))
        if self.out_dir is not None:
            event.written = self._write_changed(result)
        if self.cluster is not None:
            event.deployed = self._apply_rolling(result, regenerated)
        self.iterations += 1
        event.seconds = self._clock() - started
        return event

    def _failed(self, changed, message, started) -> WatchEvent:
        event = WatchEvent(iteration=self.iterations, changed_files=changed,
                           regenerated=[], reused=0, error=message)
        self.iterations += 1
        event.seconds = self._clock() - started
        return event

    # -- partial artifact writes -----------------------------------------

    def _write_changed(self, result) -> list[Path]:
        """Rewrite only the output files whose content changed.

        Byte-reused artifacts keep their mtimes, so downstream
        file-watchers (including another WatchSession!) see exactly
        the real change set.
        """
        import json

        from .templates.engine import k8s_name

        base = self.out_dir
        json_dir = base / "intermediate"
        yaml_dir = base / "manifests"
        json_dir.mkdir(parents=True, exist_ok=True)
        yaml_dir.mkdir(parents=True, exist_ok=True)
        targets: list[tuple[Path, str]] = []
        for name, config in result.machine_configs.items():
            targets.append((json_dir / f"machine-{k8s_name(name)}.json",
                            json.dumps(config, indent=2) + "\n"))
        for name, config in result.server_configs.items():
            targets.append((json_dir / f"server-{k8s_name(name)}.json",
                            json.dumps(config, indent=2) + "\n"))
        for config in result.client_configs:
            targets.append((json_dir / f"{config['client']}.json",
                            json.dumps(config, indent=2) + "\n"))
        for config in result.storage_configs:
            targets.append((json_dir / f"{config['historian']}.json",
                            json.dumps(config, indent=2) + "\n"))
        for filename, text in result.manifests.items():
            targets.append((yaml_dir / filename, text))
        written: list[Path] = []
        for path, text in targets:
            if self._written.get(path) == text and path.exists():
                continue
            path.write_text(text)
            self._written[path] = text
            written.append(path)
        _FILES_WRITTEN.inc(len(written))
        return written

    # -- rolling deploy --------------------------------------------------

    def _apply_rolling(self, result, regenerated) -> dict[str, object]:
        """Apply changed manifests; restart downstream of rolled servers."""
        from .k8s.deploy import deploy_manifests

        if self.iterations == 0:
            to_apply = dict(result.manifests)
        else:
            names = {artifact.split(":", 1)[1] for artifact in regenerated
                     if artifact.startswith("manifest:")}
            to_apply = {name: result.manifests[name] for name in names}
        applied = deploy_manifests(self.cluster, to_apply) if to_apply \
            else []
        restarted = 0
        if self.iterations and any("opcua-server" in name
                                   for name in to_apply):
            restarted += self.cluster.restart_pods(component="opcua-client")
            restarted += self.cluster.restart_pods(component="historian")

        def deployment_order(deployment):
            component = deployment.pod_labels.get("component", "")
            return (_COMPONENT_ORDER.get(component, 3),
                    deployment.metadata.name)

        self.cluster.reconcile_all(order=deployment_order)
        return {"applied": len(applied),
                "manifests": sorted(to_apply),
                "restarted_downstream": restarted,
                "running": len(self.cluster.running_pods())}

    # -- the loop --------------------------------------------------------

    def run(self, *, max_iterations: int | None = None,
            on_event=None) -> int:
        """Poll until *max_iterations* rebuilds happened (or forever).

        Returns how many rebuilds ran. *on_event* is called with each
        :class:`WatchEvent` — the CLI prints from there.
        """
        rebuilds = 0
        while max_iterations is None or rebuilds < max_iterations:
            event = self.poll()
            if event is not None:
                rebuilds += 1
                if on_event is not None:
                    on_event(event)
            if max_iterations is not None and rebuilds >= max_iterations:
                break
            self._sleep(self.interval)
        return rebuilds


def document_names(manifest_text: str) -> list[str]:
    """``kind/name`` of every document in one manifest file (diff aid)."""
    names = []
    for document in parse_documents(manifest_text):
        if document:
            metadata = document.get("metadata", {}) or {}
            names.append(f"{document.get('kind', '?')}/"
                         f"{metadata.get('name', '?')}")
    return names
