"""The software-stack components the generated configuration deploys.

Three component kinds, exactly those of Section IV:

* :class:`WorkcellServerComponent` — the per-workcell OPC UA server:
  connects to its machines through their drivers and mirrors every
  variable and method into one address space.
* :class:`UaBrokerBridgeComponent` — the "OPC UA client" module:
  subscribes to the machine variables on the workcell servers and
  republishes them on the message broker; also serves machine-service
  invocation requests arriving over the broker by forwarding them as
  UA method calls (this is what makes the architecture SOM).
* :class:`HistorianComponent` — stores broker data into the database
  (delegates to :class:`repro.storage.Historian`).

All three are constructed *from their generated JSON configuration* —
the deployment loop is closed: SysML model -> JSON -> YAML -> cluster ->
these components.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..broker import BrokerClient, MessageBroker
from ..drivers import DriverFactory, DriverRuntime
from ..machines import MachineSimulator
from ..opcua import Argument, NodeId, OpcUaClient, OpcUaServer, UaNetwork
from ..storage import Historian, HistorianConfig, TimeSeriesStore


class ComponentError(RuntimeError):
    pass


@dataclass
class FactoryWorld:
    """Everything that exists *outside* the cluster: the physical factory.

    The machines (simulators) and the plant network are the environment
    the deployed software talks to; broker and store are the in-cluster
    stateful services the pipeline assumes present (the paper's stack
    likewise deploys against an existing broker and database).
    """

    network: UaNetwork = field(default_factory=UaNetwork)
    broker: MessageBroker = field(default_factory=MessageBroker)
    store: TimeSeriesStore = field(default_factory=TimeSeriesStore)
    simulators: dict[str, MachineSimulator] = field(default_factory=dict)
    driver_factory: DriverFactory | None = None
    clock: float = 0.0

    def __post_init__(self):
        if self.driver_factory is None:
            self.driver_factory = DriverFactory(self.network)

    @classmethod
    def for_specs(cls, specs, *, seed: int = 0) -> "FactoryWorld":
        world = cls()
        for index, spec in enumerate(specs):
            world.simulators[spec.name] = MachineSimulator(
                spec, seed=seed + index)
        return world

    def step(self, dt: float = 1.0) -> None:
        """Advance every machine's simulated time."""
        self.clock += dt
        for simulator in self.simulators.values():
            simulator.step(dt)


class WorkcellServerComponent:
    """The generated OPC UA server for one workcell."""

    def __init__(self, config: dict, world: FactoryWorld):
        self.config = config
        self.world = world
        self.server: OpcUaServer | None = None
        self.drivers: dict[str, DriverRuntime] = {}
        self.mirrored_writes = 0

    def start(self) -> None:
        endpoint = self.config["endpoint"]
        self.server = OpcUaServer(
            endpoint, application_name=self.config["server"],
            network=self.world.network,
            namespace_uris=[f"urn:factory:{self.config['workcell']}"])
        for machine_config in self.config["machines"]:
            self._attach_machine(machine_config)
        self.server.start()

    def _attach_machine(self, machine_config: dict) -> None:
        assert self.server is not None
        name = machine_config["machine"]
        simulator = self.world.simulators.get(name)
        if simulator is None:
            raise ComponentError(f"no machine {name!r} on the plant floor")
        driver = self.world.driver_factory.create(simulator.spec, simulator)
        driver.connect()
        self.drivers[name] = driver
        machine_node = self.server.add_object(self.server.space.objects,
                                              name, namespace=2)
        data_node = self.server.add_object(machine_node, "data", namespace=2)
        nodes = {}
        for variable in machine_config["variables"]:
            nodes[variable["name"]] = self.server.add_variable(
                data_node, variable["name"],
                data_type=variable["data_type"],
                initial_value=driver.read_variable(variable["name"]),
                namespace=2)

        def mirror(var_name: str, value: object, _nodes=nodes) -> None:
            node = _nodes.get(var_name)
            if node is not None:
                node.write(value, timestamp=self.world.clock)
                self.mirrored_writes += 1

        driver.subscribe(mirror)
        services_node = self.server.add_object(machine_node, "services",
                                               namespace=2)
        for method in machine_config["methods"]:
            self.server.add_method(
                services_node, method["name"],
                handler=self._method_handler(driver, method["name"]),
                input_arguments=[Argument(a["name"], a["data_type"])
                                 for a in method["inputs"]],
                output_arguments=[Argument(a["name"], a["data_type"])
                                  for a in method["outputs"]],
                namespace=2)

    @staticmethod
    def _method_handler(driver: DriverRuntime, name: str):
        def handler(*args):
            return driver.call_method(name, *args)
        return handler

    def stop(self) -> None:
        if self.server is not None:
            self.server.stop()
        for driver in self.drivers.values():
            driver.disconnect()


class UaBrokerBridgeComponent:
    """The generated OPC UA client module for one machine group."""

    def __init__(self, config: dict, world: FactoryWorld):
        self.config = config
        self.world = world
        self.client_id = config["client"]
        self.broker_client = BrokerClient(world.broker, self.client_id)
        self.ua_clients: dict[str, OpcUaClient] = {}
        self.forwarded = 0
        self.served_calls = 0

    def start(self) -> None:
        for machine_config in self.config["machines"]:
            self._attach_machine(machine_config)

    def _attach_machine(self, machine_config: dict) -> None:
        machine = machine_config["machine"]
        endpoint = machine_config["server_endpoint"]
        ua_client = OpcUaClient(f"{self.client_id}-{machine}",
                                network=self.world.network)
        ua_client.connect(endpoint)
        self.ua_clients[machine] = ua_client
        topic_by_node = {sub["node_id"]: sub["topic"]
                         for sub in machine_config["subscriptions"]}
        node_ids = [NodeId.parse(raw) for raw in topic_by_node]

        def forward(notification, _topics=topic_by_node) -> None:
            topic = _topics.get(str(notification.node_id))
            if topic is None:
                return
            self.broker_client.publish(topic, {
                "value": notification.value,
                "timestamp": notification.timestamp,
                "status": notification.status,
            }, retain=True)
            self.forwarded += 1

        if node_ids:
            ua_client.subscribe(node_ids, callback=forward)
        # initial sample: publish current values so late consumers (and
        # machines whose variables rarely change) are represented
        for node_id in node_ids:
            data_value = ua_client.read_data_value(node_id)
            self.broker_client.publish(
                topic_by_node[str(node_id)],
                {"value": data_value.value,
                 "timestamp": data_value.source_timestamp,
                 "status": data_value.status}, retain=True)
            self.forwarded += 1
        for method in machine_config["methods"]:
            self._serve_method(ua_client, method)

    def _serve_method(self, ua_client: OpcUaClient, method: dict) -> None:
        node_id = NodeId.parse(method["node_id"])

        def responder(_topic: str, request: dict) -> dict:
            args = request.get("args", [])
            if len(args) != method["input_count"]:
                return {"ok": False,
                        "error": f"expected {method['input_count']} "
                                 f"argument(s), got {len(args)}"}
            try:
                outputs = ua_client.call(node_id, *args)
            except Exception as exc:
                return {"ok": False, "error": str(exc)}
            self.served_calls += 1
            return {"ok": True, "outputs": list(outputs)}

        self.broker_client.serve(method["topic"], responder)

    def stop(self) -> None:
        self.broker_client.disconnect()
        for ua_client in self.ua_clients.values():
            ua_client.disconnect()


class HistorianComponent:
    """The generated database-storage component for one machine group."""

    def __init__(self, config: dict, world: FactoryWorld):
        self.config = config
        self.historian = Historian(
            HistorianConfig(name=config["historian"],
                            topic_root=config["topic_root"],
                            machines=list(config.get("machines", [])),
                            measurement=config["database"]["measurement"]),
            world.broker, world.store)

    def start(self) -> None:
        self.historian.start()

    def stop(self) -> None:
        self.historian.stop()

    @property
    def records(self) -> int:
        return self.historian.records
