"""Production scheduling over machine services.

Multiple production processes compete for the same machines (the
conveyor and AGVs serve every workcell). The scheduler executes a batch
of processes while honoring the SOM constraint that a machine executes
one service at a time: it builds a step-level schedule (list scheduling
over machine resources, preserving each process's step order), reports
the makespan, and can drive the orchestrator accordingly.

Each step occupies its machine for one time slot by default; a
``duration`` map can refine that. This is deliberately a *schedule*
simulator — real dispatching latency lives in the broker layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .orchestrator import OrchestrationError, Orchestrator
from .process import ProcessStep, ProductionProcess
from .services import ServiceLookupError


class SchedulingError(RuntimeError):
    pass


@dataclass(frozen=True)
class ScheduledStep:
    process: str
    step_index: int
    step: ProcessStep
    start: float
    end: float

    @property
    def machine(self) -> str:
        return self.step.machine


@dataclass
class Schedule:
    entries: list[ScheduledStep] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.entries), default=0.0)

    def for_machine(self, machine: str) -> list[ScheduledStep]:
        return sorted((e for e in self.entries if e.machine == machine),
                      key=lambda e: e.start)

    def for_process(self, process: str) -> list[ScheduledStep]:
        return sorted((e for e in self.entries if e.process == process),
                      key=lambda e: e.step_index)

    def validate(self) -> list[str]:
        """Internal consistency: no machine overlap, step order kept."""
        problems: list[str] = []
        machines = {e.machine for e in self.entries}
        for machine in machines:
            timeline = self.for_machine(machine)
            for first, second in zip(timeline, timeline[1:]):
                if second.start < first.end:
                    problems.append(
                        f"machine {machine} double-booked at "
                        f"{second.start}")
        processes = {e.process for e in self.entries}
        for process in processes:
            steps = self.for_process(process)
            for first, second in zip(steps, steps[1:]):
                if second.start < first.end:
                    problems.append(
                        f"process {process} step order violated at "
                        f"index {second.step_index}")
        return problems

    def render(self) -> str:
        lines = [f"schedule: {len(self.entries)} steps, "
                 f"makespan {self.makespan:g}"]
        for machine in sorted({e.machine for e in self.entries}):
            slots = ", ".join(
                f"[{e.start:g}-{e.end:g}] {e.process}.{e.step.service}"
                for e in self.for_machine(machine))
            lines.append(f"  {machine}: {slots}")
        return "\n".join(lines)


class Scheduler:
    """List scheduler over machine resources."""

    def __init__(self, *, durations: dict[str, float] | None = None,
                 default_duration: float = 1.0):
        #: service-qualified-name ("machine.service") -> duration
        self.durations = dict(durations or {})
        self.default_duration = default_duration

    def _duration(self, step: ProcessStep) -> float:
        return self.durations.get(step.qualified_name,
                                  self.default_duration)

    def schedule(self, processes: list[ProductionProcess]) -> Schedule:
        """Greedy list scheduling: at each round, start every process's
        next step as early as its machine and its predecessor allow."""
        if not processes:
            return Schedule()
        names = [p.name for p in processes]
        if len(names) != len(set(names)):
            raise SchedulingError("process names must be unique")
        machine_free: dict[str, float] = {}
        process_free: dict[str, float] = {p.name: 0.0 for p in processes}
        next_index: dict[str, int] = {p.name: 0 for p in processes}
        schedule = Schedule()
        remaining = sum(len(p) for p in processes)
        while remaining:
            # choose the ready step with the earliest feasible start;
            # FIFO on process order breaks ties deterministically
            best: tuple[float, int, ProductionProcess] | None = None
            for order, process in enumerate(processes):
                index = next_index[process.name]
                if index >= len(process.steps):
                    continue
                step = process.steps[index]
                start = max(process_free[process.name],
                            machine_free.get(step.machine, 0.0))
                key = (start, order, process)
                if best is None or key[:2] < (best[0], best[1]):
                    best = key
            assert best is not None
            start, _, process = best
            index = next_index[process.name]
            step = process.steps[index]
            end = start + self._duration(step)
            schedule.entries.append(ScheduledStep(
                process=process.name, step_index=index, step=step,
                start=start, end=end))
            machine_free[step.machine] = end
            process_free[process.name] = end
            next_index[process.name] += 1
            remaining -= 1
        return schedule

    def execute(self, processes: list[ProductionProcess],
                orchestrator: Orchestrator) -> dict[str, object]:
        """Schedule, then drive the orchestrator in schedule order."""
        schedule = self.schedule(processes)
        problems = schedule.validate()
        if problems:
            raise SchedulingError("; ".join(problems))
        executed = 0
        failed = 0
        for entry in sorted(schedule.entries,
                            key=lambda e: (e.start, e.process)):
            try:
                orchestrator.invoke(entry.step.machine, entry.step.service,
                                    *entry.step.args)
                executed += 1
            except (OrchestrationError, ServiceLookupError):
                # unreachable/unknown services count as failed steps;
                # anything else is a real bug and must propagate
                failed += 1
        return {"schedule": schedule, "executed": executed,
                "failed": failed, "makespan": schedule.makespan}
