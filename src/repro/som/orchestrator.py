"""The SOM orchestrator: executes production processes over the broker.

This is the "high-level control software" of the paper's architecture.
It never talks to a machine directly — every step is a request on the
service topic served by the deployed OPC UA client modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..broker import BrokerClient, BrokerError, MessageBroker
from .process import ProductionProcess, ProcessStep
from .services import ServiceRegistry


class OrchestrationError(RuntimeError):
    def __init__(self, message: str, step: ProcessStep | None = None):
        self.step = step
        super().__init__(message)


@dataclass
class StepResult:
    step: ProcessStep
    ok: bool
    outputs: list = field(default_factory=list)
    error: str = ""


@dataclass
class ProcessResult:
    process: str
    steps: list[StepResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.steps)

    @property
    def completed_steps(self) -> int:
        return sum(1 for s in self.steps if s.ok)


class Orchestrator:
    """Executes production processes step by step."""

    def __init__(self, registry: ServiceRegistry, broker: MessageBroker,
                 *, client_id: str = "orchestrator"):
        self.registry = registry
        self.client = BrokerClient(broker, client_id)
        self.executed_processes = 0

    def invoke(self, machine: str, service: str, *args) -> list:
        """Invoke a single machine service; returns its outputs."""
        descriptor = self.registry.lookup(machine, service)
        try:
            reply = self.client.request(descriptor.topic,
                                        {"args": list(args)})
        except BrokerError as exc:
            raise OrchestrationError(
                f"service {descriptor.qualified_name} unreachable: {exc}"
            ) from exc
        if not isinstance(reply, dict) or not reply.get("ok", False):
            error = reply.get("error", "unknown error") \
                if isinstance(reply, dict) else "malformed reply"
            raise OrchestrationError(
                f"service {descriptor.qualified_name} failed: {error}")
        return list(reply.get("outputs", []))

    def execute(self, process: ProductionProcess,
                *, stop_on_error: bool = True) -> ProcessResult:
        """Run every step of *process*; returns per-step results."""
        missing = process.validate_against(self.registry)
        if missing:
            raise OrchestrationError(
                f"process {process.name!r} references unknown services: "
                + ", ".join(missing))
        result = ProcessResult(process=process.name)
        for step in process.steps:
            try:
                outputs = self.invoke(step.machine, step.service,
                                      *step.args)
                result.steps.append(StepResult(step, True, outputs))
            except OrchestrationError as exc:
                result.steps.append(StepResult(step, False, [], str(exc)))
                if stop_on_error:
                    break
        self.executed_processes += 1
        return result
