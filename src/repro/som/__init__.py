"""Service-Oriented Manufacturing layer: components, services, processes."""

from .components import (ComponentError, FactoryWorld, HistorianComponent,
                         UaBrokerBridgeComponent, WorkcellServerComponent)
from .kpi import KpiMonitor, LineKpi, WorkcellKpi
from .orchestrator import (OrchestrationError, Orchestrator, ProcessResult,
                           StepResult)
from .process import ProcessError, ProcessStep, ProductionProcess
from .scheduler import (Schedule, ScheduledStep, Scheduler, SchedulingError)
from .services import MachineService, ServiceLookupError, ServiceRegistry

__all__ = [
    "ComponentError", "FactoryWorld", "HistorianComponent",
    "KpiMonitor", "LineKpi", "WorkcellKpi",
    "MachineService", "OrchestrationError", "Orchestrator", "ProcessError",
    "ProcessResult", "ProcessStep", "ProductionProcess",
    "Schedule", "ScheduledStep", "Scheduler", "SchedulingError",
    "ServiceLookupError", "ServiceRegistry", "StepResult",
    "UaBrokerBridgeComponent", "WorkcellServerComponent",
]
