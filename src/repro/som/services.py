"""Machine-service registry (the SOM service directory).

In Service-Oriented Manufacturing every machine exposes its operations
as *machine services*; production processes are composed of sequences
of them. The registry is built from an extracted factory topology (or a
generation result) and records, per service, the broker topic on which
the deployed bridge components serve it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa95.levels import FactoryTopology


class ServiceLookupError(KeyError):
    pass


@dataclass(frozen=True)
class MachineService:
    """One invocable machine service within the architecture."""

    machine: str
    workcell: str
    name: str
    topic: str
    input_names: tuple[str, ...] = ()
    output_names: tuple[str, ...] = ()

    @property
    def qualified_name(self) -> str:
        return f"{self.machine}.{self.name}"


class ServiceRegistry:
    """Directory of every machine service in the factory."""

    def __init__(self) -> None:
        self._services: dict[str, MachineService] = {}

    @classmethod
    def from_topology(cls, topology: FactoryTopology,
                      topic_root: str) -> "ServiceRegistry":
        from ..templates.engine import k8s_name
        registry = cls()
        for machine in topology.machines:
            base = (f"{topic_root}/{k8s_name(machine.workcell)}"
                    f"/{machine.name}/services")
            for service in machine.services:
                registry.register(MachineService(
                    machine=machine.name,
                    workcell=machine.workcell,
                    name=service.name,
                    topic=f"{base}/{service.name}",
                    input_names=tuple(a.name for a in service.inputs),
                    output_names=tuple(a.name for a in service.outputs),
                ))
        return registry

    def register(self, service: MachineService) -> None:
        key = service.qualified_name
        if key in self._services:
            raise ValueError(f"duplicate service {key!r}")
        self._services[key] = service

    def lookup(self, machine: str, service: str) -> MachineService:
        key = f"{machine}.{service}"
        try:
            return self._services[key]
        except KeyError:
            raise ServiceLookupError(
                f"no service {service!r} on machine {machine!r}") from None

    def services_of(self, machine: str) -> list[MachineService]:
        return [s for s in self._services.values() if s.machine == machine]

    def machines(self) -> list[str]:
        return sorted({s.machine for s in self._services.values()})

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self):
        return iter(self._services.values())
