"""Production KPIs from stored machine data.

The ISA-95 hierarchy of the paper attaches "aggregated information
relevant across the entire production line or work cell, such as
performance metrics or overall energy consumption" to the
ProductionLine and Workcell levels (Section III-A). This module
computes those aggregates from the historian's time-series store,
giving the levels' variables their operational meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa95.levels import FactoryTopology
from ..storage import TimeSeriesStore


@dataclass
class WorkcellKpi:
    """Aggregated view of one workcell over a time window."""

    workcell: str
    machines_total: int = 0
    machines_reporting: int = 0
    samples: int = 0
    variables_active: int = 0
    energy_w: float = 0.0  # sum of latest power_consumption readings

    @property
    def availability(self) -> float:
        """Fraction of the cell's machines that reported data."""
        if self.machines_total == 0:
            return 0.0
        return self.machines_reporting / self.machines_total


@dataclass
class LineKpi:
    """Aggregated view of the whole production line."""

    production_line: str
    workcells: dict[str, WorkcellKpi] = field(default_factory=dict)
    window: tuple[float | None, float | None] = (None, None)

    @property
    def machines_total(self) -> int:
        return sum(k.machines_total for k in self.workcells.values())

    @property
    def machines_reporting(self) -> int:
        return sum(k.machines_reporting for k in self.workcells.values())

    @property
    def availability(self) -> float:
        if self.machines_total == 0:
            return 0.0
        return self.machines_reporting / self.machines_total

    @property
    def total_samples(self) -> int:
        return sum(k.samples for k in self.workcells.values())

    @property
    def energy_w(self) -> float:
        return sum(k.energy_w for k in self.workcells.values())

    def render(self) -> str:
        lines = [f"Production line {self.production_line}: "
                 f"availability {self.availability:.0%}, "
                 f"{self.total_samples} samples, "
                 f"energy {self.energy_w:.1f} W"]
        for name in sorted(self.workcells):
            kpi = self.workcells[name]
            lines.append(
                f"  {name}: {kpi.machines_reporting}"
                f"/{kpi.machines_total} machines, "
                f"{kpi.variables_active} active vars, "
                f"{kpi.samples} samples")
        return "\n".join(lines)


#: Variable-name fragments treated as power/energy readings.
_ENERGY_VARIABLES = ("power_consumption", "energy")


class KpiMonitor:
    """Computes ISA-95-level aggregates from the time-series store."""

    def __init__(self, store: TimeSeriesStore, topology: FactoryTopology,
                 *, measurement: str = "machine_data"):
        self.store = store
        self.topology = topology
        self.measurement = measurement

    def workcell_kpi(self, workcell_name: str,
                     *, start: float | None = None,
                     end: float | None = None) -> WorkcellKpi:
        workcell = self.topology.workcell(workcell_name)
        # the bridges publish topics with sanitized (lowercase) names
        tag_name = workcell_name.lower()
        kpi = WorkcellKpi(workcell=workcell_name,
                          machines_total=len(workcell.machines))
        reporting: set[str] = set()
        active_variables: set[tuple[str, str]] = set()
        for series in self.store.series(self.measurement,
                                        tags={"workcell": tag_name}):
            points = series.range(start, end)
            if not points:
                continue
            machine = series.tags.get("machine", "")
            variable = series.tags.get("variable", "")
            reporting.add(machine)
            active_variables.add((machine, variable))
            kpi.samples += len(points)
            if any(fragment in variable for fragment in _ENERGY_VARIABLES):
                value = points[-1].value
                if isinstance(value, (int, float)) and not \
                        isinstance(value, bool):
                    kpi.energy_w += abs(float(value))
        machine_names = {m.name for m in workcell.machines}
        kpi.machines_reporting = len(reporting & machine_names)
        kpi.variables_active = len(active_variables)
        return kpi

    def line_kpi(self, *, start: float | None = None,
                 end: float | None = None) -> LineKpi:
        line_name = (self.topology.production_lines[0]
                     if self.topology.production_lines else "")
        line = LineKpi(production_line=line_name, window=(start, end))
        for workcell in self.topology.workcells:
            line.workcells[workcell.name] = self.workcell_kpi(
                workcell.name, start=start, end=end)
        return line

    def stale_machines(self, *, newer_than: float) -> list[str]:
        """Machines with no sample at/after *newer_than* — the
        monitoring alarm a plant operator would page on."""
        fresh: set[str] = set()
        for series in self.store.series(self.measurement):
            last = series.last
            if last is not None and last.timestamp >= newer_than:
                fresh.add(series.tags.get("machine", ""))
        return sorted(m.name for m in self.topology.machines
                      if m.name not in fresh)
