"""Production processes as sequences of machine services.

"SOM consists of a set of machinery exposing their functionalities as a
set of machine services, and production processes are composed of
sequences of machine services" (Section II). A
:class:`ProductionProcess` is exactly such a sequence; the orchestrator
executes it over the broker.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ProcessError(ValueError):
    pass


@dataclass(frozen=True)
class ProcessStep:
    """One service invocation within a process."""

    machine: str
    service: str
    args: tuple = ()
    description: str = ""

    @property
    def qualified_name(self) -> str:
        return f"{self.machine}.{self.service}"


@dataclass
class ProductionProcess:
    """An ordered recipe of machine-service invocations."""

    name: str
    steps: list[ProcessStep] = field(default_factory=list)

    def add_step(self, machine: str, service: str, *args,
                 description: str = "") -> "ProductionProcess":
        self.steps.append(ProcessStep(machine, service, tuple(args),
                                      description))
        return self

    def machines_involved(self) -> list[str]:
        seen: list[str] = []
        for step in self.steps:
            if step.machine not in seen:
                seen.append(step.machine)
        return seen

    def validate_against(self, registry) -> list[str]:
        """Names of steps whose service is not in the registry."""
        from .services import ServiceLookupError
        missing: list[str] = []
        for step in self.steps:
            try:
                service = registry.lookup(step.machine, step.service)
            except ServiceLookupError:
                missing.append(step.qualified_name)
                continue
            if len(step.args) != len(service.input_names):
                missing.append(
                    f"{step.qualified_name} (arity {len(step.args)} != "
                    f"{len(service.input_names)})")
        return missing

    def __len__(self) -> int:
        return len(self.steps)
