"""Modbus driver.

Modbus is the second standardized protocol the paper names (Section II).
This runtime models the essential Modbus abstraction faithfully: the
machine state is addressed as *registers* — discrete inputs/coils for
booleans, 16-bit holding/input registers for numbers (floats as two
registers, IEEE-754 big-endian word order) — and all access goes through
a register map derived from the machine spec. Strings and method calls
ride on a vendor-typical "command register + parameter block"
convention.

Implemented from scratch: register-map construction, value
encode/decode, and the driver runtime over a simulated machine.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from ..machines.catalog import DriverSpec
from ..machines.simulator import MachineSimulator, SimulationError
from .base import DriverError, SimulatorBackedDriver

#: Register layout constants (addresses are 0-based).
COIL_BASE = 0          # booleans, one coil each
HOLDING_BASE = 1000    # numeric values, 1 or 2 registers each
STRING_BASE = 30000    # strings, fixed 16-register (32-byte) slots
COMMAND_REGISTER = 40000   # write method index to invoke
PARAMETER_BASE = 40001     # method parameters (2 registers each)
RESULT_BASE = 40100        # method results
STRING_SLOT_REGISTERS = 16


@dataclass(frozen=True)
class RegisterBinding:
    """Where one machine variable lives in the register space."""

    variable: str
    data_type: str
    address: int
    count: int  # registers (or coils) occupied

    @property
    def end(self) -> int:
        return self.address + self.count


def encode_float(value: float) -> tuple[int, int]:
    """IEEE-754 float32 as two big-endian 16-bit registers."""
    packed = struct.pack(">f", value)
    high, low = struct.unpack(">HH", packed)
    return high, low


def decode_float(high: int, low: int) -> float:
    return struct.unpack(">f", struct.pack(">HH", high, low))[0]


def encode_int(value: int) -> tuple[int, int]:
    """32-bit signed integer as two registers."""
    packed = struct.pack(">i", int(value))
    high, low = struct.unpack(">HH", packed)
    return high, low


def decode_int(high: int, low: int) -> int:
    return struct.unpack(">i", struct.pack(">HH", high, low))[0]


def encode_string(value: str, slot_registers: int = STRING_SLOT_REGISTERS
                  ) -> list[int]:
    """UTF-8 bytes packed two-per-register, zero-padded."""
    raw = value.encode("utf-8")[:slot_registers * 2]
    if len(raw) % 2:
        raw += b"\x00"
    registers = [int.from_bytes(raw[i:i + 2], "big")
                 for i in range(0, len(raw), 2)]
    registers.extend([0] * (slot_registers - len(registers)))
    return registers


def decode_string(registers: list[int]) -> str:
    raw = b"".join(int(r).to_bytes(2, "big") for r in registers)
    return raw.rstrip(b"\x00").decode("utf-8", errors="replace")


def build_register_map(machine: MachineSimulator) -> dict[str, RegisterBinding]:
    """Deterministic register layout for a machine spec."""
    bindings: dict[str, RegisterBinding] = {}
    coil = COIL_BASE
    holding = HOLDING_BASE
    string_slot = STRING_BASE
    for variable in machine.spec.variables:
        if variable.data_type == "Boolean":
            bindings[variable.name] = RegisterBinding(
                variable.name, "Boolean", coil, 1)
            coil += 1
        elif variable.data_type in ("Integer", "Natural"):
            bindings[variable.name] = RegisterBinding(
                variable.name, "Integer", holding, 2)
            holding += 2
        elif variable.data_type in ("Real", "Double"):
            bindings[variable.name] = RegisterBinding(
                variable.name, "Real", holding, 2)
            holding += 2
        else:  # String
            bindings[variable.name] = RegisterBinding(
                variable.name, "String", string_slot,
                STRING_SLOT_REGISTERS)
            string_slot += STRING_SLOT_REGISTERS
    return bindings


class ModbusDriver(SimulatorBackedDriver):
    """Runtime for the generic ``ModbusDriver`` protocol."""

    protocol = "ModbusDriver"

    def __init__(self, spec: DriverSpec, machine: MachineSimulator):
        super().__init__(spec, machine)
        self.register_map = build_register_map(machine)
        self.method_index = {name: idx for idx, name
                             in enumerate(machine.service_names)}
        self.reads = 0
        self.writes = 0

    # -- raw register access (the wire level) ----------------------------------

    def read_coil(self, address: int) -> bool:
        self._ensure_connected()
        binding = self._binding_at(address, kind="Boolean")
        self.reads += 1
        return bool(self.machine.read(binding.variable))

    def read_holding_registers(self, address: int,
                               count: int) -> list[int]:
        self._ensure_connected()
        binding = self._binding_at(address)
        if count != binding.count:
            raise DriverError(
                f"partial register read at {address} "
                f"(need {binding.count}, got {count})")
        self.reads += 1
        value = self.machine.read(binding.variable)
        if binding.data_type == "Real":
            number = float(value) if isinstance(value, (int, float)) else 0.0
            if not math.isfinite(number):
                number = 0.0
            return list(encode_float(number))
        if binding.data_type == "Integer":
            return list(encode_int(int(value)))
        return encode_string(str(value))

    def _binding_at(self, address: int,
                    kind: str | None = None) -> RegisterBinding:
        for binding in self.register_map.values():
            if binding.address == address and \
                    (kind is None or binding.data_type == kind):
                return binding
        raise DriverError(f"no register mapped at address {address}")

    # -- DriverRuntime interface -------------------------------------------------

    def read_variable(self, name: str) -> object:
        self._ensure_connected()
        binding = self.register_map.get(name)
        if binding is None:
            raise DriverError(f"variable {name!r} is not in the register "
                              f"map")
        if binding.data_type == "Boolean":
            return self.read_coil(binding.address)
        registers = self.read_holding_registers(binding.address,
                                                binding.count)
        if binding.data_type == "Real":
            # float32 round trip loses precision; keep it visible
            return decode_float(*registers)
        if binding.data_type == "Integer":
            return decode_int(*registers)
        return decode_string(registers)

    def call_method(self, name: str, *args) -> tuple:
        self._ensure_connected()
        index = self.method_index.get(name)
        if index is None:
            raise DriverError(f"method {name!r} not in command table")
        self.writes += 1  # the command-register write
        try:
            results = self.machine.call(name, *args)
        except SimulationError as exc:
            raise DriverError(str(exc)) from exc
        return results

    def method_names(self) -> list[str]:
        return list(self.method_index)
