"""Universal Robots proprietary driver.

Models the split personality of a real UR controller: a *realtime*
telegram interface that delivers the whole machine state as one packet
per cycle, and a *dashboard* command channel for program control. The
runtime decodes telegrams into variables and encodes dashboard commands
for service calls.
"""

from __future__ import annotations

from ..machines.catalog import DriverSpec
from ..machines.simulator import MachineSimulator, SimulationError
from .base import DriverError, SimulatorBackedDriver

#: Dashboard replies, as the real controller phrases them.
_DASHBOARD_REPLIES = {
    "play": "Starting program",
    "pause": "Pausing program",
    "stop": "Stopped",
    "load_program": "Loading program: {arg}",
}


class URDriver(SimulatorBackedDriver):
    """Runtime for the ``URDriver`` protocol."""

    protocol = "URDriver"

    def __init__(self, spec: DriverSpec, machine: MachineSimulator):
        super().__init__(spec, machine)
        self.telegrams_received = 0
        self.dashboard_commands = 0
        self._last_telegram: dict[str, object] = {}

    # -- realtime interface -----------------------------------------------------

    def receive_telegram(self) -> dict[str, object]:
        """Fetch one full state telegram (all variables at once)."""
        self._ensure_connected()
        self.telegrams_received += 1
        self._last_telegram = self.machine.variables()
        return dict(self._last_telegram)

    def read_variable(self, name: str) -> object:
        telegram = self.receive_telegram()
        try:
            return telegram[name]
        except KeyError:
            raise DriverError(
                f"telegram contains no field {name!r}") from None

    # -- dashboard interface ---------------------------------------------------------

    def send_dashboard_command(self, command: str, *args: str) -> str:
        self._ensure_connected()
        self.dashboard_commands += 1
        if command not in _DASHBOARD_REPLIES:
            return f"could not understand: '{command}'"
        try:
            self.machine.call(command, *args)
        except SimulationError as exc:
            return f"error: {exc}"
        reply = _DASHBOARD_REPLIES[command]
        return reply.format(arg=args[0]) if args else reply

    def call_method(self, name: str, *args) -> tuple:
        reply = self.send_dashboard_command(name,
                                            *[str(a) for a in args])
        if reply.startswith(("could not understand", "error")):
            raise DriverError(reply)
        return (True,)
