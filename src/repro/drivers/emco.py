"""EMCO proprietary driver.

The EMCO Concept Mill speaks a line-oriented ASCII protocol over TCP.
The runtime encodes every request as a frame, "transmits" it to the
machine simulator, and decodes the reply — exercising a real
encode/dispatch/decode path even though the socket is simulated.

Frame grammar::

    GET <variable>\\n            ->  VAL <variable> <repr(value)>\\n
    CALL <method> [args...]\\n   ->  RET <method> [values...]\\n
    error replies                ->  ERR <message>\\n
"""

from __future__ import annotations

from ..machines.catalog import DriverSpec
from ..machines.simulator import MachineSimulator, SimulationError
from .base import DriverError, SimulatorBackedDriver


def encode_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("%", "%25").replace(" ", "%20")
    return text


def decode_value(text: str, data_type: str) -> object:
    if data_type == "Boolean":
        return text == "1"
    if data_type in ("Integer", "Natural"):
        return int(text)
    if data_type in ("Real", "Double"):
        return float(text)
    return text.replace("%20", " ").replace("%25", "%")


class EMCODriver(SimulatorBackedDriver):
    """Runtime for the ``EMCODriver`` protocol of the paper's Code 2."""

    protocol = "EMCODriver"

    def __init__(self, spec: DriverSpec, machine: MachineSimulator):
        super().__init__(spec, machine)
        self.frames_sent = 0
        self.frames_received = 0

    # -- wire protocol ------------------------------------------------------

    def _transact(self, frame: str) -> str:
        """Send one frame to the (simulated) machine, return the reply."""
        self._ensure_connected()
        self.frames_sent += 1
        reply = self._machine_side_dispatch(frame.rstrip("\n"))
        self.frames_received += 1
        return reply

    def _machine_side_dispatch(self, frame: str) -> str:
        parts = frame.split(" ")
        command = parts[0]
        try:
            if command == "GET" and len(parts) == 2:
                value = self.machine.read(parts[1])
                return f"VAL {parts[1]} {encode_value(value)}"
            if command == "CALL" and len(parts) >= 2:
                method = parts[1]
                service = self.machine.service(method)
                if len(parts) - 2 != len(service.inputs):
                    return (f"ERR bad arity for {method}: expected "
                            f"{len(service.inputs)}")
                args = tuple(
                    decode_value(raw, arg.data_type)
                    for raw, arg in zip(parts[2:], service.inputs))
                results = self.machine.call(method, *args)
                rendered = " ".join(encode_value(v) for v in results)
                return f"RET {method} {rendered}".rstrip()
            return f"ERR unknown command {command}"
        except (SimulationError, KeyError) as exc:
            return f"ERR {exc}"

    # -- DriverRuntime interface ------------------------------------------------

    def read_variable(self, name: str) -> object:
        reply = self._transact(f"GET {name}\n")
        if reply.startswith("ERR"):
            raise DriverError(reply)
        _tag, _name, raw = reply.split(" ", 2)
        spec = next(v for v in self.machine.spec.variables
                    if v.name == name)
        return decode_value(raw, spec.data_type)

    def call_method(self, name: str, *args) -> tuple:
        encoded = " ".join(encode_value(a) for a in args)
        frame = f"CALL {name} {encoded}".rstrip() + "\n"
        reply = self._transact(frame)
        if reply.startswith("ERR"):
            raise DriverError(reply)
        parts = reply.split(" ")
        service = self.machine.service(name)
        raw_values = parts[2:]
        return tuple(decode_value(raw, arg.data_type)
                     for raw, arg in zip(raw_values, service.outputs))
