"""Driver runtimes: proprietary (EMCO, UR) and generic OPC UA adapters."""

from .base import DriverError, DriverRuntime, SimulatorBackedDriver
from .emco import EMCODriver, decode_value, encode_value
from .modbus import (ModbusDriver, RegisterBinding, build_register_map,
                     decode_float, decode_int, decode_string, encode_float,
                     encode_int, encode_string)
from .opcua_driver import OpcUaGenericDriver, host_machine_server
from .runtime import DriverFactory
from .ur import URDriver

__all__ = ["DriverError", "DriverFactory", "DriverRuntime", "EMCODriver",
           "ModbusDriver", "RegisterBinding", "build_register_map",
           "decode_float", "decode_int", "decode_string", "encode_float",
           "encode_int", "encode_string",
           "OpcUaGenericDriver", "SimulatorBackedDriver", "URDriver",
           "decode_value", "encode_value", "host_machine_server"]
