"""Driver runtimes: protocol adapters between software and machines.

The paper's ``Driver`` concept has two runtime flavors: proprietary
machine drivers (EMCO, Universal Robots) speaking their own wire
protocols, and the generic driver for machines that already expose
OPC UA. A :class:`DriverRuntime` hides that difference behind a single
read/subscribe/call interface — exactly the "unifying layer" role
Section II describes.
"""

from __future__ import annotations

from typing import Callable

from ..machines.catalog import DriverSpec
from ..machines.simulator import MachineSimulator


class DriverError(RuntimeError):
    pass


class DriverRuntime:
    """Abstract protocol adapter."""

    #: Driver definition name this runtime implements (e.g. "EMCODriver").
    protocol: str = ""

    def __init__(self, spec: DriverSpec):
        if spec.protocol != self.protocol:
            raise DriverError(
                f"{type(self).__name__} implements {self.protocol!r}, "
                f"got a spec for {spec.protocol!r}")
        self.spec = spec
        self.connected = False

    # -- lifecycle ----------------------------------------------------------

    def connect(self) -> None:
        raise NotImplementedError

    def disconnect(self) -> None:
        raise NotImplementedError

    # -- data access ----------------------------------------------------------

    def read_variable(self, name: str) -> object:
        raise NotImplementedError

    def variable_names(self) -> list[str]:
        raise NotImplementedError

    def call_method(self, name: str, *args) -> tuple:
        raise NotImplementedError

    def method_names(self) -> list[str]:
        raise NotImplementedError

    def subscribe(self, listener: Callable[[str, object], None]) -> None:
        """Register for variable-change events (name, new value)."""
        raise NotImplementedError

    def _ensure_connected(self) -> None:
        if not self.connected:
            raise DriverError(
                f"{type(self).__name__} is not connected")


class SimulatorBackedDriver(DriverRuntime):
    """Base for proprietary drivers that talk to a machine simulator.

    Subclasses implement the wire-protocol encoding; this base wires the
    simulator connection and the change events.
    """

    def __init__(self, spec: DriverSpec, machine: MachineSimulator):
        super().__init__(spec)
        self.machine = machine
        self._listeners: list[Callable[[str, object], None]] = []
        self._machine_listener_installed = False

    def connect(self) -> None:
        self._check_reachability()
        self.connected = True
        if not self._machine_listener_installed:
            self.machine.on_change(self._on_machine_change)
            self._machine_listener_installed = True

    def disconnect(self) -> None:
        self.connected = False

    def _check_reachability(self) -> None:
        ip = self.spec.parameters.get("ip")
        if not ip:
            raise DriverError(
                f"driver for {self.machine.spec.name!r} has no 'ip' "
                f"parameter configured")

    def _on_machine_change(self, name: str, value: object) -> None:
        if not self.connected:
            return
        for listener in list(self._listeners):
            listener(name, value)

    def subscribe(self, listener: Callable[[str, object], None]) -> None:
        self._ensure_connected()
        self._listeners.append(listener)

    def variable_names(self) -> list[str]:
        return self.machine.variable_names()

    def method_names(self) -> list[str]:
        return self.machine.service_names
