"""Driver factory: build the right runtime for a machine spec.

For generic OPC UA machines this also hosts the machine-side server
(once per machine) on the configured endpoint.
"""

from __future__ import annotations

from ..machines.catalog import MachineSpec
from ..machines.simulator import MachineSimulator
from ..opcua import OpcUaServer, UaNetwork
from .base import DriverError, DriverRuntime
from .emco import EMCODriver
from .modbus import ModbusDriver
from .opcua_driver import OpcUaGenericDriver, host_machine_server
from .ur import URDriver


class DriverFactory:
    """Creates driver runtimes and machine-side UA servers."""

    def __init__(self, network: UaNetwork):
        self.network = network
        self.machine_servers: dict[str, OpcUaServer] = {}
        self._server_simulators: dict[str, int] = {}

    def create(self, spec: MachineSpec,
               machine: MachineSimulator) -> DriverRuntime:
        protocol = spec.driver.protocol
        if protocol == "EMCODriver":
            return EMCODriver(spec.driver, machine)
        if protocol == "URDriver":
            return URDriver(spec.driver, machine)
        if protocol == "ModbusDriver":
            return ModbusDriver(spec.driver, machine)
        if protocol == "OPCUADriver":
            self._ensure_machine_server(spec, machine)
            return OpcUaGenericDriver(spec.driver, spec.name, self.network)
        raise DriverError(f"no driver runtime for protocol {protocol!r}")

    def _ensure_machine_server(self, spec: MachineSpec,
                               machine: MachineSimulator) -> None:
        if spec.name in self.machine_servers:
            if self._server_simulators.get(spec.name) == id(machine):
                return
            # the physical machine was replaced (e.g. firmware update
            # adding variables): rehost its server
            self.machine_servers.pop(spec.name).stop()
        endpoint = spec.driver.parameters.get("endpoint")
        if not endpoint:
            raise DriverError(
                f"machine {spec.name!r} declares an OPC UA driver without "
                f"an endpoint parameter")
        self.machine_servers[spec.name] = host_machine_server(
            machine, str(endpoint), self.network)
        self._server_simulators[spec.name] = id(machine)

    def shutdown(self) -> None:
        for server in self.machine_servers.values():
            server.stop()
        self.machine_servers.clear()
