"""Generic OPC UA driver.

For machines that already speak OPC UA (most of the ICE lab), the
machine itself hosts a server; the driver is simply a UA client bound to
the machine's endpoint. :func:`host_machine_server` builds that
machine-side server from a simulator — the "each machine is equipped
with an OPC UA server" arrangement of Section II-C.
"""

from __future__ import annotations

from typing import Callable

from ..machines.catalog import DriverSpec
from ..machines.simulator import MachineSimulator
from ..opcua import (Argument, NetworkError, OpcUaClient, OpcUaServer,
                     UaNetwork)
from .base import DriverError, DriverRuntime


def host_machine_server(machine: MachineSimulator, endpoint: str,
                        network: UaNetwork) -> OpcUaServer:
    """Expose a machine simulator as its own OPC UA server."""
    server = OpcUaServer(endpoint, application_name=machine.spec.display_name,
                         network=network,
                         namespace_uris=[f"urn:icelab:{machine.spec.name}"])
    machine_node = server.add_object(server.space.objects, machine.spec.name)
    data_node = server.add_object(machine_node, "data")
    variable_nodes = {}
    for variable in machine.spec.variables:
        node = server.add_variable(
            data_node, variable.name, data_type=variable.data_type,
            initial_value=machine.read(variable.name))
        variable_nodes[variable.name] = node
    machine.on_change(
        lambda name, value: variable_nodes[name].write(value)
        if name in variable_nodes else None)
    services_node = server.add_object(machine_node, "services")
    for service in machine.spec.services:
        server.add_method(
            services_node, service.name,
            handler=_service_handler(machine, service.name),
            input_arguments=[Argument(a.name, a.data_type)
                             for a in service.inputs],
            output_arguments=[Argument(a.name, a.data_type)
                              for a in service.outputs])
    server.start()
    return server


def _service_handler(machine: MachineSimulator, name: str):
    def handler(*args):
        return machine.call(name, *args)
    return handler


class OpcUaGenericDriver(DriverRuntime):
    """Runtime for the ``OPCUADriver`` protocol: a plain UA client."""

    protocol = "OPCUADriver"

    def __init__(self, spec: DriverSpec, machine_name: str,
                 network: UaNetwork):
        super().__init__(spec)
        self.machine_name = machine_name
        self.network = network
        self.client = OpcUaClient(f"driver-{machine_name}", network=network)
        self._listeners: list[Callable[[str, object], None]] = []

    @property
    def endpoint(self) -> str:
        endpoint = self.spec.parameters.get("endpoint")
        if not endpoint:
            raise DriverError(
                f"OPC UA driver for {self.machine_name!r} has no "
                f"'endpoint' parameter")
        return str(endpoint)

    def connect(self) -> None:
        try:
            self.client.connect(self.endpoint)
        except NetworkError as exc:
            raise DriverError(str(exc)) from exc
        self.connected = True
        nodes = [f"{self.machine_name}/data/{name}"
                 for name in self.variable_names()]
        self.client.subscribe(nodes, callback=self._on_notification)

    def disconnect(self) -> None:
        self.client.disconnect()
        self.connected = False

    def _on_notification(self, notification) -> None:
        name = str(notification.node_id.identifier).rsplit("/", 1)[-1]
        for listener in list(self._listeners):
            listener(name, notification.value)

    def subscribe(self, listener: Callable[[str, object], None]) -> None:
        self._ensure_connected()
        self._listeners.append(listener)

    def read_variable(self, name: str) -> object:
        self._ensure_connected()
        return self.client.read(f"{self.machine_name}/data/{name}")

    def call_method(self, name: str, *args) -> tuple:
        self._ensure_connected()
        return self.client.call(f"{self.machine_name}/services/{name}",
                                *args)

    def variable_names(self) -> list[str]:
        self._ensure_connected()
        data = self.client.session.server.space.browse_path(
            f"{self.machine_name}/data")
        return [n.browse_name.name for n in data.children]

    def method_names(self) -> list[str]:
        self._ensure_connected()
        services = self.client.session.server.space.browse_path(
            f"{self.machine_name}/services")
        return [n.browse_name.name for n in services.children]
