"""Figure 1 regeneration: the methodology overview.

The paper's Figure 1 is a schematic (model -> toolchain -> configured
factory). We regenerate it as data: a DOT graph and an ASCII rendering
derived from an actual generation run, so the figure always reflects
what the pipeline really produced (counts included).
"""

from __future__ import annotations

from ..codegen import GenerationResult


def overview_dot(result: GenerationResult) -> str:
    """Graphviz DOT for the Figure-1 flow, annotated with real counts."""
    topology = result.topology
    summary = topology.summary()
    lines = [
        "digraph methodology {",
        "    rankdir=LR;",
        '    node [shape=box, fontname="Helvetica"];',
        f'    model [label="SysML v2 model\\n{summary["machines"]} machines'
        f'\\n{summary["variables"]} variables\\n'
        f'{summary["services"]} services"];',
        f'    step1 [label="Step 1\\nintermediate JSON\\n'
        f'{len(result.machine_configs)} machine files\\n'
        f'{len(result.client_configs)} client + '
        f'{len(result.storage_configs)} storage files"];',
        f'    step2 [label="Step 2\\nKubernetes YAML\\n'
        f'{len(result.manifests)} manifests\\n'
        f'{result.config_size_kb:.0f} KB total"];',
        '    factory [label="Configured smart factory\\n'
        f'{0} OPC UA servers\\n{1} OPC UA clients"];'.format(
            result.opcua_server_count, result.opcua_client_count),
        "    model -> step1 [label=\"ISA-95 walk\"];",
        "    step1 -> step2 [label=\"templates\"];",
        "    step2 -> factory [label=\"deploy\"];",
    ]
    for workcell in topology.workcells:
        if not workcell.machines:
            continue
        machines = ", ".join(m.name for m in workcell.machines)
        lines.append(
            f'    "{workcell.name}" [shape=ellipse, '
            f'label="{workcell.name}\\n{machines}"];')
        lines.append(f'    factory -> "{workcell.name}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def overview_ascii(result: GenerationResult) -> str:
    """ASCII rendering of the Figure-1 flow."""
    topology = result.topology
    summary = topology.summary()
    columns = [
        ("SysML v2 model",
         [f"{summary['machines']} machines",
          f"{summary['variables']} variables",
          f"{summary['services']} services"]),
        ("Step 1: JSON",
         [f"{len(result.machine_configs)} machine cfgs",
          f"{len(result.client_configs)} client cfgs",
          f"{len(result.storage_configs)} storage cfgs"]),
        ("Step 2: YAML",
         [f"{len(result.manifests)} manifests",
          f"{result.config_size_kb:.0f} KB"]),
        ("Factory",
         [f"{result.opcua_server_count} UA servers",
          f"{result.opcua_client_count} UA clients",
          f"{len(topology.workcells)} workcells"]),
    ]
    width = 20
    top = "  ".join("+" + "-" * width + "+" for _ in columns)
    rows = [top]
    titles = []
    for title, _ in columns:
        titles.append("|" + title.center(width) + "|")
    rows.append(" ->".join(titles).replace("| |", "| |"))
    rows[-1] = "  ".join(titles)
    depth = max(len(body) for _, body in columns)
    for line_index in range(depth):
        cells = []
        for _, body in columns:
            text = body[line_index] if line_index < len(body) else ""
            cells.append("|" + text.center(width) + "|")
        rows.append("  ".join(cells))
    rows.append(top)
    rows.append("        |  (ISA-95 walk)     |  (templates)       "
                "|  (deploy)")
    return "\n".join(rows) + "\n"
