"""Figure 2 regeneration: machine <-> driver ports and interfaces.

The paper's Figure 2 shows, for the milling machine, the communication
channel structure: MachineData/MachineServices ports on the machine
side, DriverVariables/DriverMethods ports on the driver side, and the
two interfaces joining them. This module measures those quantities on
an actual loaded model and renders them as DOT and ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sysml.elements import Model, PartUsage
from ..sysml.instances import elaborate


@dataclass
class ConnectionFigure:
    """Measured port/connector structure of one machine-driver pair."""

    machine: str
    driver: str
    machine_data_ports: int
    machine_service_ports: int
    driver_variable_ports: int
    driver_method_ports: int
    data_connectors: int
    service_connectors: int
    bindings: int

    @property
    def total_ports(self) -> int:
        return (self.machine_data_ports + self.machine_service_ports
                + self.driver_variable_ports + self.driver_method_ports)

    @property
    def balanced(self) -> bool:
        """Machine-side ports mirror driver-side ports one-to-one."""
        return (self.machine_data_ports == self.driver_variable_ports
                and self.machine_service_ports == self.driver_method_ports)


def _count_ports(node, *, conjugated: bool) -> int:
    return sum(1 for n in node.walk()
               if n.kind == "port" and n.conjugated == conjugated)


def measure_connections(model: Model, machine_name: str,
                        driver_instance_name: str) -> ConnectionFigure:
    """Measure the Figure-2 structure for one machine."""
    # skip `ref part` placeholders (e.g. ISA95::Machine::driver): a
    # machine named like one of those must resolve to its concrete part
    machine_usage = next(
        (e for e in model.all_elements()
         if isinstance(e, PartUsage) and e.name == machine_name
         and not e.is_reference), None)
    driver_usage = next(
        (e for e in model.owned_elements
         if isinstance(e, PartUsage) and e.name == driver_instance_name),
        None)
    if machine_usage is None or driver_usage is None:
        raise KeyError(
            f"machine {machine_name!r} or driver "
            f"{driver_instance_name!r} not found in the model")
    machine_tree = elaborate(machine_usage)
    driver_tree = elaborate(driver_usage)
    machine_data_ports = machine_service_ports = 0
    data_connectors = service_connectors = bindings = 0
    for node in machine_tree.walk():
        if node.kind == "port":
            owner_chain = node.path
            if "Services" in owner_chain or "services" in owner_chain:
                machine_service_ports += 1
            else:
                machine_data_ports += 1
        elif node.kind in ("connection", "interface"):
            if "mthd" in (node.value_ref or "") or "Methods" in \
                    (node.value_ref or ""):
                service_connectors += 1
            else:
                data_connectors += 1
        elif node.kind == "bind":
            bindings += 1
    driver_variable_ports = driver_method_ports = 0
    for node in driver_tree.walk():
        if node.kind == "port":
            if "Methods" in node.path or "methods" in node.path.lower():
                driver_method_ports += 1
            else:
                driver_variable_ports += 1
        elif node.kind == "bind":
            bindings += 1
    typ = machine_usage.effective_type()
    driver_typ = driver_usage.effective_type()
    return ConnectionFigure(
        machine=machine_name,
        driver=driver_typ.name if driver_typ is not None else "",
        machine_data_ports=machine_data_ports,
        machine_service_ports=machine_service_ports,
        driver_variable_ports=driver_variable_ports,
        driver_method_ports=driver_method_ports,
        data_connectors=data_connectors,
        service_connectors=service_connectors,
        bindings=bindings,
    )


def connections_dot(figure: ConnectionFigure) -> str:
    """Graphviz DOT in the layout of the paper's Figure 2."""
    return f"""digraph connections {{
    rankdir=LR;
    node [shape=record, fontname="Helvetica"];
    machine [label="{{{figure.machine}|MachineData: \
{figure.machine_data_ports} ports|MachineServices: \
{figure.machine_service_ports} ports}}"];
    driver [label="{{{figure.driver}|DriverVariables: \
{figure.driver_variable_ports} ports|DriverMethods: \
{figure.driver_method_ports} ports}}"];
    machine -> driver [label="data interface\\n\
{figure.data_connectors} connections", dir=both];
    machine -> driver [label="service interface\\n\
{figure.service_connectors} connections", dir=both];
}}
"""


def connections_ascii(figure: ConnectionFigure) -> str:
    left = [
        f"Machine: {figure.machine}",
        f"  MachineData      [{figure.machine_data_ports:>4} ports]",
        f"  MachineServices  [{figure.machine_service_ports:>4} ports]",
    ]
    right = [
        f"Driver: {figure.driver}",
        f"  DriverVariables  [{figure.driver_variable_ports:>4} ports]",
        f"  DriverMethods    [{figure.driver_method_ports:>4} ports]",
    ]
    middle = [
        "",
        f"==== data interface ({figure.data_connectors} conn) ====>",
        f"==== service interface ({figure.service_connectors} conn) ===>",
    ]
    width_left = max(len(s) for s in left) + 2
    width_middle = max(len(s) for s in middle) + 2
    lines = []
    for l, m, r in zip(left, middle, right):
        lines.append(f"{l:<{width_left}}{m:<{width_middle}}{r}")
    lines.append(f"(bindings: {figure.bindings}, "
                 f"total ports: {figure.total_ports}, "
                 f"balanced: {figure.balanced})")
    return "\n".join(lines) + "\n"
