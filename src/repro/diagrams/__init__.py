"""Figure regeneration: methodology overview (Fig. 1) and connections (Fig. 2)."""

from .connections import (ConnectionFigure, connections_ascii,
                          connections_dot, measure_connections)
from .overview import overview_ascii, overview_dot

__all__ = ["ConnectionFigure", "connections_ascii", "connections_dot",
           "measure_connections", "overview_ascii", "overview_dot"]
