"""Client wrapper over the message broker.

Components in the simulated software stack (OPC UA clients, storage
writers, the SOM orchestrator) hold a :class:`BrokerClient` rather than
the broker itself, mirroring how real components hold an MQTT/AMQP
session. The wrapper tracks this client's subscriptions so a component
shutdown cleans up after itself, and offers a simple request/reply
helper used for machine-service invocation.
"""

from __future__ import annotations

import itertools
from typing import Callable

from .broker import BrokerError, Message, MessageBroker

_request_ids = itertools.count(1)


class BrokerClient:
    """A named session on a :class:`MessageBroker`."""

    def __init__(self, broker: MessageBroker, client_id: str):
        self.broker = broker
        self.client_id = client_id
        self._subscription_ids: list[int] = []
        self.connected = True

    # -- pub/sub -------------------------------------------------------------

    def publish(self, topic: str, payload: object,
                *, retain: bool = False) -> int:
        self._ensure_connected()
        return self.broker.publish(topic, payload, retain=retain)

    def subscribe(self, topic_filter: str,
                  handler: Callable[[str, object], None] | None = None
                  ) -> int:
        self._ensure_connected()
        subscription_id = self.broker.subscribe(self.client_id, topic_filter,
                                                handler)
        self._subscription_ids.append(subscription_id)
        return subscription_id

    def poll(self, subscription_id: int,
             max_messages: int | None = None) -> list[Message]:
        self._ensure_connected()
        return self.broker.poll(subscription_id, max_messages)

    # -- request/reply ----------------------------------------------------------

    def request(self, topic: str, payload: dict,
                *, timeout_steps: int = 1) -> object:
        """Publish a request and wait (synchronously) for the reply.

        The responder is expected to subscribe on *topic* and publish the
        reply on the ``reply_to`` topic included in the request envelope.
        Because the broker is synchronous, the reply is available
        immediately after ``publish`` returns; *timeout_steps* is kept
        for interface compatibility with asynchronous deployments.
        """
        self._ensure_connected()
        request_id = next(_request_ids)
        reply_topic = f"{topic}/reply/{self.client_id}/{request_id}"
        replies: list[object] = []
        subscription_id = self.broker.subscribe(
            self.client_id, reply_topic,
            lambda _topic, reply_payload: replies.append(reply_payload))
        try:
            envelope = dict(payload)
            envelope["reply_to"] = reply_topic
            envelope["request_id"] = request_id
            receivers = self.broker.publish(topic, envelope)
            if receivers == 0:
                raise BrokerError(
                    f"no responder subscribed on {topic!r}")
            if not replies:
                raise BrokerError(
                    f"responder on {topic!r} did not reply within "
                    f"{timeout_steps} step(s)")
            return replies[0]
        finally:
            self.broker.unsubscribe(subscription_id)
            if subscription_id in self._subscription_ids:
                self._subscription_ids.remove(subscription_id)

    def serve(self, topic_filter: str,
              responder: Callable[[str, dict], object]) -> int:
        """Subscribe as a request responder.

        *responder* receives (topic, request payload) and its return
        value is published to the request's ``reply_to`` topic.
        """
        def handle(topic: str, payload: object) -> None:
            if not isinstance(payload, dict) or "reply_to" not in payload:
                return
            reply = responder(topic, payload)
            self.broker.publish(payload["reply_to"], reply)

        return self.subscribe(topic_filter, handle)

    # -- lifecycle -------------------------------------------------------------

    def disconnect(self) -> None:
        for subscription_id in self._subscription_ids:
            self.broker.unsubscribe(subscription_id)
        self._subscription_ids.clear()
        self.connected = False

    def _ensure_connected(self) -> None:
        if not self.connected:
            raise BrokerError(f"client {self.client_id!r} is disconnected")

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"<BrokerClient {self.client_id} ({state})>"
