"""In-memory message broker substrate (MQTT-style topics and wildcards)."""

from .broker import BrokerError, Message, MessageBroker, Subscription
from .client import BrokerClient
from .topics import (TopicError, join, topic_matches, validate_filter,
                     validate_topic)

__all__ = [
    "BrokerClient", "BrokerError", "Message", "MessageBroker",
    "Subscription", "TopicError", "join", "topic_matches",
    "validate_filter", "validate_topic",
]
