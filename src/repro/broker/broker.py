"""In-memory topic-based message broker.

The central component of the paper's SOM architecture: all OPC UA
clients, control software, and storage components communicate through
it. Semantics are deliberately simple and synchronous — a publish
delivers to every matching subscription before returning — which makes
the simulated factory deterministic and easy to test. Retained messages
and per-subscription queues cover the patterns the configured software
stack needs (late-joining historians, request/reply method calls).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..obs import METRICS
from .topics import topic_matches, validate_filter, validate_topic

Payload = object
Handler = Callable[[str, Payload], None]

_PUBLISHED = METRICS.counter("broker.messages_published")
_DELIVERED = METRICS.counter("broker.messages_delivered")
_SUBSCRIBED = METRICS.counter("broker.subscriptions_created")


@dataclass(frozen=True)
class Message:
    """A published message: topic, payload, and a broker sequence number."""

    topic: str
    payload: Payload
    sequence: int


@dataclass
class Subscription:
    """One active subscription of a client."""

    client_id: str
    topic_filter: str
    handler: Handler | None = None
    queue: deque = field(default_factory=deque)
    delivered: int = 0

    def matches(self, topic: str) -> bool:
        return topic_matches(self.topic_filter, topic)


class BrokerError(RuntimeError):
    pass


class MessageBroker:
    """A deterministic in-memory pub/sub broker."""

    def __init__(self, name: str = "broker"):
        self.name = name
        self._subscriptions: dict[int, Subscription] = {}
        self._retained: dict[str, Message] = {}
        self._sequence = itertools.count(1)
        self._subscription_ids = itertools.count(1)
        self.published_count = 0
        self.delivered_count = 0

    # -- subscription management -------------------------------------------

    def subscribe(self, client_id: str, topic_filter: str,
                  handler: Handler | None = None,
                  *, receive_retained: bool = True) -> int:
        """Register a subscription; returns its id.

        With a *handler*, messages are delivered synchronously by calling
        it. Without one, messages accumulate in the subscription queue
        and are fetched with :meth:`poll`.
        """
        validate_filter(topic_filter)
        subscription_id = next(self._subscription_ids)
        subscription = Subscription(client_id, topic_filter, handler)
        self._subscriptions[subscription_id] = subscription
        _SUBSCRIBED.inc()
        if receive_retained:
            for topic, message in sorted(self._retained.items()):
                if subscription.matches(topic):
                    self._deliver(subscription, message)
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> None:
        self._subscriptions.pop(subscription_id, None)

    def unsubscribe_client(self, client_id: str) -> int:
        """Drop all subscriptions of *client_id*; returns how many."""
        doomed = [sid for sid, sub in self._subscriptions.items()
                  if sub.client_id == client_id]
        for sid in doomed:
            del self._subscriptions[sid]
        return len(doomed)

    def subscriptions_for(self, client_id: str) -> list[Subscription]:
        return [s for s in self._subscriptions.values()
                if s.client_id == client_id]

    # -- publishing ----------------------------------------------------------

    def publish(self, topic: str, payload: Payload,
                *, retain: bool = False) -> int:
        """Publish; returns the number of subscriptions that received it."""
        validate_topic(topic)
        message = Message(topic, payload, next(self._sequence))
        self.published_count += 1
        _PUBLISHED.inc()
        if retain:
            self._retained[topic] = message
        receivers = 0
        for subscription in list(self._subscriptions.values()):
            if subscription.matches(topic):
                self._deliver(subscription, message)
                receivers += 1
        return receivers

    def _deliver(self, subscription: Subscription, message: Message) -> None:
        self.delivered_count += 1
        _DELIVERED.inc()
        subscription.delivered += 1
        if subscription.handler is not None:
            subscription.handler(message.topic, message.payload)
        else:
            subscription.queue.append(message)

    # -- polling ---------------------------------------------------------------

    def poll(self, subscription_id: int, max_messages: int | None = None
             ) -> list[Message]:
        """Drain queued messages for a handler-less subscription."""
        subscription = self._subscriptions.get(subscription_id)
        if subscription is None:
            raise BrokerError(f"unknown subscription {subscription_id}")
        drained: list[Message] = []
        while subscription.queue and (max_messages is None
                                      or len(drained) < max_messages):
            drained.append(subscription.queue.popleft())
        return drained

    def retained(self, topic: str) -> Message | None:
        return self._retained.get(topic)

    def clear_retained(self, topic: str | None = None) -> None:
        if topic is None:
            self._retained.clear()
        else:
            self._retained.pop(topic, None)

    # -- introspection -----------------------------------------------------------

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def matching_subscriptions(self, topic: str) -> int:
        """How many active subscriptions would receive *topic*."""
        validate_topic(topic)
        return sum(1 for s in self._subscriptions.values()
                   if s.matches(topic))

    def stats(self) -> dict[str, int]:
        return {
            "published": self.published_count,
            "delivered": self.delivered_count,
            "subscriptions": self.subscription_count,
            "retained": len(self._retained),
        }
