"""Topic names and wildcard matching for the message broker.

Topics are ``/``-separated paths mirroring the ISA-95 hierarchy, e.g.
``icelab/line1/wc02/emco/data/actualX``. Subscriptions may use MQTT-style
wildcards: ``+`` matches exactly one level, ``#`` (final level only)
matches any remaining suffix.
"""

from __future__ import annotations


class TopicError(ValueError):
    """Raised for malformed topic names or filters."""


def validate_topic(topic: str) -> None:
    """Publish topics must be non-empty and wildcard-free."""
    if not topic:
        raise TopicError("empty topic")
    if topic.startswith("/") or topic.endswith("/"):
        raise TopicError(f"topic may not start or end with '/': {topic!r}")
    for level in topic.split("/"):
        if not level:
            raise TopicError(f"empty level in topic {topic!r}")
        if "+" in level or "#" in level:
            raise TopicError(
                f"wildcards not allowed in publish topic {topic!r}")


def validate_filter(topic_filter: str) -> None:
    """Subscription filters allow ``+`` levels and a trailing ``#``."""
    if not topic_filter:
        raise TopicError("empty topic filter")
    if topic_filter.startswith("/") or topic_filter.endswith("/"):
        raise TopicError(
            f"filter may not start or end with '/': {topic_filter!r}")
    levels = topic_filter.split("/")
    for index, level in enumerate(levels):
        if not level:
            raise TopicError(f"empty level in filter {topic_filter!r}")
        if level == "#" and index != len(levels) - 1:
            raise TopicError(
                f"'#' only allowed as the final level: {topic_filter!r}")
        if level not in ("+", "#") and ("+" in level or "#" in level):
            raise TopicError(
                f"wildcard must occupy a whole level: {topic_filter!r}")


def topic_matches(topic_filter: str, topic: str) -> bool:
    """Does *topic* match *topic_filter*? (both assumed validated)"""
    filter_levels = topic_filter.split("/")
    topic_levels = topic.split("/")
    for index, pattern in enumerate(filter_levels):
        if pattern == "#":
            return True
        if index >= len(topic_levels):
            return False
        if pattern == "+":
            continue
        if pattern != topic_levels[index]:
            return False
    return len(filter_levels) == len(topic_levels)


def join(*levels: str) -> str:
    """Compose a topic from levels, validating the result."""
    topic = "/".join(levels)
    validate_topic(topic)
    return topic
