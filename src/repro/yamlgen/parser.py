"""YAML parser (from scratch) for the emitted subset.

Block-style mappings and sequences, scalars with type inference, quoted
strings with escapes, comments, and multi-document streams. This is what
the simulated Kubernetes cluster uses to consume the generated
manifests; it intentionally rejects YAML features the emitter never
produces (anchors, flow collections with nesting, block scalars).
"""

from __future__ import annotations


class YamlParseError(ValueError):
    def __init__(self, message: str, line_number: int = 0):
        self.line_number = line_number
        super().__init__(f"line {line_number}: {message}"
                         if line_number else message)


class _Line:
    __slots__ = ("indent", "content", "number")

    def __init__(self, indent: int, content: str, number: int):
        self.indent = indent
        self.content = content
        self.number = number


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, honoring quotes."""
    in_single = in_double = False
    for index, ch in enumerate(text):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            # account for escapes
            backslashes = 0
            j = index - 1
            while j >= 0 and text[j] == "\\":
                backslashes += 1
                j -= 1
            if backslashes % 2 == 0:
                in_double = not in_double
        elif ch == "#" and not in_single and not in_double:
            if index == 0 or text[index - 1] in " \t":
                return text[:index].rstrip()
    return text.rstrip()


def _logical_lines(text: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        without_comment = _strip_comment(raw)
        stripped = without_comment.strip()
        if not stripped:
            continue
        leading = without_comment[:len(without_comment)
                                  - len(without_comment.lstrip(" \t"))]
        if "\t" in leading:
            raise YamlParseError("tabs are not allowed in indentation",
                                 number)
        indent = len(leading)
        lines.append(_Line(indent, stripped, number))
    return lines


def parse_scalar(text: str):
    """Infer the type of a scalar token."""
    if text.startswith('"'):
        return _unquote(text, '"')
    if text.startswith("'"):
        return _unquote(text, "'")
    if text in ("null", "~", "Null", "NULL", ""):
        return None
    if text in ("true", "True", "TRUE"):
        return True
    if text in ("false", "False", "FALSE"):
        return False
    if text == "{}":
        return {}
    if text == "[]":
        return []
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _unquote(text: str, quote: str) -> str:
    if len(text) < 2 or not text.endswith(quote):
        raise YamlParseError(f"unterminated quoted scalar: {text!r}")
    body = text[1:-1]
    if quote == "'":
        return body.replace("''", "'")
    result: list[str] = []
    index = 0
    while index < len(body):
        ch = body[index]
        if ch == "\\" and index + 1 < len(body):
            nxt = body[index + 1]
            result.append({"n": "\n", "t": "\t", '"': '"',
                           "\\": "\\"}.get(nxt, nxt))
            index += 2
        else:
            result.append(ch)
            index += 1
    return "".join(result)


def _split_key(content: str, number: int) -> tuple[str, str]:
    """Split ``key: rest`` honoring quoted keys."""
    if content.startswith(('"', "'")):
        quote = content[0]
        end = 1
        while end < len(content):
            if content[end] == quote and (quote == '"' and
                                          content[end - 1] == "\\"):
                end += 1
                continue
            if content[end] == quote:
                break
            end += 1
        key_text = content[:end + 1]
        rest = content[end + 1:]
        if not rest.startswith(":"):
            raise YamlParseError("expected ':' after quoted key", number)
        return key_text, rest[1:].strip()
    # find a ': ' or line-final ':'
    depth_guard = content.find(": ")
    if content.endswith(":"):
        candidate = len(content) - 1
        if depth_guard == -1 or candidate < depth_guard:
            return content[:candidate], ""
    if depth_guard == -1:
        raise YamlParseError(f"expected a mapping entry, got {content!r}",
                             number)
    return content[:depth_guard], content[depth_guard + 2:].strip()


class _Parser:
    def __init__(self, lines: list[_Line]):
        self.lines = lines
        self.index = 0

    def _peek(self) -> _Line | None:
        return self.lines[self.index] if self.index < len(self.lines) else None

    def parse_block(self, indent: int):
        line = self._peek()
        if line is None:
            return None
        if line.content.startswith("- ") or line.content == "-":
            return self._parse_sequence(indent)
        return self._parse_mapping(indent)

    def _parse_sequence(self, indent: int) -> list:
        items: list = []
        while True:
            line = self._peek()
            if line is None or line.indent != indent or \
                    not (line.content.startswith("- ") or line.content == "-"):
                break
            self.index += 1
            inline = line.content[2:].strip() if line.content != "-" else ""
            if not inline:
                nxt = self._peek()
                if nxt is not None and nxt.indent > indent:
                    items.append(self.parse_block(nxt.indent))
                else:
                    items.append(None)
                continue
            if inline.startswith("- ") or inline == "-":
                # '- - 1' starts a nested sequence at indent + 2
                virtual = _Line(indent + 2, inline, line.number)
                self.lines.insert(self.index, virtual)
                items.append(self._parse_sequence(indent + 2))
            elif _looks_like_mapping(inline):
                # '- key: value' starts a mapping whose keys continue at
                # indent + 2
                virtual = _Line(indent + 2, inline, line.number)
                self.lines.insert(self.index, virtual)
                items.append(self._parse_mapping(indent + 2))
            else:
                items.append(parse_scalar(inline))
        return items

    def _parse_mapping(self, indent: int) -> dict:
        mapping: dict = {}
        while True:
            line = self._peek()
            if line is None or line.indent != indent or \
                    line.content.startswith("- "):
                break
            key_text, rest = _split_key(line.content, line.number)
            key = parse_scalar(key_text)
            if not isinstance(key, str):
                key = str(key)
            if key in mapping:
                raise YamlParseError(f"duplicate key {key!r}", line.number)
            self.index += 1
            if rest:
                mapping[key] = parse_scalar(rest)
                continue
            nxt = self._peek()
            if nxt is not None and nxt.indent > indent:
                mapping[key] = self.parse_block(nxt.indent)
            elif nxt is not None and nxt.indent == indent and \
                    (nxt.content.startswith("- ") or nxt.content == "-"):
                mapping[key] = self._parse_sequence(indent)
            else:
                mapping[key] = None
        return mapping


def _looks_like_mapping(content: str) -> bool:
    if content.startswith(('"', "'")):
        try:
            _split_key(content, 0)
            return True
        except YamlParseError:
            return False
    return ": " in content or content.endswith(":")


def parse(text: str):
    """Parse a single YAML document."""
    documents = parse_documents(text)
    if not documents:
        return None
    if len(documents) > 1:
        raise YamlParseError(
            f"expected one document, found {len(documents)} "
            f"(use parse_documents)")
    return documents[0]


def parse_documents(text: str) -> list:
    """Parse a (possibly multi-document) YAML stream."""
    chunks: list[list[str]] = [[]]
    for raw in text.splitlines():
        if raw.strip() == "---":
            if chunks[-1]:
                chunks.append([])
            continue
        chunks[-1].append(raw)
    documents = []
    for chunk in chunks:
        lines = _logical_lines("\n".join(chunk))
        if not lines:
            continue
        if any(line.indent < lines[0].indent for line in lines):
            raise YamlParseError("inconsistent top-level indentation",
                                 lines[0].number)
        parser = _Parser(lines)
        document = parser.parse_block(lines[0].indent)
        if parser.index != len(parser.lines):
            leftover = parser.lines[parser.index]
            raise YamlParseError(
                f"unconsumed content {leftover.content!r}", leftover.number)
        documents.append(document)
    return documents
